//! Tuples.
//!
//! The paper's evaluation methodology (§5.1) makes query execution
//! independent of relation *content*: behaviour is controlled entirely by
//! cardinalities and selectivities. Tuples here are therefore a synthetic
//! 64-bit join key plus the identifier of the base relation that originated
//! them; their simulated size is the Table 1 `tuple_bytes` (40 B) regardless
//! of the in-memory representation.

/// Identifier of a base relation / wrapper (index into the workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u16);

/// One synthetic tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// Synthetic join key.
    pub key: u64,
    /// Base relation the tuple (or the probe side of its lineage)
    /// originated from.
    pub origin: RelId,
}

impl Tuple {
    /// Construct a tuple.
    pub fn new(key: u64, origin: RelId) -> Self {
        Tuple { key, origin }
    }
}

/// Deterministic key sequence for a base relation: relation `r`'s `i`-th
/// tuple gets a key that spreads over a 48-bit space but is reproducible
/// and distinct across relations.
pub fn synth_key(rel: RelId, i: u64) -> u64 {
    // SplitMix64-style mix of (rel, i); avoids accidental key collisions
    // lining up across relations.
    let mut z = (u64::from(rel.0) << 56) ^ i ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_keys_are_deterministic() {
        assert_eq!(synth_key(RelId(1), 5), synth_key(RelId(1), 5));
    }

    #[test]
    fn synth_keys_differ_across_relations_and_positions() {
        assert_ne!(synth_key(RelId(1), 5), synth_key(RelId(2), 5));
        assert_ne!(synth_key(RelId(1), 5), synth_key(RelId(1), 6));
    }

    #[test]
    fn synth_keys_have_no_trivial_collisions() {
        use std::collections::HashSet;
        let keys: HashSet<u64> = (0..10_000).map(|i| synth_key(RelId(3), i)).collect();
        assert_eq!(keys.len(), 10_000);
    }
}
