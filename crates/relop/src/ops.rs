//! Physical chain operators and batch execution.
//!
//! A pipeline chain (§2.2) compiles into a [`PhysChain`]: an ordered list of
//! tuple-at-a-time operators ending either in a hash-table build (a blocking
//! edge to the consumer) or in the open end of the pipeline (the caller
//! materializes, enqueues, or emits the survivors). Executing a batch charges
//! CPU instructions per the Table 1 cost model:
//!
//! * move a tuple: 100 instructions (selection / copy),
//! * search a hash table: 100 instructions per probe,
//! * produce a result tuple: 50 instructions per join output.
//!
//! All data-dependent behaviour (filter pass rate, join fan-out) is driven by
//! deterministic [`FanoutAccumulator`]s so runs are reproducible and
//! cardinalities are exact.

use dqs_sim::SimParams;

use crate::fanout::FanoutAccumulator;
use crate::hash_table::{HashTableArena, HtId, HtStats};
use crate::tuple::Tuple;

/// Declarative description of one operator inside a chain, as produced by
/// the plan layer. `OpSpec` is `Copy`-free but cheap to clone.
#[derive(Debug, Clone, PartialEq)]
pub enum OpSpec {
    /// Filter with the given pass selectivity in `[0, 1]`.
    Select {
        /// Fraction of input tuples that survive.
        selectivity: f64,
    },
    /// Probe the (already complete) hash table `table`; each input tuple
    /// produces `fanout` outputs on average (`fanout` = join selectivity ×
    /// build cardinality).
    Probe {
        /// Hash table to probe.
        table: HtId,
        /// Average outputs per probe tuple.
        fanout: f64,
    },
    /// Terminal: insert every input tuple into `table` (the blocking edge).
    Build {
        /// Hash table being built.
        table: HtId,
    },
}

impl OpSpec {
    /// Average output tuples per input tuple of this operator.
    pub fn fanout(&self) -> f64 {
        match self {
            OpSpec::Select { selectivity } => *selectivity,
            OpSpec::Probe { fanout, .. } => *fanout,
            OpSpec::Build { .. } => 0.0,
        }
    }
}

/// Estimated execution profile of a chain, used for the scheduler's
/// annotated plan (§3.3: per-operator memory and result-size estimates) and
/// for the critical-degree metric's `c_p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainCostEstimate {
    /// Average CPU instructions consumed per *source* tuple entering the
    /// chain, including downstream work triggered by fan-out.
    pub instr_per_source_tuple: f64,
    /// Average chain output tuples per source tuple (0 for build-terminated
    /// chains, whose output goes into the hash table).
    pub fanout_total: f64,
}

/// Estimate instructions-per-source-tuple and total fan-out for a chain spec.
pub fn estimate_chain(ops: &[OpSpec], params: &SimParams) -> ChainCostEstimate {
    let mut mult = 1.0; // tuples reaching the current operator, per source tuple
    let mut instr = 0.0;
    for op in ops {
        match op {
            OpSpec::Select { selectivity } => {
                instr += mult * params.instr_move_tuple as f64;
                mult *= selectivity;
            }
            OpSpec::Probe { fanout, .. } => {
                instr += mult * params.instr_hash_search as f64;
                instr += mult * fanout * params.instr_produce_tuple as f64;
                mult *= fanout;
            }
            OpSpec::Build { .. } => {
                instr += mult * params.instr_move_tuple as f64;
                mult = 0.0;
            }
        }
    }
    ChainCostEstimate {
        instr_per_source_tuple: instr,
        fanout_total: mult,
    }
}

/// Runtime operator with its deterministic fan-out state.
#[derive(Debug, Clone)]
enum RunOp {
    Select {
        acc: FanoutAccumulator,
    },
    Probe {
        table: HtId,
        acc: FanoutAccumulator,
        picked: u64,
    },
    Build {
        table: HtId,
    },
}

/// Result of pushing a batch through a chain.
#[derive(Debug, Default)]
pub struct BatchResult {
    /// Tuples leaving the open end of the chain (empty for build-terminated
    /// chains).
    pub out: Vec<Tuple>,
    /// CPU instructions consumed.
    pub instr: u64,
}

/// A compiled, executable pipeline chain body.
#[derive(Debug)]
pub struct PhysChain {
    ops: Vec<RunOp>,
    spec: Vec<OpSpec>,
    /// Tables probed anywhere in the chain, precomputed at compile time so
    /// the scheduler's hot C-schedulability checks never allocate.
    probe_targets: Vec<HtId>,
    /// Reusable ping-pong buffer for the batch path.
    scratch: Vec<Tuple>,
    consumed: u64,
    emitted: u64,
}

impl PhysChain {
    /// Compile a chain from its spec.
    ///
    /// # Panics
    /// Panics if a `Build` appears anywhere but last: a build terminates the
    /// pipeline by definition of the blocking edge.
    pub fn compile(spec: &[OpSpec]) -> Self {
        for (i, op) in spec.iter().enumerate() {
            if matches!(op, OpSpec::Build { .. }) {
                assert!(
                    i == spec.len() - 1,
                    "Build must be the terminal operator of a chain"
                );
            }
        }
        let ops = spec
            .iter()
            .map(|s| match s {
                OpSpec::Select { selectivity } => RunOp::Select {
                    acc: FanoutAccumulator::new(*selectivity),
                },
                OpSpec::Probe { table, fanout } => RunOp::Probe {
                    table: *table,
                    acc: FanoutAccumulator::new(*fanout),
                    picked: 0,
                },
                OpSpec::Build { table } => RunOp::Build { table: *table },
            })
            .collect();
        PhysChain {
            ops,
            spec: spec.to_vec(),
            probe_targets: spec
                .iter()
                .filter_map(|s| match s {
                    OpSpec::Probe { table, .. } => Some(*table),
                    _ => None,
                })
                .collect(),
            scratch: Vec::new(),
            consumed: 0,
            emitted: 0,
        }
    }

    /// The spec this chain was compiled from.
    pub fn spec(&self) -> &[OpSpec] {
        &self.spec
    }

    /// Concatenate two chains, preserving all runtime operator state (the
    /// deterministic fan-out accumulators keep counting exactly where they
    /// left off). Used when a cancelled materialization fragment hands its
    /// leading operators back to the complement fragment, so tuples that
    /// now bypass the temp relation still pass through the same scan with
    /// the same accumulator — batch boundaries and degradation can never
    /// change the query answer.
    ///
    /// # Panics
    /// Panics if `front` contains a `Build` (it would not be terminal).
    pub fn concat(front: PhysChain, back: PhysChain) -> PhysChain {
        assert!(
            !front.spec.iter().any(|o| matches!(o, OpSpec::Build { .. })),
            "front of a concatenation cannot contain a Build"
        );
        let mut spec = front.spec;
        spec.extend(back.spec);
        let mut ops = front.ops;
        ops.extend(back.ops);
        let mut probe_targets = front.probe_targets;
        probe_targets.extend(back.probe_targets);
        PhysChain {
            ops,
            spec,
            probe_targets,
            scratch: front.scratch,
            // The merged chain continues the *source-side* stream: tuples
            // the front already consumed went to the temp relation and are
            // replayed through the back separately.
            consumed: front.consumed,
            emitted: back.emitted,
        }
    }

    /// Source tuples consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Tuples emitted from the open end so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Hash table this chain builds into, if build-terminated.
    pub fn build_target(&self) -> Option<HtId> {
        match self.ops.last() {
            Some(RunOp::Build { table }) => Some(*table),
            _ => None,
        }
    }

    /// Hash tables this chain probes (precomputed at compile time).
    pub fn probe_targets(&self) -> &[HtId] {
        &self.probe_targets
    }

    /// Push `input` through the chain, inserting into / probing tables in
    /// `arena`, charging instructions per `params`. Collects survivors of
    /// the open end into `out` (cleared first) and returns the instruction
    /// count; together with the chain's internal scratch buffer this makes
    /// the steady-state batch path allocation-free.
    ///
    /// # Panics
    /// Panics if a probed table is not complete — the scheduler must never
    /// run a chain whose blocking inputs are unfinished (C-schedulability).
    pub fn run_batch_into(
        &mut self,
        input: &[Tuple],
        out: &mut Vec<Tuple>,
        arena: &mut HashTableArena,
        params: &SimParams,
    ) -> u64 {
        self.consumed += input.len() as u64;
        out.clear();
        let mut instr: u64 = 0;
        if self.ops.is_empty() {
            out.extend_from_slice(input);
            self.emitted += out.len() as u64;
            return instr;
        }

        let mut spare = std::mem::take(&mut self.scratch);
        for (i, op) in self.ops.iter_mut().enumerate() {
            // The first operator reads the caller's slice directly; later
            // ones ping-pong between `out` and `spare`.
            match op {
                RunOp::Select { acc } => {
                    if i == 0 {
                        instr += input.len() as u64 * params.instr_move_tuple;
                        for t in input {
                            if acc.next() > 0 {
                                out.push(*t);
                            }
                        }
                    } else {
                        instr += out.len() as u64 * params.instr_move_tuple;
                        out.retain(|_| acc.next() > 0);
                    }
                }
                RunOp::Probe { table, acc, picked } => {
                    let ht = arena.get(*table);
                    assert!(
                        ht.is_complete(),
                        "probe of incomplete hash table {table:?} — C-schedulability violated"
                    );
                    let src: &[Tuple] = if i == 0 {
                        input
                    } else {
                        std::mem::swap(out, &mut spare);
                        out.clear();
                        &spare
                    };
                    instr += src.len() as u64 * params.instr_hash_search;
                    for t in src {
                        // An empty build side matches nothing, whatever the
                        // estimated fan-out says.
                        let k = if ht.is_empty() { 0 } else { acc.next() };
                        instr += k * params.instr_produce_tuple;
                        for _ in 0..k {
                            // Rotate deterministically through the build side;
                            // the output carries the probe tuple's identity.
                            let _build = ht.pick(*picked);
                            *picked += 1;
                            out.push(*t);
                        }
                    }
                }
                RunOp::Build { table } => {
                    let pending = if i == 0 { input.len() } else { out.len() };
                    instr += pending as u64 * params.instr_move_tuple;
                    let ht = arena.get_mut(*table);
                    if i == 0 {
                        for t in input {
                            ht.insert(*t);
                        }
                    } else {
                        for t in out.drain(..) {
                            ht.insert(t);
                        }
                    }
                }
            }
        }
        spare.clear();
        self.scratch = spare;

        self.emitted += out.len() as u64;
        instr
    }

    /// Snapshot the probe-target state needed to fork this chain into
    /// morsel cursors (or to fast-forward it past a morsel-executed batch).
    pub fn snapshot_stats(&self, arena: &HashTableArena) -> HtStats {
        HtStats::capture(arena, &self.probe_targets)
    }

    /// Fork the chain's operator state for one morsel of an incoming batch.
    ///
    /// `skip` is the number of batch tuples preceding this morsel: the fork
    /// starts from the chain's *current* accumulator state and fast-forwards
    /// arithmetically past `skip` source tuples, landing on exactly the state
    /// serial execution would reach at that offset (the fan-out invariant
    /// `outputs == floor(inputs · fanout)` makes the state a pure function of
    /// the consumed count — see [`FanoutAccumulator::advance_by`]). Forking
    /// is relative, not absolute, because a chain produced by
    /// [`PhysChain::concat`] carries front operators whose consumed counts
    /// differ from the chain's own.
    ///
    /// The fork shares no state with the chain or the arena: probes read the
    /// captured `stats`, builds collect into the morsel's output vector.
    pub fn fork_morsel(&self, skip: u64, stats: &HtStats) -> MorselCursor {
        let mut ops = self.ops.clone();
        let _ = advance_ops(&mut ops, skip, stats);
        MorselCursor { ops }
    }

    /// Fast-forward the chain past a batch of `n` source tuples that forked
    /// morsel cursors executed on its behalf, and return the number of
    /// open-end output tuples that batch emitted. After this call the chain
    /// is in exactly the state [`PhysChain::run_batch_into`] would have left
    /// it in for the same batch.
    pub fn advance_source(&mut self, n: u64, stats: &HtStats) -> u64 {
        self.consumed += n;
        let delta = advance_ops(&mut self.ops, n, stats);
        self.emitted += delta;
        delta
    }

    /// Allocating convenience form of [`PhysChain::run_batch_into`].
    pub fn run_batch(
        &mut self,
        input: &[Tuple],
        arena: &mut HashTableArena,
        params: &SimParams,
    ) -> BatchResult {
        let mut out = Vec::new();
        let instr = self.run_batch_into(input, &mut out, arena, params);
        BatchResult { out, instr }
    }
}

/// Fast-forward `ops` past `n` source tuples arithmetically, mirroring the
/// exact accumulator calls [`PhysChain::run_batch_into`] would have made, and
/// return the open-end output count. A probe against an empty build side
/// never touches its accumulator in the serial path (`if ht.is_empty() { 0 }`
/// short-circuits before `acc.next()`), so the advance skips it too — safe
/// because probed tables are complete and their emptiness is frozen.
fn advance_ops(ops: &mut [RunOp], n: u64, stats: &HtStats) -> u64 {
    let mut delta = n;
    for op in ops.iter_mut() {
        match op {
            RunOp::Select { acc } => delta = acc.advance_by(delta),
            RunOp::Probe { table, acc, picked } => {
                let st = stats.get(*table);
                assert!(
                    st.complete,
                    "probe of incomplete hash table {table:?} — C-schedulability violated"
                );
                if st.len == 0 {
                    delta = 0;
                } else {
                    delta = acc.advance_by(delta);
                    *picked += delta;
                }
            }
            RunOp::Build { .. } => delta = 0,
        }
    }
    delta
}

/// A forked, independently executable copy of a chain's operator state,
/// positioned at one morsel's offset within a batch (see
/// [`PhysChain::fork_morsel`]). Cursors own everything they touch, so any
/// number of them can run concurrently on plain worker threads while the
/// master chain and the hash-table arena stay untouched.
#[derive(Debug)]
pub struct MorselCursor {
    ops: Vec<RunOp>,
}

impl MorselCursor {
    /// Push one morsel through the forked chain, collecting open-end
    /// survivors — or, for a build-terminated chain, the build-destined
    /// partition — into `out` (cleared first), and return the instruction
    /// count. Instruction charges are identical per tuple to
    /// [`PhysChain::run_batch_into`], so summing morsel counts reproduces the
    /// serial batch count exactly.
    ///
    /// # Panics
    /// Panics if a probed table's snapshot says the build is incomplete.
    pub fn run_into(
        &mut self,
        input: &[Tuple],
        out: &mut Vec<Tuple>,
        stats: &HtStats,
        params: &SimParams,
    ) -> u64 {
        out.clear();
        let mut instr: u64 = 0;
        if self.ops.is_empty() {
            out.extend_from_slice(input);
            return instr;
        }

        let mut spare: Vec<Tuple> = Vec::new();
        for (i, op) in self.ops.iter_mut().enumerate() {
            match op {
                RunOp::Select { acc } => {
                    if i == 0 {
                        instr += input.len() as u64 * params.instr_move_tuple;
                        for t in input {
                            if acc.next() > 0 {
                                out.push(*t);
                            }
                        }
                    } else {
                        instr += out.len() as u64 * params.instr_move_tuple;
                        out.retain(|_| acc.next() > 0);
                    }
                }
                RunOp::Probe { table, acc, picked } => {
                    let st = stats.get(*table);
                    assert!(
                        st.complete,
                        "probe of incomplete hash table {table:?} — C-schedulability violated"
                    );
                    let src: &[Tuple] = if i == 0 {
                        input
                    } else {
                        std::mem::swap(out, &mut spare);
                        out.clear();
                        &spare
                    };
                    instr += src.len() as u64 * params.instr_hash_search;
                    for t in src {
                        let k = if st.len == 0 { 0 } else { acc.next() };
                        instr += k * params.instr_produce_tuple;
                        for _ in 0..k {
                            // Serial probing discards the picked build tuple
                            // (`let _build = ht.pick(*picked)`), so the
                            // cursor only advances the rotation counter.
                            *picked += 1;
                            out.push(*t);
                        }
                    }
                }
                RunOp::Build { .. } => {
                    // Collect the partition instead of inserting: the merge
                    // step absorbs partitions into the real table in morsel
                    // order ([`SimHashTable::absorb_partition`]), which
                    // reproduces the serial insert sequence.
                    let pending = if i == 0 { input.len() } else { out.len() };
                    instr += pending as u64 * params.instr_move_tuple;
                    if i == 0 {
                        out.extend_from_slice(input);
                    }
                }
            }
        }
        instr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::RelId;

    fn tuples(n: u64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(i, RelId(0))).collect()
    }

    #[test]
    fn select_charges_move_and_filters() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let mut c = PhysChain::compile(&[OpSpec::Select { selectivity: 0.5 }]);
        let r = c.run_batch(&tuples(100), &mut arena, &p);
        assert_eq!(r.out.len(), 50);
        assert_eq!(r.instr, 100 * p.instr_move_tuple);
        assert_eq!(c.consumed(), 100);
        assert_eq!(c.emitted(), 50);
    }

    #[test]
    fn build_terminates_into_table() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let ht = arena.alloc();
        let mut c = PhysChain::compile(&[OpSpec::Build { table: ht }]);
        let r = c.run_batch(&tuples(10), &mut arena, &p);
        assert!(r.out.is_empty());
        assert_eq!(arena.get(ht).len(), 10);
        assert_eq!(r.instr, 10 * p.instr_move_tuple);
        assert_eq!(c.build_target(), Some(ht));
    }

    #[test]
    fn probe_fanout_and_costs() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let ht = arena.alloc();
        for t in tuples(4) {
            arena.get_mut(ht).insert(t);
        }
        arena.get_mut(ht).complete();
        let mut c = PhysChain::compile(&[OpSpec::Probe {
            table: ht,
            fanout: 2.0,
        }]);
        let r = c.run_batch(&tuples(10), &mut arena, &p);
        assert_eq!(r.out.len(), 20);
        assert_eq!(
            r.instr,
            10 * p.instr_hash_search + 20 * p.instr_produce_tuple
        );
    }

    #[test]
    #[should_panic(expected = "incomplete hash table")]
    fn probing_incomplete_table_panics() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let ht = arena.alloc();
        let mut c = PhysChain::compile(&[OpSpec::Probe {
            table: ht,
            fanout: 1.0,
        }]);
        let _ = c.run_batch(&tuples(1), &mut arena, &p);
    }

    #[test]
    #[should_panic(expected = "terminal operator")]
    fn build_mid_chain_rejected() {
        let _ = PhysChain::compile(&[
            OpSpec::Build { table: HtId(0) },
            OpSpec::Select { selectivity: 1.0 },
        ]);
    }

    #[test]
    fn full_chain_scan_probe_build() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let probed = arena.alloc();
        for t in tuples(8) {
            arena.get_mut(probed).insert(t);
        }
        arena.get_mut(probed).complete();
        let built = arena.alloc();
        let mut c = PhysChain::compile(&[
            OpSpec::Select { selectivity: 0.5 },
            OpSpec::Probe {
                table: probed,
                fanout: 3.0,
            },
            OpSpec::Build { table: built },
        ]);
        let r = c.run_batch(&tuples(100), &mut arena, &p);
        assert!(r.out.is_empty());
        assert_eq!(arena.get(built).len(), 150); // 100 × 0.5 × 3
        assert_eq!(c.probe_targets(), vec![probed]);
        assert_eq!(c.build_target(), Some(built));
    }

    #[test]
    fn estimate_matches_execution_cost() {
        let p = SimParams::default();
        let spec = [
            OpSpec::Select { selectivity: 0.5 },
            OpSpec::Probe {
                table: HtId(0),
                fanout: 3.0,
            },
        ];
        let est = estimate_chain(&spec, &p);
        // move(100) + 0.5·(search(100) + 3·produce(50)) = 100 + 125 = 225
        assert!((est.instr_per_source_tuple - 225.0).abs() < 1e-9);
        assert!((est.fanout_total - 1.5).abs() < 1e-9);

        // Execute and compare: 1000 source tuples.
        let mut arena = HashTableArena::new();
        let ht = arena.alloc();
        arena.get_mut(ht).insert(Tuple::new(0, RelId(1)));
        arena.get_mut(ht).complete();
        let mut c = PhysChain::compile(&[
            OpSpec::Select { selectivity: 0.5 },
            OpSpec::Probe {
                table: ht,
                fanout: 3.0,
            },
        ]);
        let r = c.run_batch(&tuples(1000), &mut arena, &p);
        assert_eq!(r.out.len(), 1500);
        assert_eq!(r.instr as f64, est.instr_per_source_tuple * 1000.0);
    }

    #[test]
    fn run_batch_into_matches_run_batch() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let ht = arena.alloc();
        for t in tuples(6) {
            arena.get_mut(ht).insert(t);
        }
        arena.get_mut(ht).complete();
        let spec = [
            OpSpec::Select { selectivity: 0.7 },
            OpSpec::Probe {
                table: ht,
                fanout: 2.5,
            },
            OpSpec::Select { selectivity: 0.9 },
        ];
        let mut a = PhysChain::compile(&spec);
        let mut b = PhysChain::compile(&spec);
        let mut out = Vec::new();
        for chunk in tuples(500).chunks(64) {
            let r = a.run_batch(chunk, &mut arena, &p);
            let instr = b.run_batch_into(chunk, &mut out, &mut arena, &p);
            assert_eq!(r.instr, instr);
            assert_eq!(r.out, out);
        }
        assert_eq!(a.consumed(), b.consumed());
        assert_eq!(a.emitted(), b.emitted());
    }

    /// Run one batch through `serial`, and the same batch morselized through
    /// forks of `parallel`, asserting outputs, instructions, and master state
    /// all match bit-for-bit.
    fn assert_morsel_batch_matches(
        serial: &mut PhysChain,
        parallel: &mut PhysChain,
        batch: &[Tuple],
        morsel: usize,
        arena: &mut HashTableArena,
        p: &SimParams,
    ) {
        let mut want = Vec::new();
        let want_instr = serial.run_batch_into(batch, &mut want, arena, p);

        let stats = parallel.snapshot_stats(arena);
        let mut got = Vec::new();
        let mut got_instr = 0;
        for (i, chunk) in batch.chunks(morsel).enumerate() {
            let mut cursor = parallel.fork_morsel((i * morsel) as u64, &stats);
            let mut part = Vec::new();
            got_instr += cursor.run_into(chunk, &mut part, &stats, p);
            got.extend_from_slice(&part);
        }
        let emitted = parallel.advance_source(batch.len() as u64, &stats);

        if let Some(ht) = parallel.build_target() {
            // Serial already inserted its copy; only sanity-check counts here
            // (the dedicated build test uses two arenas).
            assert_eq!(emitted, 0);
            let _ = ht;
        } else {
            assert_eq!(got, want, "morsel outputs diverge at morsel={morsel}");
            assert_eq!(emitted, want.len() as u64);
        }
        assert_eq!(got_instr, want_instr, "instruction counts diverge");
        assert_eq!(serial.consumed(), parallel.consumed());
        assert_eq!(serial.emitted(), parallel.emitted());
    }

    #[test]
    fn morsel_forks_match_serial_at_any_granularity() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let ht = arena.alloc();
        for t in tuples(6) {
            arena.get_mut(ht).insert(t);
        }
        arena.get_mut(ht).complete();
        let empty = arena.alloc();
        arena.get_mut(empty).complete();

        let specs: Vec<Vec<OpSpec>> = vec![
            vec![],
            vec![OpSpec::Select { selectivity: 0.37 }],
            vec![
                OpSpec::Select { selectivity: 0.7 },
                OpSpec::Probe {
                    table: ht,
                    fanout: 2.5,
                },
                OpSpec::Select { selectivity: 0.9 },
            ],
            vec![
                OpSpec::Probe {
                    table: ht,
                    fanout: 1.3,
                },
                OpSpec::Probe {
                    table: empty,
                    fanout: 4.0,
                },
            ],
        ];
        for spec in &specs {
            for &morsel in &[1usize, 7, 32, 64, 1000] {
                let mut serial = PhysChain::compile(spec);
                let mut parallel = PhysChain::compile(spec);
                // Several consecutive batches so forks start from a
                // mid-stream master state, not just from zero.
                for batch in tuples(500).chunks(157) {
                    assert_morsel_batch_matches(
                        &mut serial,
                        &mut parallel,
                        batch,
                        morsel,
                        &mut arena,
                        &p,
                    );
                }
            }
        }
    }

    #[test]
    fn partitioned_build_matches_serial_build() {
        let p = SimParams::default();
        for &morsel in &[1usize, 9, 50] {
            let mut arena_s = HashTableArena::new();
            let mut arena_p = HashTableArena::new();
            let probed_s = arena_s.alloc();
            let probed_p = arena_p.alloc();
            for t in tuples(5) {
                arena_s.get_mut(probed_s).insert(t);
                arena_p.get_mut(probed_p).insert(t);
            }
            arena_s.get_mut(probed_s).complete();
            arena_p.get_mut(probed_p).complete();
            let built_s = arena_s.alloc();
            let built_p = arena_p.alloc();

            let spec = |probed, built| {
                vec![
                    OpSpec::Select { selectivity: 0.8 },
                    OpSpec::Probe {
                        table: probed,
                        fanout: 1.7,
                    },
                    OpSpec::Build { table: built },
                ]
            };
            let mut serial = PhysChain::compile(&spec(probed_s, built_s));
            let mut parallel = PhysChain::compile(&spec(probed_p, built_p));

            let input = tuples(300);
            let want_instr = serial.run_batch(&input, &mut arena_s, &p).instr;

            let stats = parallel.snapshot_stats(&arena_p);
            let mut got_instr = 0;
            let mut parts: Vec<Vec<Tuple>> = Vec::new();
            for (i, chunk) in input.chunks(morsel).enumerate() {
                let mut cursor = parallel.fork_morsel((i * morsel) as u64, &stats);
                let mut part = Vec::new();
                got_instr += cursor.run_into(chunk, &mut part, &stats, &p);
                parts.push(part);
            }
            for part in &parts {
                arena_p.get_mut(built_p).absorb_partition(part);
            }
            let emitted = parallel.advance_source(input.len() as u64, &stats);

            assert_eq!(emitted, 0);
            assert_eq!(got_instr, want_instr);
            assert_eq!(serial.emitted(), parallel.emitted());
            let s = arena_s.get(built_s);
            let g = arena_p.get(built_p);
            assert_eq!(s.len(), g.len(), "morsel={morsel}");
            // Insert order must match exactly: pick() rotation depends on it.
            for i in 0..s.len() {
                assert_eq!(s.pick(i).unwrap(), g.pick(i).unwrap());
            }
        }
    }

    #[test]
    fn batches_are_equivalent_to_one_shot() {
        let p = SimParams::default();
        let mut arena = HashTableArena::new();
        let spec = [OpSpec::Select { selectivity: 0.3 }];
        let mut whole = PhysChain::compile(&spec);
        let mut split = PhysChain::compile(&spec);
        let input = tuples(1000);
        let r1 = whole.run_batch(&input, &mut arena, &p);
        let mut out2 = 0;
        for chunk in input.chunks(37) {
            out2 += split.run_batch(chunk, &mut arena, &p).out.len();
        }
        assert_eq!(
            r1.out.len(),
            out2,
            "batch boundaries must not change results"
        );
    }
}
