//! Simulated hash tables.
//!
//! The build side of every hash join materializes into a [`SimHashTable`]:
//! a real in-memory structure (tuples plus a key index) whose footprint is
//! charged against the query-memory budget at the Table 1 tuple size. Hash
//! tables are shared between the chain that builds them and the chain that
//! probes them, so they live in a [`HashTableArena`] indexed by [`HtId`] —
//! chains hold ids, never references.

use std::collections::HashMap;

use crate::tuple::Tuple;

/// Identifier of a hash table in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HtId(pub u32);

/// One hash table: the fully materialized build side of a join.
#[derive(Debug, Default)]
pub struct SimHashTable {
    tuples: Vec<Tuple>,
    index: HashMap<u64, Vec<u32>>,
    complete: bool,
}

impl SimHashTable {
    /// An empty, still-building table.
    pub fn new() -> Self {
        SimHashTable::default()
    }

    /// Insert one build tuple.
    ///
    /// # Panics
    /// Panics if the table was already marked complete: the blocking edge
    /// semantics of §2.2 forbid inserting after a consumer started probing.
    pub fn insert(&mut self, t: Tuple) {
        assert!(!self.complete, "insert into completed hash table");
        let pos = self.tuples.len() as u32;
        self.tuples.push(t);
        self.index.entry(t.key).or_default().push(pos);
    }

    /// Number of build tuples.
    pub fn len(&self) -> u64 {
        self.tuples.len() as u64
    }

    /// True when no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Mark the build finished; probing may begin.
    pub fn complete(&mut self) {
        self.complete = true;
    }

    /// Whether the build finished.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Real key lookup (used by tests and the quickstart example; the
    /// selectivity-driven probe uses [`SimHashTable::pick`]).
    pub fn lookup(&self, key: u64) -> &[u32] {
        self.index.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Deterministically pick the `i`-th matched build tuple for synthetic
    /// match generation: rotates through the build side so every build tuple
    /// participates equally.
    pub fn pick(&self, i: u64) -> Option<&Tuple> {
        if self.tuples.is_empty() {
            None
        } else {
            Some(&self.tuples[(i % self.tuples.len() as u64) as usize])
        }
    }

    /// Simulated memory footprint given the Table 1 tuple size.
    pub fn footprint_bytes(&self, tuple_bytes: u32) -> u64 {
        self.len() * tuple_bytes as u64
    }

    /// Cheap copyable view of the table for morsel workers (see [`HtStat`]).
    pub fn stat(&self) -> HtStat {
        HtStat {
            len: self.len(),
            complete: self.complete,
        }
    }

    /// Absorb one partition of build tuples collected by a morsel worker.
    ///
    /// Morsel-parallel execution of a build chain never touches the shared
    /// table from worker threads: each morsel collects its build-destined
    /// tuples into a private output vector, and the merge step absorbs the
    /// partitions in morsel-index order. Because morsel order equals batch
    /// order, the table ends up with exactly the insert sequence serial
    /// execution would have produced — same `tuples` vec, same `index`
    /// chains, same `pick` rotation.
    pub fn absorb_partition(&mut self, part: &[Tuple]) {
        assert!(!self.complete, "absorb into completed hash table");
        for t in part {
            self.insert(*t);
        }
    }
}

/// Copyable snapshot of the probe-relevant state of one hash table.
///
/// Synthetic probes never read the matched build tuple ([`SimHashTable::pick`]
/// results are discarded; the probe re-emits its own input tuple), so a morsel
/// worker only needs the table's length (drives the `picked` rotation and the
/// empty-table skip) and completeness flag (asserted before probing). This is
/// what lets probe morsels run on plain worker threads with no shared arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtStat {
    /// Number of build tuples.
    pub len: u64,
    /// Whether the build finished (probing requires this).
    pub complete: bool,
}

/// Snapshot of every table a chain's probes target, taken before a batch is
/// scattered into morsels. Indexed by [`HtId`].
#[derive(Debug, Clone, Default)]
pub struct HtStats {
    entries: Vec<(HtId, HtStat)>,
}

impl HtStats {
    /// Snapshot the given tables out of `arena`.
    pub fn capture(arena: &HashTableArena, ids: &[HtId]) -> Self {
        HtStats {
            entries: ids.iter().map(|&id| (id, arena.get(id).stat())).collect(),
        }
    }

    /// Look up the snapshot of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not captured — forking a chain with a probe target
    /// missing from the snapshot is a logic error, not a runtime condition.
    pub fn get(&self, id: HtId) -> HtStat {
        self.entries
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| panic!("no snapshot for {id:?}"))
    }
}

/// Owner of all hash tables of one query execution.
#[derive(Debug, Default)]
pub struct HashTableArena {
    tables: Vec<SimHashTable>,
}

impl HashTableArena {
    /// An empty arena.
    pub fn new() -> Self {
        HashTableArena::default()
    }

    /// Allocate a fresh (building) table.
    pub fn alloc(&mut self) -> HtId {
        self.tables.push(SimHashTable::new());
        HtId(self.tables.len() as u32 - 1)
    }

    /// Shared access.
    pub fn get(&self, id: HtId) -> &SimHashTable {
        &self.tables[id.0 as usize]
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, id: HtId) -> &mut SimHashTable {
        &mut self.tables[id.0 as usize]
    }

    /// Number of tables allocated.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no table was allocated.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Drop the contents of a table whose consumers are done, freeing the
    /// (host) memory; the id stays valid but the table reads as empty.
    pub fn discard(&mut self, id: HtId) {
        let t = &mut self.tables[id.0 as usize];
        t.tuples = Vec::new();
        t.index = HashMap::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::RelId;

    fn t(key: u64) -> Tuple {
        Tuple::new(key, RelId(0))
    }

    #[test]
    fn insert_and_lookup() {
        let mut ht = SimHashTable::new();
        ht.insert(t(7));
        ht.insert(t(7));
        ht.insert(t(9));
        assert_eq!(ht.len(), 3);
        assert_eq!(ht.lookup(7).len(), 2);
        assert_eq!(ht.lookup(9), &[2]);
        assert!(ht.lookup(42).is_empty());
    }

    #[test]
    fn pick_rotates_over_build_side() {
        let mut ht = SimHashTable::new();
        for k in 0..3 {
            ht.insert(t(k));
        }
        assert_eq!(ht.pick(0).unwrap().key, 0);
        assert_eq!(ht.pick(4).unwrap().key, 1);
        assert!(SimHashTable::new().pick(0).is_none());
    }

    #[test]
    fn footprint_uses_table1_tuple_size() {
        let mut ht = SimHashTable::new();
        for k in 0..100 {
            ht.insert(t(k));
        }
        assert_eq!(ht.footprint_bytes(40), 4_000);
    }

    #[test]
    #[should_panic(expected = "insert into completed")]
    fn insert_after_complete_panics() {
        let mut ht = SimHashTable::new();
        ht.complete();
        ht.insert(t(1));
    }

    #[test]
    fn arena_allocates_distinct_ids() {
        let mut a = HashTableArena::new();
        let x = a.alloc();
        let y = a.alloc();
        assert_ne!(x, y);
        a.get_mut(x).insert(t(1));
        assert_eq!(a.get(x).len(), 1);
        assert_eq!(a.get(y).len(), 0);
    }

    #[test]
    fn discard_frees_contents_but_keeps_id() {
        let mut a = HashTableArena::new();
        let x = a.alloc();
        a.get_mut(x).insert(t(1));
        a.discard(x);
        assert_eq!(a.get(x).len(), 0);
        assert!(a.get(x).lookup(1).is_empty());
    }
}
