//! Simulated hash tables.
//!
//! The build side of every hash join materializes into a [`SimHashTable`]:
//! a real in-memory structure (tuples plus a key index) whose footprint is
//! charged against the query-memory budget at the Table 1 tuple size. Hash
//! tables are shared between the chain that builds them and the chain that
//! probes them, so they live in a [`HashTableArena`] indexed by [`HtId`] —
//! chains hold ids, never references.

use std::collections::HashMap;

use crate::tuple::Tuple;

/// Identifier of a hash table in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HtId(pub u32);

/// One hash table: the fully materialized build side of a join.
#[derive(Debug, Default)]
pub struct SimHashTable {
    tuples: Vec<Tuple>,
    index: HashMap<u64, Vec<u32>>,
    complete: bool,
}

impl SimHashTable {
    /// An empty, still-building table.
    pub fn new() -> Self {
        SimHashTable::default()
    }

    /// Insert one build tuple.
    ///
    /// # Panics
    /// Panics if the table was already marked complete: the blocking edge
    /// semantics of §2.2 forbid inserting after a consumer started probing.
    pub fn insert(&mut self, t: Tuple) {
        assert!(!self.complete, "insert into completed hash table");
        let pos = self.tuples.len() as u32;
        self.tuples.push(t);
        self.index.entry(t.key).or_default().push(pos);
    }

    /// Number of build tuples.
    pub fn len(&self) -> u64 {
        self.tuples.len() as u64
    }

    /// True when no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Mark the build finished; probing may begin.
    pub fn complete(&mut self) {
        self.complete = true;
    }

    /// Whether the build finished.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Real key lookup (used by tests and the quickstart example; the
    /// selectivity-driven probe uses [`SimHashTable::pick`]).
    pub fn lookup(&self, key: u64) -> &[u32] {
        self.index.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Deterministically pick the `i`-th matched build tuple for synthetic
    /// match generation: rotates through the build side so every build tuple
    /// participates equally.
    pub fn pick(&self, i: u64) -> Option<&Tuple> {
        if self.tuples.is_empty() {
            None
        } else {
            Some(&self.tuples[(i % self.tuples.len() as u64) as usize])
        }
    }

    /// Simulated memory footprint given the Table 1 tuple size.
    pub fn footprint_bytes(&self, tuple_bytes: u32) -> u64 {
        self.len() * tuple_bytes as u64
    }
}

/// Owner of all hash tables of one query execution.
#[derive(Debug, Default)]
pub struct HashTableArena {
    tables: Vec<SimHashTable>,
}

impl HashTableArena {
    /// An empty arena.
    pub fn new() -> Self {
        HashTableArena::default()
    }

    /// Allocate a fresh (building) table.
    pub fn alloc(&mut self) -> HtId {
        self.tables.push(SimHashTable::new());
        HtId(self.tables.len() as u32 - 1)
    }

    /// Shared access.
    pub fn get(&self, id: HtId) -> &SimHashTable {
        &self.tables[id.0 as usize]
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, id: HtId) -> &mut SimHashTable {
        &mut self.tables[id.0 as usize]
    }

    /// Number of tables allocated.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no table was allocated.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Drop the contents of a table whose consumers are done, freeing the
    /// (host) memory; the id stays valid but the table reads as empty.
    pub fn discard(&mut self, id: HtId) {
        let t = &mut self.tables[id.0 as usize];
        t.tuples = Vec::new();
        t.index = HashMap::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::RelId;

    fn t(key: u64) -> Tuple {
        Tuple::new(key, RelId(0))
    }

    #[test]
    fn insert_and_lookup() {
        let mut ht = SimHashTable::new();
        ht.insert(t(7));
        ht.insert(t(7));
        ht.insert(t(9));
        assert_eq!(ht.len(), 3);
        assert_eq!(ht.lookup(7).len(), 2);
        assert_eq!(ht.lookup(9), &[2]);
        assert!(ht.lookup(42).is_empty());
    }

    #[test]
    fn pick_rotates_over_build_side() {
        let mut ht = SimHashTable::new();
        for k in 0..3 {
            ht.insert(t(k));
        }
        assert_eq!(ht.pick(0).unwrap().key, 0);
        assert_eq!(ht.pick(4).unwrap().key, 1);
        assert!(SimHashTable::new().pick(0).is_none());
    }

    #[test]
    fn footprint_uses_table1_tuple_size() {
        let mut ht = SimHashTable::new();
        for k in 0..100 {
            ht.insert(t(k));
        }
        assert_eq!(ht.footprint_bytes(40), 4_000);
    }

    #[test]
    #[should_panic(expected = "insert into completed")]
    fn insert_after_complete_panics() {
        let mut ht = SimHashTable::new();
        ht.complete();
        ht.insert(t(1));
    }

    #[test]
    fn arena_allocates_distinct_ids() {
        let mut a = HashTableArena::new();
        let x = a.alloc();
        let y = a.alloc();
        assert_ne!(x, y);
        a.get_mut(x).insert(t(1));
        assert_eq!(a.get(x).len(), 1);
        assert_eq!(a.get(y).len(), 0);
    }

    #[test]
    fn discard_frees_contents_but_keeps_id() {
        let mut a = HashTableArena::new();
        let x = a.alloc();
        a.get_mut(x).insert(t(1));
        a.discard(x);
        assert_eq!(a.get(x).len(), 0);
        assert!(a.get(x).lookup(1).is_empty());
    }
}
