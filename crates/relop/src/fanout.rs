//! Deterministic fractional fan-out.
//!
//! Joins and selections in the simulated operator library produce, per input
//! tuple, `f` output tuples *on average*, where `f` is derived from the
//! configured selectivity (§5.1: behaviour is studied "by setting relation
//! parameters (cardinality and selectivity)"). A [`FanoutAccumulator`]
//! spreads the fractional part evenly: input `i` yields
//! `floor((i+1)·f) − floor(i·f)` outputs, so after `n` inputs exactly
//! `floor(n·f)` outputs exist — no randomness, no drift.

/// Deterministic per-tuple output-count generator with exact long-run total.
#[derive(Debug, Clone)]
pub struct FanoutAccumulator {
    /// Average outputs per input.
    fanout: f64,
    /// Inputs consumed so far.
    inputs: u64,
    /// Outputs emitted so far.
    outputs: u64,
}

impl FanoutAccumulator {
    /// Create with average fan-out `f >= 0`.
    pub fn new(fanout: f64) -> Self {
        assert!(fanout >= 0.0 && fanout.is_finite(), "bad fanout {fanout}");
        FanoutAccumulator {
            fanout,
            inputs: 0,
            outputs: 0,
        }
    }

    /// The configured average fan-out.
    pub fn fanout(&self) -> f64 {
        self.fanout
    }

    /// Outputs for the next input tuple.
    #[allow(clippy::should_implement_trait)] // domain verb, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.inputs += 1;
        let target = (self.inputs as f64 * self.fanout).floor() as u64;
        let k = target.saturating_sub(self.outputs);
        self.outputs = target.max(self.outputs);
        k
    }

    /// Consume `n` inputs at once and return the total outputs they emit.
    ///
    /// Because `outputs == floor(inputs · fanout)` always holds, the
    /// accumulator's state after `n` inputs is a pure arithmetic function of
    /// the input count: `advance_by(n)` lands on exactly the state (and
    /// returns exactly the sum) that `n` successive [`FanoutAccumulator::next`]
    /// calls would produce. Morsel-parallel execution relies on this to fork
    /// an operator chain at an arbitrary batch offset and to fast-forward the
    /// master chain past a batch that ran in parallel.
    pub fn advance_by(&mut self, n: u64) -> u64 {
        self.inputs += n;
        let target = (self.inputs as f64 * self.fanout).floor() as u64;
        let k = target.saturating_sub(self.outputs);
        self.outputs = target.max(self.outputs);
        k
    }

    /// Total outputs emitted for `n` inputs without iterating (used by cost
    /// estimation).
    pub fn total_for(n: u64, fanout: f64) -> u64 {
        (n as f64 * fanout).floor() as u64
    }

    /// Inputs consumed so far.
    pub fn inputs(&self) -> u64 {
        self.inputs
    }

    /// Outputs emitted so far.
    pub fn outputs(&self) -> u64 {
        self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_fanout_is_constant() {
        let mut f = FanoutAccumulator::new(2.0);
        for _ in 0..100 {
            assert_eq!(f.next(), 2);
        }
        assert_eq!(f.outputs(), 200);
    }

    #[test]
    fn zero_fanout_filters_everything() {
        let mut f = FanoutAccumulator::new(0.0);
        for _ in 0..50 {
            assert_eq!(f.next(), 0);
        }
    }

    #[test]
    fn fractional_fanout_spreads_evenly() {
        let mut f = FanoutAccumulator::new(0.5);
        let seq: Vec<u64> = (0..6).map(|_| f.next()).collect();
        assert_eq!(seq, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn long_run_total_is_exact() {
        for &fan in &[0.1, 0.25, 0.33, 1.5, 2.75, 10.01] {
            let mut f = FanoutAccumulator::new(fan);
            let total: u64 = (0..10_000).map(|_| f.next()).sum();
            assert_eq!(
                total,
                FanoutAccumulator::total_for(10_000, fan),
                "fanout {fan}"
            );
            assert_eq!(total, (10_000.0 * fan).floor() as u64);
        }
    }

    #[test]
    fn per_step_variation_is_at_most_one() {
        let mut f = FanoutAccumulator::new(1.3);
        for _ in 0..1000 {
            let k = f.next();
            assert!(k == 1 || k == 2, "step must be floor or ceil of fanout");
        }
    }

    #[test]
    #[should_panic(expected = "bad fanout")]
    fn rejects_negative() {
        let _ = FanoutAccumulator::new(-0.1);
    }

    #[test]
    fn advance_by_matches_iterated_next() {
        for &fan in &[0.0, 0.1, 0.33, 0.5, 1.0, 1.3, 2.75, 10.01] {
            for &(pre, n) in &[(0u64, 1u64), (0, 7), (3, 5), (17, 100), (999, 1)] {
                let mut a = FanoutAccumulator::new(fan);
                let mut b = FanoutAccumulator::new(fan);
                for _ in 0..pre {
                    a.next();
                    b.next();
                }
                let stepped: u64 = (0..n).map(|_| a.next()).sum();
                let jumped = b.advance_by(n);
                assert_eq!(stepped, jumped, "fanout {fan} pre {pre} n {n}");
                assert_eq!(a.inputs(), b.inputs());
                assert_eq!(a.outputs(), b.outputs());
            }
        }
    }

    #[test]
    fn advance_by_zero_is_identity() {
        let mut a = FanoutAccumulator::new(1.7);
        a.next();
        let (i, o) = (a.inputs(), a.outputs());
        assert_eq!(a.advance_by(0), 0);
        assert_eq!((a.inputs(), a.outputs()), (i, o));
    }
}
