//! # dqs-relop — simulated relational operator library
//!
//! Operators for the DQS reproduction, following the paper's §5.1
//! methodology: operators are *simulated* — they move synthetic tuples and
//! charge the Table 1 instruction costs — so execution behaviour depends only
//! on cardinalities and selectivities, never on data content.
//!
//! The library provides:
//!
//! * [`tuple::Tuple`] — synthetic tuples with deterministic keys;
//! * [`fanout::FanoutAccumulator`] — exact, deterministic fractional
//!   selectivity / join fan-out;
//! * [`hash_table`] — real in-memory hash tables (the blocking build side of
//!   every join) held in an arena and charged against query memory;
//! * [`ops`] — chain operator specs, compiled chains, batch execution and
//!   the cost estimator that feeds the scheduler's `c_p` metric.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fanout;
pub mod hash_table;
pub mod ops;
pub mod tuple;

pub use fanout::FanoutAccumulator;
pub use hash_table::{HashTableArena, HtId, HtStat, HtStats, SimHashTable};
pub use ops::{estimate_chain, BatchResult, ChainCostEstimate, MorselCursor, OpSpec, PhysChain};
pub use tuple::{synth_key, RelId, Tuple};
