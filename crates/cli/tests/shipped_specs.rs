//! The spec files shipped under `examples/specs/` must stay loadable and
//! runnable — they are the CLI's documentation.

use dqs_cli::spec::WorkloadSpec;
use dqs_core::DsePolicy;
use dqs_exec::{run_workload, SeqPolicy, SpmPolicy};

fn load(name: &str) -> WorkloadSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs/");
    let text = std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("read {name}: {e}"));
    WorkloadSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn star_join_runs_and_dse_wins() {
    let w = load("star_join.json").into_workload().unwrap();
    assert_eq!(w.catalog.len(), 4);
    let seq = run_workload(&w, SeqPolicy);
    let dse = run_workload(&w, DsePolicy::new());
    assert_eq!(seq.output_tuples, dse.output_tuples);
    // `customers` is 10x slower than the rest: the dynamic scheduler must
    // come out ahead.
    assert!(
        dse.response_time < seq.response_time,
        "DSE {} vs SEQ {}",
        dse.response_time,
        seq.response_time
    );
}

#[test]
fn slow_source_runs_under_every_strategy() {
    let w = load("slow_source.json").into_workload().unwrap();
    let seq = run_workload(&w, SeqPolicy);
    let dse = run_workload(&w, DsePolicy::new());
    assert_eq!(seq.output_tuples, dse.output_tuples);
    assert!(dse.response_time < seq.response_time);
}

#[test]
fn concurrent_spec_runs_and_fits_its_declared_memory() {
    // The spec shipped for `dqs submit` demos: three relations, two joins,
    // paced slowly enough that two submissions visibly interleave.
    let w = load("concurrent.json").into_workload().unwrap();
    assert_eq!(w.catalog.len(), 3);
    assert_eq!(w.config.memory_bytes, 32 << 20);
    let m = run_workload(&w, DsePolicy::new());
    assert!(m.output_tuples > 0);
    assert_eq!(m.memory_overflows, 0, "sized to fit its declared budget");
}

#[test]
fn skewed_sources_spec_triggers_mid_query_repermutation() {
    // Heterogeneous rates plus a bursty feed whose rate collapses during
    // its pauses: the drain order that is right at the start is wrong
    // mid-query, so SPM must re-permute at least once — and still deliver
    // SEQ's answer.
    let w = load("skewed_sources.json").into_workload().unwrap();
    let seq = run_workload(&w, SeqPolicy);
    let spm = run_workload(&w, SpmPolicy::new());
    assert_eq!(seq.output_tuples, spm.output_tuples);
    assert!(spm.rate_samples > 0, "observatory fed from arrivals");
    assert!(
        spm.permutations >= 1,
        "flaky_feed's pauses must flip the drain order (got {})",
        spm.permutations
    );
}

#[test]
fn wrong_estimates_spec_reflects_actuals() {
    let spec = load("wrong_estimates.json");
    let w = spec.into_workload().unwrap();
    // feeds claims 30 K but delivers 90 K; lookups claims 10 K, delivers 4 K.
    assert_eq!(w.catalog.cardinality(dqs_relop::RelId(0)), 30_000);
    assert_eq!(w.actual_cardinality(dqs_relop::RelId(0)), 90_000);
    assert_eq!(w.actual_cardinality(dqs_relop::RelId(1)), 4_000);
    let m = run_workload(&w, DsePolicy::new());
    assert!(m.output_tuples > 0);
}
