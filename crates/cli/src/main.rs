//! `dqs` — run, explain, bound and serve JSON-specified integration
//! workloads.
//!
//! ```text
//! dqs explain <spec.json>                 show plan, chains, annotations
//! dqs run <spec.json> [--strategy X] [--seed N] [--all]
//! dqs lwb <spec.json>                     analytic lower bound
//! dqs validate <spec.json>                parse + plan, report problems
//! dqs wrapper --listen ADDR               serve relations to a mediator
//! dqs serve --listen ADDR [--wrappers A]  the concurrent mediator service
//! dqs submit <spec.json> --connect ADDR   run a query on a mediator
//! dqs invalidate --connect ADDR [--rel N] drop the mediator's cached scans
//! dqs bench c10k --connect ADDR           open-loop C10K load generator
//! dqs workload gen --out trace.json       seeded Zipf/Poisson trace generator
//! dqs workload replay trace.json --connect ADDR   open-loop trace replay
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use dqs_cli::spec::WorkloadSpec;
use dqs_core::{lwb, DsePolicy};
use dqs_exec::{
    run_workload, run_workload_observed, run_workload_realtime, run_workload_realtime_observed,
    JsonLinesSink, MaPolicy, Policy, RunMetrics, ScramblingPolicy, SeqPolicy, SpmPolicy, Workload,
};
use dqs_mediator::{
    C10kOpts, ChurnOpts, MediatorServer, Progress, ServeOpts, SubmitOpts, WrapperServer,
};
use dqs_plan::{AnnotatedPlan, ChainSet};
use dqs_workload::{Arrival, GenOpts, ReplayOpts};

fn usage() -> ExitCode {
    eprint!(
        "usage: dqs <command> [<spec.json>] [options]\n\
         commands:\n\
         \u{20} explain   show the optimized plan, pipeline chains and annotations\n\
         \u{20} run       execute (options: --strategy seq|ma|scr|dse|spm, --seed N, --all,\n\
         \u{20}           --real-time: threaded wall-clock execution instead of simulation,\n\
         \u{20}           --workers N: morsel worker threads (default 1 = serial),\n\
         \u{20}           --trace-json <path>: write structured engine events as JSON lines)\n\
         \u{20} lwb       print the analytic response-time lower bound\n\
         \u{20} validate  parse and plan without executing\n\
         \u{20} wrapper   serve simulated relations over TCP (--listen ADDR,\n\
         \u{20}           --churn-ms T: append tuples to every served relation each T ms,\n\
         \u{20}           --churn-tuples N: appended per round (default 64),\n\
         \u{20}           --churn-count N: stop after N rounds, 0 = forever)\n\
         \u{20} serve     run the mediator service (--listen ADDR,\n\
         \u{20}           --wrappers 'id=A,B;id2=C': replica groups — a scan opens on\n\
         \u{20}           the fastest live replica and fails over mid-scan; bare A,B\n\
         \u{20}           still means two distinct wrappers,\n\
         \u{20}           --max-concurrent N, --backlog N, --memory-mb M,\n\
         \u{20}           --cache-mb M: result-cache budget, --cache-ttl-ms T,\n\
         \u{20}           --io-threads N: reactor event-loop threads (default cores-1),\n\
         \u{20}           --session-shards N: connection-map lock stripes (default 8),\n\
         \u{20}           --exec-workers N: shared morsel worker pool (default 1),\n\
         \u{20}           --admission fifo|sjf|fair: backlog promotion policy,\n\
         \u{20}           --refresh-interval-ms T: background cache refresh cycle\n\
         \u{20}           (needs --cache-mb and --wrappers),\n\
         \u{20}           --refresh-budget-kbps K: refresh traffic cap, 0 = unlimited)\n\
         \u{20} submit    run a spec on a mediator (--connect ADDR, --strategy X,\n\
         \u{20}           --seed N, --trace, --no-cache, --json: print raw metrics JSON,\n\
         \u{20}           --connect-timeout MS)\n\
         \u{20} invalidate  drop the mediator's cached scans (--connect ADDR,\n\
         \u{20}           --rel N: one relation only, --wrapper ID: one logical\n\
         \u{20}           wrapper's entries only, --connect-timeout MS)\n\
         \u{20} bench c10k  open-loop load generator (--connect ADDR, --sessions N,\n\
         \u{20}           --batch N: arrival burst size, --strategy X, --spec PATH,\n\
         \u{20}           --timeout-secs N, --out FILE: default BENCH_c10k.json)\n\
         \u{20} workload gen  seeded trace generator (--out FILE: default trace.json,\n\
         \u{20}           --seed N, --specs N: pool size, --events N, --zipf S,\n\
         \u{20}           --arrival poisson|bursty|diurnal, --rate R: arrivals/sec\n\
         \u{20}           (diurnal: the peak), --on-ms/--off-ms: bursty windows,\n\
         \u{20}           --base-rate R, --period-ms T: diurnal curve)\n\
         \u{20} workload replay  fire a trace at a mediator (TRACE --connect ADDR,\n\
         \u{20}           --batch N, --timeout-secs N, --out FILE: default\n\
         \u{20}           BENCH_workload.json; reports queue-wait vs execution\n\
         \u{20}           percentiles and cache hit rate)\n"
    );
    ExitCode::from(2)
}

/// `--flag VALUE` lookup.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// `dqs wrapper --listen ADDR [--churn-ms T]`: a foreground
/// wrapper-server process, optionally with a background write stream.
fn cmd_wrapper(args: &[String]) -> ExitCode {
    let Some(listen) = flag_value(args, "--listen") else {
        eprintln!("error: wrapper requires --listen ADDR (e.g. 127.0.0.1:7401)");
        return ExitCode::from(2);
    };
    let mut churn = None;
    if let Some(ms) = flag_value(args, "--churn-ms") {
        let interval = match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => Duration::from_millis(ms),
            _ => {
                eprintln!("error: --churn-ms wants positive milliseconds, got {ms:?}");
                return ExitCode::from(2);
            }
        };
        let tuples = match flag_value(args, "--churn-tuples") {
            Some(n) => match n.parse::<u64>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("error: --churn-tuples wants a positive integer, got {n:?}");
                    return ExitCode::from(2);
                }
            },
            None => 64,
        };
        let rounds = match flag_value(args, "--churn-count") {
            Some(n) => match n.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("error: --churn-count wants an integer, got {n:?}");
                    return ExitCode::from(2);
                }
            },
            None => 0,
        };
        churn = Some(ChurnOpts {
            interval,
            tuples,
            rounds,
        });
    }
    match WrapperServer::bind_with(listen, Duration::ZERO, churn) {
        Ok(server) => {
            // Printed on its own line so scripts can scrape the port —
            // flushed explicitly because piped stdout is block-buffered,
            // and with `--listen 127.0.0.1:0` the scraped line is the only
            // way to learn the ephemeral port.
            println!("wrapper listening on {}", server.local_addr());
            std::io::stdout().flush().ok();
            server.run_forever();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dqs serve --listen ADDR [--wrappers A,B] [...]`: the mediator service.
fn cmd_serve(args: &[String]) -> ExitCode {
    let Some(listen) = flag_value(args, "--listen") else {
        eprintln!("error: serve requires --listen ADDR (e.g. 127.0.0.1:7400)");
        return ExitCode::from(2);
    };
    let mut opts = ServeOpts::default();
    if let Some(w) = flag_value(args, "--wrappers") {
        // Groups are ';'-separated so a group's replica list can use
        // commas: `w0=h:1,h:2;w1=h:3`. A bare comma list still means
        // distinct single-endpoint wrappers (parsed in dqs-replica).
        opts.wrappers = w.split(';').map(str::to_string).collect();
    }
    if let Some(n) = flag_value(args, "--max-concurrent") {
        match n.parse() {
            Ok(n) => opts.max_concurrent = n,
            Err(_) => {
                eprintln!("error: --max-concurrent wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--backlog") {
        match n.parse() {
            Ok(n) => opts.backlog = n,
            Err(_) => {
                eprintln!("error: --backlog wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--memory-mb") {
        match n.parse::<u64>() {
            Ok(mb) => opts.memory_bytes = mb << 20,
            Err(_) => {
                eprintln!("error: --memory-mb wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--cache-mb") {
        match n.parse::<u64>() {
            Ok(mb) => opts.cache_bytes = mb << 20,
            Err(_) => {
                eprintln!("error: --cache-mb wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--cache-ttl-ms") {
        match n.parse::<u64>() {
            Ok(ms) => opts.cache_ttl = Some(Duration::from_millis(ms)),
            Err(_) => {
                eprintln!("error: --cache-ttl-ms wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--io-threads") {
        match n.parse() {
            Ok(n) => opts.io_threads = n,
            Err(_) => {
                eprintln!("error: --io-threads wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--session-shards") {
        match n.parse() {
            Ok(n) => opts.session_shards = n,
            Err(_) => {
                eprintln!("error: --session-shards wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--exec-workers") {
        match n.parse() {
            Ok(n) if n > 0 => opts.exec_workers = n,
            _ => {
                eprintln!("error: --exec-workers wants a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(p) = flag_value(args, "--admission") {
        match p.parse() {
            Ok(policy) => opts.admission = policy,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--refresh-interval-ms") {
        match n.parse::<u64>() {
            Ok(ms) if ms > 0 => opts.refresh_interval = Some(Duration::from_millis(ms)),
            _ => {
                eprintln!("error: --refresh-interval-ms wants positive milliseconds, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--refresh-budget-kbps") {
        match n.parse::<u64>() {
            Ok(k) => opts.refresh_budget_kbps = k,
            Err(_) => {
                eprintln!("error: --refresh-budget-kbps wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    match MediatorServer::bind(listen, opts) {
        Ok(server) => {
            // Flushed for the same reason as the wrapper: ephemeral-port
            // scripts scrape this line through a pipe.
            println!("mediator listening on {}", server.local_addr());
            std::io::stdout().flush().ok();
            server.run_forever();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dqs submit <spec.json> --connect ADDR [...]`: run a query remotely.
fn cmd_submit(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: submit requires a spec path");
        return ExitCode::from(2);
    };
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("error: submit requires --connect ADDR");
        return ExitCode::from(2);
    };
    let spec_json = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = SubmitOpts {
        strategy: flag_value(args, "--strategy").unwrap_or("dse").to_string(),
        seed: None,
        trace: args.iter().any(|a| a == "--trace"),
        no_cache: args.iter().any(|a| a == "--no-cache"),
        // Default to retrying for a while: lets the quickstart launch
        // `serve` and `submit` together without a sleep in between.
        connect_timeout: Duration::from_millis(10_000),
    };
    if let Some(s) = flag_value(args, "--seed") {
        match s.parse() {
            Ok(seed) => opts.seed = Some(seed),
            Err(_) => {
                eprintln!("error: --seed wants an integer, got {s:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(ms) = flag_value(args, "--connect-timeout") {
        match ms.parse::<u64>() {
            Ok(ms) => opts.connect_timeout = Duration::from_millis(ms),
            Err(_) => {
                eprintln!("error: --connect-timeout wants milliseconds, got {ms:?}");
                return ExitCode::from(2);
            }
        }
    }
    let result = dqs_mediator::submit(addr, &spec_json, &opts, |p| match p {
        Progress::Queued(pos) => eprintln!("queued at position {pos}"),
        Progress::Accepted {
            session,
            memory_bytes,
        } => eprintln!(
            "accepted as session {session} ({:.2} MB memory partition)",
            memory_bytes as f64 / (1024.0 * 1024.0)
        ),
        Progress::TraceLine(line) => println!("{line}"),
    });
    match result {
        Ok(m) => {
            // `--json` dumps the raw Done payload so scripts can grep
            // serving-side counters (stale_served, refreshes, ...) that
            // the human rendering below does not lift into fields.
            if args.iter().any(|a| a == "--json") {
                println!("{}", m.raw);
            } else {
                println!("strategy       {}", m.strategy);
                println!("response       {:.6} s", m.response_secs);
                println!("output tuples  {}", m.output_tuples);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dqs invalidate --connect ADDR [--rel N] [--wrapper ID]`: refresh the
/// mediator's result cache by dropping entries — one relation's, one
/// logical wrapper's (the replica-group id scans were recorded under),
/// their conjunction, or all of them.
fn cmd_invalidate(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("error: invalidate requires --connect ADDR");
        return ExitCode::from(2);
    };
    let rel = match flag_value(args, "--rel") {
        Some(n) => match n.parse::<u16>() {
            Ok(r) => Some(dqs_relop::RelId(r)),
            Err(_) => {
                eprintln!("error: --rel wants a relation id, got {n:?}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let timeout = match flag_value(args, "--connect-timeout") {
        Some(ms) => match ms.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms),
            Err(_) => {
                eprintln!("error: --connect-timeout wants milliseconds, got {ms:?}");
                return ExitCode::from(2);
            }
        },
        None => Duration::from_millis(10_000),
    };
    let wrapper = flag_value(args, "--wrapper").map(str::to_string);
    match dqs_mediator::invalidate(addr, rel, wrapper, timeout) {
        Ok((entries, bytes)) => {
            println!("invalidated {entries} cached scans ({bytes} bytes released)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dqs bench c10k --connect ADDR [...]`: the open-loop load generator.
fn cmd_bench(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) != Some("c10k") {
        eprintln!("error: bench wants a mode; only `bench c10k` exists");
        return ExitCode::from(2);
    }
    let args = &args[1..];
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("error: bench c10k requires --connect ADDR");
        return ExitCode::from(2);
    };
    let mut opts = C10kOpts {
        addr: addr.to_string(),
        ..C10kOpts::default()
    };
    if let Some(n) = flag_value(args, "--sessions") {
        match n.parse() {
            Ok(n) => opts.sessions = n,
            Err(_) => {
                eprintln!("error: --sessions wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--batch") {
        match n.parse() {
            Ok(n) if n > 0 => opts.connect_batch = n,
            _ => {
                eprintln!("error: --batch wants a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--timeout-secs") {
        match n.parse::<u64>() {
            Ok(s) => opts.timeout = Duration::from_secs(s),
            Err(_) => {
                eprintln!("error: --timeout-secs wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(s) = flag_value(args, "--strategy") {
        opts.strategy = s.to_string();
    }
    if let Some(path) = flag_value(args, "--spec") {
        match std::fs::read_to_string(path) {
            Ok(text) => opts.spec_json = text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let out = flag_value(args, "--out").unwrap_or("BENCH_c10k.json");
    let report = match dqs_mediator::run_c10k(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json();
    if let Err(e) = std::fs::write(out, format!("{json}\n")) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    println!(
        "c10k: {}/{} completed, {} errored, peak {} concurrent, p99 {:.2} ms -> {}",
        report.completed,
        report.sessions,
        report.errored,
        report.peak_concurrent,
        report.p99_ms,
        out
    );
    if report.errored > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dqs workload gen|replay [...]`: the workload generator and the
/// open-loop trace replay harness.
fn cmd_workload(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_workload_gen(&args[1..]),
        Some("replay") => cmd_workload_replay(&args[1..]),
        _ => {
            eprintln!("error: workload wants a mode: `workload gen` or `workload replay`");
            ExitCode::from(2)
        }
    }
}

/// `dqs workload gen --out trace.json [...]`: synthesize a trace.
fn cmd_workload_gen(args: &[String]) -> ExitCode {
    let mut opts = GenOpts::default();
    macro_rules! int_flag {
        ($flag:literal, $target:expr) => {
            if let Some(n) = flag_value(args, $flag) {
                match n.parse() {
                    Ok(v) => $target = v,
                    Err(_) => {
                        eprintln!("error: {} wants an integer, got {n:?}", $flag);
                        return ExitCode::from(2);
                    }
                }
            }
        };
    }
    int_flag!("--seed", opts.seed);
    int_flag!("--specs", opts.specs);
    int_flag!("--events", opts.events);
    if opts.specs == 0 || opts.events == 0 {
        eprintln!("error: --specs and --events must be positive");
        return ExitCode::from(2);
    }
    if let Some(s) = flag_value(args, "--zipf") {
        match s.parse() {
            Ok(z) => opts.zipf_s = z,
            Err(_) => {
                eprintln!("error: --zipf wants a number, got {s:?}");
                return ExitCode::from(2);
            }
        }
    }
    let rate = match flag_value(args, "--rate") {
        Some(r) => match r.parse::<f64>() {
            Ok(r) if r > 0.0 => r,
            _ => {
                eprintln!("error: --rate wants a positive number, got {r:?}");
                return ExitCode::from(2);
            }
        },
        None => 200.0,
    };
    let parse_ms = |flag: &str, default: u64| -> Result<u64, ExitCode> {
        match flag_value(args, flag) {
            Some(n) => n.parse().map_err(|_| {
                eprintln!("error: {flag} wants milliseconds, got {n:?}");
                ExitCode::from(2)
            }),
            None => Ok(default),
        }
    };
    opts.arrival = match flag_value(args, "--arrival").unwrap_or("poisson") {
        "poisson" => Arrival::Poisson { rate_per_sec: rate },
        "bursty" => {
            let (on_ms, off_ms) = match (parse_ms("--on-ms", 200), parse_ms("--off-ms", 300)) {
                (Ok(on), Ok(off)) => (on, off),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            Arrival::Bursty {
                rate_per_sec: rate,
                on_ms,
                off_ms,
            }
        }
        "diurnal" => {
            let base = match flag_value(args, "--base-rate") {
                Some(b) => match b.parse::<f64>() {
                    Ok(b) if b > 0.0 && b <= rate => b,
                    _ => {
                        eprintln!("error: --base-rate wants 0 < R ≤ --rate, got {b:?}");
                        return ExitCode::from(2);
                    }
                },
                None => (rate / 10.0).max(0.1),
            };
            let period_ms = match parse_ms("--period-ms", 10_000) {
                Ok(p) => p,
                Err(code) => return code,
            };
            Arrival::Diurnal {
                base_per_sec: base,
                peak_per_sec: rate,
                period_ms,
            }
        }
        other => {
            eprintln!("error: unknown arrival {other:?} (poisson|bursty|diurnal)");
            return ExitCode::from(2);
        }
    };
    let out = flag_value(args, "--out").unwrap_or("trace.json");
    let trace = dqs_workload::generate(&opts);
    if let Err(e) = std::fs::write(out, format!("{}\n", trace.to_json())) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "workload gen: {} events over {} specs, {:.1} s span, seed {} -> {}",
        trace.events.len(),
        trace.specs.len(),
        trace.duration_ms() as f64 / 1e3,
        trace.seed,
        out
    );
    ExitCode::SUCCESS
}

/// `dqs workload replay TRACE --connect ADDR [...]`: fire a trace at a
/// live mediator and report the latency split.
fn cmd_workload_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: workload replay requires a trace path");
        return ExitCode::from(2);
    };
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("error: workload replay requires --connect ADDR");
        return ExitCode::from(2);
    };
    let trace = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
        Ok(text) => match dqs_workload::Trace::from_json(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = ReplayOpts {
        addr: addr.to_string(),
        ..ReplayOpts::default()
    };
    if let Some(n) = flag_value(args, "--batch") {
        match n.parse() {
            Ok(n) if n > 0 => opts.connect_batch = n,
            _ => {
                eprintln!("error: --batch wants a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--timeout-secs") {
        match n.parse::<u64>() {
            Ok(s) => opts.timeout = Duration::from_secs(s),
            Err(_) => {
                eprintln!("error: --timeout-secs wants an integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    let out = flag_value(args, "--out").unwrap_or("BENCH_workload.json");
    let report = match dqs_workload::replay(&trace, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json();
    if let Err(e) = std::fs::write(out, format!("{json}\n")) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    println!(
        "workload: {}/{} completed ({} rejected, {} errored), peak {} open, \
         p99 total {:.2} ms = queue {:.2} + exec {:.2}, cache hit rate {:.1}% -> {}",
        report.completed,
        report.sessions,
        report.rejected,
        report.errored,
        report.peak_concurrent,
        report.total.p99_ms,
        report.queue_wait.p99_ms,
        report.exec.p99_ms,
        report.cache_hit_rate() * 100.0,
        out
    );
    if report.errored > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load(path: &str) -> Result<Workload, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    WorkloadSpec::from_json(&text)
        .and_then(WorkloadSpec::into_workload)
        .map_err(|e| e.to_string())
}

/// Execute `w` under one policy on the chosen substrate, optionally writing
/// the JSON event trace. Real-time runs surface `RunError` as a message;
/// the trace (including the final `abort` event) is flushed either way.
fn dispatch<P: Policy>(
    w: &Workload,
    policy: P,
    trace_json: Option<&str>,
    real_time: bool,
) -> Result<RunMetrics, String> {
    let Some(path) = trace_json else {
        return if real_time {
            run_workload_realtime(w, policy).map_err(|e| e.to_string())
        } else {
            Ok(run_workload(w, policy))
        };
    };
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut sink = JsonLinesSink::new(std::io::BufWriter::new(file));
    let result = if real_time {
        run_workload_realtime_observed(w, policy, &mut sink).map_err(|e| e.to_string())
    } else {
        Ok(run_workload_observed(w, policy, &mut sink))
    };
    sink.finish()
        .and_then(|mut out| out.flush())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    result
}

fn run_strategy(
    w: &Workload,
    name: &str,
    trace_json: Option<&str>,
    real_time: bool,
) -> Result<RunMetrics, String> {
    match name {
        "seq" => dispatch(w, SeqPolicy, trace_json, real_time),
        "ma" => dispatch(w, MaPolicy::default(), trace_json, real_time),
        "scr" => dispatch(w, ScramblingPolicy::new(), trace_json, real_time),
        "dse" => dispatch(w, DsePolicy::new(), trace_json, real_time),
        "spm" => dispatch(w, SpmPolicy::new(), trace_json, real_time),
        other => Err(format!("unknown strategy {other:?} (seq|ma|scr|dse|spm)")),
    }
}

fn print_metrics(m: &RunMetrics) {
    println!("strategy       {}", m.strategy);
    println!("response       {:.6} s", m.response_secs());
    println!("output tuples  {}", m.output_tuples);
    println!("cpu busy       {:.6} s", m.cpu_busy.as_secs_f64());
    println!("disk busy      {:.6} s", m.disk_busy.as_secs_f64());
    println!("stall          {:.6} s", m.stall_time.as_secs_f64());
    println!(
        "disk pages     {} written, {} read, {} seeks",
        m.pages_written, m.pages_read, m.seeks
    );
    println!(
        "scheduler      {} plans, {} EndOfQF, {} RateChange, {} TimeOut, {} degradations",
        m.plans, m.end_of_qf, m.rate_changes, m.timeouts, m.degradations
    );
    println!(
        "memory peak    {:.2} MB",
        m.memory_high_water as f64 / (1024.0 * 1024.0)
    );
    if m.morsels > 0 {
        println!(
            "morsels        {} dispatched, {} stolen",
            m.morsels, m.steals
        );
    }
    if m.query_responses.len() > 1 {
        for (q, t) in &m.query_responses {
            println!("query {q} done   {:.6} s", t.as_secs_f64());
        }
    }
}

fn explain(w: &Workload) {
    let catalog = w.catalog.clone();
    println!("Plan (build side first = blocking edge):");
    print!("{}", w.qep.render(&|r| catalog.name(r).to_string()));
    let chains = ChainSet::decompose(&w.qep);
    let plan = AnnotatedPlan::annotate(chains, &w.catalog, &w.config.params);
    println!("\nPipeline chains (iterator order):");
    for pc in &plan.chains.chains {
        let info = plan.info(pc.id);
        let blocked: Vec<u32> = pc.blocked_by.iter().map(|p| p.0).collect();
        println!(
            "  p{}: {:?} -> {:?}, blocked_by {:?}, n≈{}, c_p={:.2}µs, mem={} KB",
            pc.id.0,
            pc.source,
            pc.sink,
            blocked,
            info.source_card as u64,
            plan.per_tuple_cost(pc.id, &w.config.params).as_micros_f64(),
            info.mem_bytes / 1024
        );
    }
    println!(
        "\nTotals: {} chains, {:.2} MB of hash tables, {:.3} s CPU work estimate",
        plan.chains.len(),
        plan.total_ht_bytes() as f64 / (1024.0 * 1024.0),
        plan.total_cpu_estimate(&w.config.params).as_secs_f64()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    // The networked subcommands take flags, not a leading spec path.
    match cmd.as_str() {
        "wrapper" => return cmd_wrapper(&args[1..]),
        "serve" => return cmd_serve(&args[1..]),
        "submit" => return cmd_submit(&args[1..]),
        "invalidate" => return cmd_invalidate(&args[1..]),
        "bench" => return cmd_bench(&args[1..]),
        "workload" => return cmd_workload(&args[1..]),
        _ => {}
    }
    let Some(path) = args.get(1) else {
        return usage();
    };
    let mut workload = match load(path) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(seed) => workload.config.seed = seed,
            None => return usage(),
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--workers") {
        match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(w) if w >= 1 => workload.config.workers = w,
            _ => return usage(),
        }
    }

    match cmd.as_str() {
        "validate" => {
            println!(
                "ok: {} relations, {} joins planned, {} pipeline chains",
                workload.catalog.len(),
                workload.qep.join_count(),
                ChainSet::decompose(&workload.qep).len()
            );
            ExitCode::SUCCESS
        }
        "explain" => {
            explain(&workload);
            ExitCode::SUCCESS
        }
        "lwb" => {
            let l = lwb(&workload);
            println!(
                "LWB {:.6} s (cpu work {:.6} s, max retrieval {:.6} s)",
                l.bound().as_secs_f64(),
                l.cpu_work.as_secs_f64(),
                l.max_retrieval.as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        "run" => {
            let trace_json =
                args.iter()
                    .position(|a| a == "--trace-json")
                    .map(|i| match args.get(i + 1) {
                        Some(p) => p.clone(),
                        None => String::new(),
                    });
            if trace_json.as_deref() == Some("") {
                return usage();
            }
            let real_time = args.iter().any(|a| a == "--real-time");
            if args.iter().any(|a| a == "--all") {
                for s in ["seq", "ma", "scr", "dse", "spm"] {
                    // One trace file per strategy: `<path>.<strategy>`.
                    let per_strategy = trace_json.as_ref().map(|p| format!("{p}.{s}"));
                    match run_strategy(&workload, s, per_strategy.as_deref(), real_time) {
                        Ok(m) => {
                            print_metrics(&m);
                            println!();
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                return ExitCode::SUCCESS;
            }
            let strategy = args
                .iter()
                .position(|a| a == "--strategy")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("dse");
            match run_strategy(&workload, strategy, trace_json.as_deref(), real_time) {
                Ok(m) => {
                    print_metrics(&m);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
