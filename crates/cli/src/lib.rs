//! # dqs-cli — JSON workload specifications and the `dqs` binary
//!
//! The external interface a deployment would feed the engine: a JSON file
//! naming the remote relations (cardinality estimates, actual deliveries,
//! delay behaviour), the join graph, and engine knobs. The classical DP
//! optimizer plans it; `dqs run` executes it under any strategy.
//!
//! ```
//! use dqs_cli::spec::WorkloadSpec;
//!
//! let spec = WorkloadSpec::from_json(r#"{
//!     "relations": [
//!         {"name": "r", "cardinality": 1000},
//!         {"name": "s", "cardinality": 500, "delay": {"uniform_us": 80}}
//!     ],
//!     "joins": [{"left": "r", "right": "s", "selectivity": 0.001}]
//! }"#).unwrap();
//! let workload = spec.into_workload().unwrap();
//! assert_eq!(workload.catalog.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod spec;

pub use spec::{ConfigSpec, DelaySpec, JoinSpec, RelationSpec, SpecError, WorkloadSpec};
