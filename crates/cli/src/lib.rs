//! # dqs-cli — the `dqs` binary's library face
//!
//! The JSON workload-spec machinery moved into `dqs-exec` (so the mediator
//! service can parse submissions without depending on the CLI); this crate
//! re-exports it under the old paths and keeps the `dqs` binary.
//!
//! ```
//! use dqs_cli::spec::WorkloadSpec;
//!
//! let spec = WorkloadSpec::from_json(r#"{
//!     "relations": [
//!         {"name": "r", "cardinality": 1000},
//!         {"name": "s", "cardinality": 500, "delay": {"uniform_us": 80}}
//!     ],
//!     "joins": [{"left": "r", "right": "s", "selectivity": 0.001}]
//! }"#).unwrap();
//! let workload = spec.into_workload().unwrap();
//! assert_eq!(workload.catalog.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dqs_exec::{json, spec};

pub use dqs_exec::spec::{ConfigSpec, DelaySpec, JoinSpec, RelationSpec, SpecError, WorkloadSpec};
