//! JSON workload specifications.
//!
//! A spec names the remote relations (with their delivery behaviour), the
//! join graph, and the engine configuration; the classical DP optimizer
//! (§5.1.1) turns the join graph into a bushy plan. This is the external
//! interface a mediator deployment would feed the engine — see
//! `examples/specs/*.json`.

use serde::Deserialize;

use dqs_exec::{EngineConfig, Workload};
use dqs_plan::{optimize, Catalog, JoinGraph};
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

/// One remote relation.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RelationSpec {
    /// Name used by the join specs.
    pub name: String,
    /// Cardinality estimate the mediator plans with.
    pub cardinality: u64,
    /// Tuples the wrapper really delivers (defaults to `cardinality`).
    #[serde(default)]
    pub actual_cardinality: Option<u64>,
    /// Delivery pacing (defaults to the platform `w_min`).
    #[serde(default)]
    pub delay: Option<DelaySpec>,
}

/// Delivery pacing, mirroring `dqs_source::DelayModel`.
#[derive(Debug, Clone, Deserialize)]
#[serde(rename_all = "snake_case", deny_unknown_fields)]
pub enum DelaySpec {
    /// Fixed inter-tuple gap in microseconds.
    ConstantUs(u64),
    /// Uniform gaps in `[0, 2·mean]`, mean in microseconds.
    UniformUs(u64),
    /// First tuple delayed, rest uniform.
    Initial {
        /// Delay before the first tuple, milliseconds.
        delay_ms: u64,
        /// Mean gap afterwards, microseconds.
        mean_us: u64,
    },
    /// Bursts separated by silence.
    Bursty {
        /// Tuples per burst.
        burst: u64,
        /// Gap within a burst, microseconds.
        within_us: u64,
        /// Silence between bursts, milliseconds.
        pause_ms: u64,
    },
}

impl DelaySpec {
    /// Convert to the engine's delay model.
    pub fn to_model(&self) -> DelayModel {
        match *self {
            DelaySpec::ConstantUs(us) => DelayModel::Constant {
                w: SimDuration::from_micros(us),
            },
            DelaySpec::UniformUs(us) => DelayModel::Uniform {
                mean: SimDuration::from_micros(us),
            },
            DelaySpec::Initial { delay_ms, mean_us } => DelayModel::Initial {
                initial: SimDuration::from_millis(delay_ms),
                mean: SimDuration::from_micros(mean_us),
            },
            DelaySpec::Bursty {
                burst,
                within_us,
                pause_ms,
            } => DelayModel::Bursty {
                burst,
                within: SimDuration::from_micros(within_us),
                pause: SimDuration::from_millis(pause_ms),
            },
        }
    }
}

/// One join predicate between two named relations.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct JoinSpec {
    /// Left relation name.
    pub left: String,
    /// Right relation name.
    pub right: String,
    /// Classical join selectivity `|L ⋈ R| / (|L|·|R|)`.
    pub selectivity: f64,
}

/// Engine knobs (all optional).
#[derive(Debug, Clone, Default, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ConfigSpec {
    /// Query memory budget in megabytes.
    pub memory_mb: Option<u64>,
    /// Communication queue capacity in tuples.
    pub queue_capacity: Option<usize>,
    /// DQP batch size in tuples.
    pub batch_size: Option<usize>,
    /// Stall timeout in milliseconds (0 disables).
    pub timeout_ms: Option<u64>,
    /// Master seed.
    pub seed: Option<u64>,
}

/// The whole workload file.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WorkloadSpec {
    /// Remote relations.
    pub relations: Vec<RelationSpec>,
    /// Join graph (must connect all relations).
    pub joins: Vec<JoinSpec>,
    /// Engine configuration overrides.
    #[serde(default)]
    pub config: ConfigSpec,
}

/// Errors turning a spec into a workload.
#[derive(Debug)]
pub enum SpecError {
    /// JSON syntax / schema problem.
    Parse(serde_json::Error),
    /// A join references an unknown relation.
    UnknownRelation(String),
    /// Structural problems (optimizer rejected the join graph, ...).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec parse error: {e}"),
            SpecError::UnknownRelation(n) => write!(f, "join references unknown relation {n:?}"),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl WorkloadSpec {
    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<WorkloadSpec, SpecError> {
        serde_json::from_str(text).map_err(SpecError::Parse)
    }

    /// Build the executable workload: catalog + DP-optimized plan + delays.
    pub fn into_workload(self) -> Result<Workload, SpecError> {
        if self.relations.len() < 2 {
            return Err(SpecError::Invalid("need at least two relations".into()));
        }
        let mut catalog = Catalog::new();
        let mut ids = std::collections::HashMap::new();
        for r in &self.relations {
            if ids.contains_key(r.name.as_str()) {
                return Err(SpecError::Invalid(format!("duplicate relation {:?}", r.name)));
            }
            let id = catalog.add(r.name.clone(), r.cardinality);
            ids.insert(r.name.as_str(), id);
        }
        let mut graph = JoinGraph::new();
        for j in &self.joins {
            let l = *ids
                .get(j.left.as_str())
                .ok_or_else(|| SpecError::UnknownRelation(j.left.clone()))?;
            let r = *ids
                .get(j.right.as_str())
                .ok_or_else(|| SpecError::UnknownRelation(j.right.clone()))?;
            if l == r {
                return Err(SpecError::Invalid(format!("self-join on {:?}", j.left)));
            }
            if j.selectivity <= 0.0 || j.selectivity.is_nan() || !j.selectivity.is_finite() {
                return Err(SpecError::Invalid(format!(
                    "selectivity {} out of range",
                    j.selectivity
                )));
            }
            graph.join(l, r, j.selectivity);
        }
        let qep = optimize(&catalog, &graph).map_err(|e| SpecError::Invalid(e.to_string()))?;

        let mut workload = Workload::new(catalog, qep);
        for r in &self.relations {
            let id = ids[r.name.as_str()];
            if let Some(d) = &r.delay {
                workload = workload.with_delay(id, d.to_model());
            }
            if let Some(n) = r.actual_cardinality {
                workload = workload.with_actual_cardinality(id, n);
            }
        }
        let c = &self.config;
        let cfg: &mut EngineConfig = &mut workload.config;
        if let Some(mb) = c.memory_mb {
            cfg.memory_bytes = mb * 1024 * 1024;
        }
        if let Some(q) = c.queue_capacity {
            cfg.queue_capacity = q;
        }
        if let Some(b) = c.batch_size {
            cfg.batch_size = b;
            cfg.queue_capacity = cfg.queue_capacity.max(b);
        }
        if let Some(ms) = c.timeout_ms {
            cfg.timeout = SimDuration::from_millis(ms);
        }
        if let Some(s) = c.seed {
            cfg.seed = s;
        }
        Ok(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "relations": [
            {"name": "orders", "cardinality": 10000,
             "delay": {"uniform_us": 100}},
            {"name": "customers", "cardinality": 2000,
             "actual_cardinality": 1500}
        ],
        "joins": [
            {"left": "orders", "right": "customers", "selectivity": 0.0005}
        ],
        "config": {"memory_mb": 16, "seed": 7}
    }"#;

    #[test]
    fn good_spec_builds_a_workload() {
        let spec = WorkloadSpec::from_json(GOOD).unwrap();
        let w = spec.into_workload().unwrap();
        assert_eq!(w.catalog.len(), 2);
        assert_eq!(w.config.memory_bytes, 16 * 1024 * 1024);
        assert_eq!(w.config.seed, 7);
        assert_eq!(w.actual_cardinality(dqs_relop_rel(1)), 1_500);
        assert!(matches!(
            w.delays[0],
            DelayModel::Uniform { .. }
        ));
    }

    fn dqs_relop_rel(i: u16) -> dqs_relop::RelId {
        dqs_relop::RelId(i)
    }

    #[test]
    fn unknown_relation_rejected() {
        let bad = GOOD.replace("\"right\": \"customers\"", "\"right\": \"nope\"");
        let err = WorkloadSpec::from_json(&bad)
            .unwrap()
            .into_workload()
            .unwrap_err();
        assert!(matches!(err, SpecError::UnknownRelation(_)));
    }

    #[test]
    fn unknown_fields_rejected() {
        let bad = GOOD.replace("\"memory_mb\": 16", "\"memory_mbb\": 16");
        assert!(matches!(
            WorkloadSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn bad_selectivity_rejected() {
        let bad = GOOD.replace("0.0005", "-1.0");
        let err = WorkloadSpec::from_json(&bad)
            .unwrap()
            .into_workload()
            .unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let spec = r#"{
            "relations": [
                {"name": "a", "cardinality": 10},
                {"name": "b", "cardinality": 10},
                {"name": "c", "cardinality": 10}
            ],
            "joins": [
                {"left": "a", "right": "b", "selectivity": 0.1}
            ]
        }"#;
        let err = WorkloadSpec::from_json(spec)
            .unwrap()
            .into_workload()
            .unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)));
    }

    #[test]
    fn all_delay_specs_convert() {
        for (json, want_constant) in [
            (r#"{"constant_us": 20}"#, true),
            (r#"{"uniform_us": 50}"#, false),
            (r#"{"initial": {"delay_ms": 100, "mean_us": 20}}"#, false),
            (
                r#"{"bursty": {"burst": 100, "within_us": 20, "pause_ms": 50}}"#,
                false,
            ),
        ] {
            let d: DelaySpec = serde_json::from_str(json).unwrap();
            let m = d.to_model();
            assert_eq!(matches!(m, DelayModel::Constant { .. }), want_constant);
        }
    }
}
