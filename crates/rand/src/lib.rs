//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the *subset* of `rand`'s API it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait with `gen_range` /
//! `sample_iter`, and the [`distributions::Standard`] distribution. The
//! semantics mirror `rand 0.8` closely enough for every call site in this
//! repository; the bit streams are *not* guaranteed to match upstream
//! `rand` (nothing here depends on that — determinism comes from
//! `rand_chacha`'s specified ChaCha8 output, which is implemented exactly).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// `rand 0.8` does, so `seed_from_u64` streams stay stable.
    fn seed_from_u64(mut state: u64) -> Self {
        // rand 0.8's SeedableRng::seed_from_u64 uses splitmix64 to fill
        // the seed bytes; replicated verbatim for stream stability.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection (Lemire's method
/// without the multiply shortcut: simple threshold rejection on the top).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of bound that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

/// A random f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Distributions.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the whole domain.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::unit_f64(rng)
        }
    }

    /// Iterator yielded by [`crate::Rng::sample_iter`].
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (integer or float, `a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample from `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Endless iterator of samples from `distr`, consuming the generator.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// A random bool.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `rand::prelude` look-alike.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for testing the adapters.
    struct XorShift(u64);
    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = XorShift(0x1234_5678_9abc_def0);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = XorShift(42);
        for _ in 0..10_000 {
            let v = r.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut r = XorShift(7);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[r.gen_range(0u64..=2) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn sample_iter_streams() {
        let r = XorShift(9);
        let xs: Vec<u64> = r.sample_iter(distributions::Standard).take(4).collect();
        assert_eq!(xs.len(), 4);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
