//! SEQ: the classical iterator-model execution (§2.3, §5.1.2).
//!
//! "We have implemented the classical iterator model, resulting in a
//! sequential execution, denoted by SEQ ... We use its performance as the
//! baseline, i.e., the performance results when nothing is done to handle
//! unpredictable data delivery rates."
//!
//! The scheduling plan always contains exactly one fragment: the first
//! unfinished pipeline chain in the QEP's left-to-right activation order.
//! When its wrapper is slow, the query processor stalls — precisely the
//! §2.3 pathology the dynamic strategies attack.

use crate::frag::FragId;
use crate::policy::{Interrupt, PlanCtx, Policy};

/// The sequential iterator-model baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqPolicy;

impl Policy for SeqPolicy {
    fn name(&self) -> &'static str {
        "SEQ"
    }

    fn plan(&mut self, ctx: &mut PlanCtx<'_>, _why: Interrupt) -> Vec<FragId> {
        for pc in ctx.plan.chains.sequential_order() {
            if let Some(f) = ctx.frags.live_body(pc) {
                return vec![f];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use crate::workload::Workload;
    use dqs_plan::{Catalog, QepBuilder};
    use dqs_sim::SimDuration;
    use dqs_source::DelayModel;

    /// Small two-way join everything downstream reuses.
    fn small_workload(card_a: u64, card_b: u64) -> Workload {
        let mut cat = Catalog::new();
        let a = cat.add("A", card_a);
        let b = cat.add("B", card_b);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j = qb.hash_join(sa, sb, 1.0);
        Workload::new(cat, qb.finish(j).unwrap())
    }

    #[test]
    fn seq_completes_and_produces_expected_output() {
        let w = small_workload(2_000, 3_000);
        let m = run_workload(&w, SeqPolicy);
        assert_eq!(m.strategy, "SEQ");
        assert_eq!(m.output_tuples, 3_000, "fanout 1.0 over the probe side");
        assert!(m.response_time > SimDuration::ZERO);
        assert_eq!(m.pages_written, 0, "SEQ never materializes");
        assert_eq!(m.degradations, 0);
    }

    #[test]
    fn seq_response_is_at_least_sum_of_retrievals_minus_overlap() {
        // §2.3: sequential execution's response time is bounded below by
        // the serialized consumption of each wrapper (the window protocol
        // overlaps only a queue's worth).
        let w = small_workload(5_000, 5_000);
        let m = run_workload(&w, SeqPolicy);
        // 10 000 tuples at w_min = 20 µs each → at least 0.2 s minus the
        // bounded queue prefetch.
        let floor = 10_000u64 - 2 * w.config.queue_capacity as u64;
        assert!(
            m.response_time >= SimDuration::from_micros(20) * floor,
            "response {} too small",
            m.response_time
        );
    }

    #[test]
    fn seq_stalls_on_slow_wrapper() {
        let mut w = small_workload(2_000, 2_000);
        w = w.with_delay(
            dqs_relop::RelId(0),
            DelayModel::Uniform {
                mean: SimDuration::from_micros(500),
            },
        );
        let m = run_workload(&w, SeqPolicy);
        // Relation A alone takes ~1 s to arrive; SEQ must stall for most
        // of it.
        assert!(
            m.stall_time > SimDuration::from_millis(500),
            "stall {} should dominate",
            m.stall_time
        );
    }

    #[test]
    fn seq_is_deterministic_per_seed() {
        let w = small_workload(1_000, 1_000);
        let m1 = run_workload(&w.clone().with_seed(7), SeqPolicy);
        let m2 = run_workload(&w.with_seed(7), SeqPolicy);
        assert_eq!(m1.response_time, m2.response_time);
        assert_eq!(m1.batches, m2.batches);
        assert_eq!(m1.events, m2.events);
    }

    #[test]
    fn zero_cardinality_relation_completes() {
        let w = small_workload(0, 100);
        let m = run_workload(&w, SeqPolicy);
        assert_eq!(m.output_tuples, 0, "probing an empty build yields nothing");
    }

    #[test]
    fn zero_probe_side_completes() {
        let w = small_workload(100, 0);
        let m = run_workload(&w, SeqPolicy);
        assert_eq!(m.output_tuples, 0);
    }
}
