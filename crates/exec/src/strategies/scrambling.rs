//! SCR: query scrambling, the timeout-reactive strategy of \[1\]/\[2\] that the
//! paper argues against (§1.2).
//!
//! "The different scrambling techniques are all based on the same concept:
//! react to a timeout while waiting for remote data to arrive. When this
//! timeout occurs, a scrambling step takes place: The operator currently in
//! execution, say O1, is suspended (as it has no input data), and a new
//! operator, say O2, is selected for execution. ... O1 resumes as soon as
//! data arrives, or O2 is executed until it ends or until a new timeout
//! occurs."
//!
//! Implementation of phase 1 (rescheduling; phase 2 — run-time
//! re-optimization — is out of scope for both the paper and this
//! reproduction):
//!
//! * execution starts exactly like SEQ: the first unfinished chain in
//!   iterator order is the only scheduled fragment;
//! * each `TimeOut` interruption is one *scrambling step*: schedule the
//!   next C-schedulable chain not yet running; if none exists, start
//!   materializing one blocked wrapper (raw spooling, as \[1\]'s
//!   materialization steps do);
//! * the current chain keeps the highest priority, so it "resumes as soon
//!   as data arrives"; scrambled work runs during its silences.
//!
//! The paper's two §1.2 criticisms fall out measurably: the behaviour
//! depends on the timeout value (`repro scrambling` sweeps it), and *slow
//! delivery* never trips the timeout at all — data keeps trickling, the
//! stall never reaches the threshold, and SCR degenerates to SEQ.

use dqs_plan::ChainSource;

use crate::frag::{FragId, FragStatus};
use crate::policy::{Interrupt, PlanCtx, Policy};

/// The query-scrambling baseline (phase 1 of \[1\]).
#[derive(Debug, Default)]
pub struct ScramblingPolicy {
    /// Fragments activated by scrambling steps, in activation order.
    scrambled: Vec<FragId>,
    /// Scrambling steps taken (reported via `RunMetrics::plans` timing;
    /// exposed for tests through `steps`).
    steps: u64,
}

impl ScramblingPolicy {
    /// A fresh scrambler.
    pub fn new() -> Self {
        ScramblingPolicy::default()
    }

    /// Scrambling steps performed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The SEQ-like current fragment: first unfinished chain in order.
    fn current(&self, ctx: &PlanCtx<'_>) -> Option<FragId> {
        ctx.plan
            .chains
            .sequential_order()
            .into_iter()
            .find_map(|pc| ctx.frags.live_body(pc))
    }

    fn assemble(&mut self, ctx: &PlanCtx<'_>) -> Vec<FragId> {
        let mut sp = Vec::new();
        if let Some(cur) = self.current(ctx) {
            sp.push(cur);
        }
        // Keep previously scrambled fragments running until they finish
        // ("O2 is executed until it ends or until a new timeout occurs").
        self.scrambled
            .retain(|&f| ctx.frags.get(f).status == FragStatus::Active);
        for &f in &self.scrambled {
            if !sp.contains(&f) {
                sp.push(f);
            }
        }
        sp
    }

    /// One scrambling step: activate more work.
    fn scramble(&mut self, ctx: &mut PlanCtx<'_>, sp: &[FragId]) {
        self.steps += 1;
        // 1. Another C-schedulable chain that is not yet scheduled.
        for pc in ctx.plan.chains.sequential_order() {
            let Some(body) = ctx.frags.live_body(pc) else {
                continue;
            };
            if sp.contains(&body) || self.scrambled.contains(&body) {
                continue;
            }
            if ctx.c_schedulable(pc) {
                self.scrambled.push(body);
                return;
            }
        }
        // 2. Otherwise, start materializing one blocked wrapper (raw, as
        //    [1]'s materialization steps store whole relations).
        for pc in ctx.plan.chains.sequential_order() {
            let Some(body) = ctx.frags.live_body(pc) else {
                continue;
            };
            let b = ctx.frags.get(body);
            if b.kind != crate::frag::FragKind::Whole || b.started {
                continue;
            }
            let is_wrapper = matches!(
                ctx.plan.chains.chain(pc).source,
                ChainSource::Wrapper(rel) if !ctx.world.cm.exhausted(rel)
            );
            if is_wrapper && !ctx.c_schedulable(pc) {
                let (mf, _cf) = ctx.degrade(pc, false);
                self.scrambled.push(mf);
                return;
            }
        }
        // Nothing left to scramble (§1.2: "if a single problem arises with
        // the last accessed data source, scrambling will be ineffective
        // since there is no more work to scramble").
    }
}

impl Policy for ScramblingPolicy {
    fn name(&self) -> &'static str {
        "SCR"
    }

    fn plan(&mut self, ctx: &mut PlanCtx<'_>, why: Interrupt) -> Vec<FragId> {
        let sp = self.assemble(ctx);
        if matches!(why, Interrupt::Timeout) {
            self.scramble(ctx, &sp);
            return self.assemble(ctx);
        }
        sp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use crate::strategies::seq::SeqPolicy;
    use crate::workload::Workload;
    use dqs_plan::{Catalog, QepBuilder};
    use dqs_sim::SimDuration;
    use dqs_source::DelayModel;

    /// Three-way join; relation A builds, B probes+builds, C outputs.
    fn three_way() -> Workload {
        let mut cat = Catalog::new();
        let a = cat.add("A", 3_000);
        let b = cat.add("B", 3_000);
        let c = cat.add("C", 3_000);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j1 = qb.hash_join(sa, sb, 1.0);
        let sc = qb.scan(c, 1.0);
        let j2 = qb.hash_join(j1, sc, 1.0);
        Workload::new(cat, qb.finish(j2).unwrap())
    }

    #[test]
    fn scr_without_delays_behaves_like_seq() {
        let w = three_way();
        let seq = run_workload(&w, SeqPolicy);
        let scr = run_workload(&w, ScramblingPolicy::new());
        assert_eq!(scr.output_tuples, seq.output_tuples);
        assert_eq!(scr.timeouts, 0, "no starvation, no scrambling");
        let ratio = scr.response_secs() / seq.response_secs();
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "SCR == SEQ without delays: {ratio}"
        );
    }

    #[test]
    fn scr_reacts_to_initial_delay() {
        // A's first tuple is 2 s late: SEQ stalls the whole time; SCR's
        // timeout fires and it materializes B/C meanwhile.
        let mut w = three_way().with_delay(
            dqs_relop::RelId(0),
            DelayModel::Initial {
                initial: SimDuration::from_secs(2),
                mean: SimDuration::from_micros(20),
            },
        );
        w.config.timeout = SimDuration::from_millis(100);
        let seq = run_workload(&w, SeqPolicy);
        let scr = run_workload(&w, ScramblingPolicy::new());
        assert_eq!(scr.output_tuples, seq.output_tuples);
        assert!(scr.timeouts >= 1, "the initial delay must trip the timeout");
        assert!(
            scr.response_time < seq.response_time,
            "SCR {} must beat SEQ {} on initial delays",
            scr.response_time,
            seq.response_time
        );
    }

    #[test]
    fn scr_cannot_handle_slow_delivery() {
        // §1.2: slow-but-steady arrivals never trip the timeout, so SCR
        // degenerates to SEQ — the paper's core criticism.
        let mut w = three_way().with_delay(
            dqs_relop::RelId(0),
            DelayModel::Uniform {
                mean: SimDuration::from_micros(400),
            },
        );
        w.config.timeout = SimDuration::from_millis(100);
        let seq = run_workload(&w, SeqPolicy);
        let scr = run_workload(&w, ScramblingPolicy::new());
        assert_eq!(
            scr.timeouts, 0,
            "steady 0-800 µs gaps never reach a 100 ms timeout"
        );
        let ratio = scr.response_secs() / seq.response_secs();
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "SCR degenerates to SEQ on slow delivery: {ratio}"
        );
    }

    #[test]
    fn huge_timeout_disables_scrambling() {
        let mut w = three_way().with_delay(
            dqs_relop::RelId(0),
            DelayModel::Initial {
                initial: SimDuration::from_secs(2),
                mean: SimDuration::from_micros(20),
            },
        );
        w.config.timeout = SimDuration::from_secs(30);
        let scr = run_workload(&w, ScramblingPolicy::new());
        assert_eq!(scr.timeouts, 0, "a too-large timeout never fires (§1.2)");
    }
}
