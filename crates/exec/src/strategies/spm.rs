//! SPM: online source-permutation scheduling.
//!
//! Where the paper's DSE reacts to delays by switching *plans*
//! (degradations, splits), SPM — after "Online Query Scheduling on Source
//! Permutation for Big Data Integration" (arXiv 1503.08400) — reorders
//! *which source to drain next* from delivery rates observed while the
//! query runs. The scheduling plan is the full set of live chains in a
//! drain-order permutation, fastest wrapper first, so the DQP's
//! priority-ordered batch picking (§3.2) realizes the permutation
//! directly: whichever source is flowing fastest gets its queue drained
//! first, slower sources overlap during its silences, and the hash-join
//! C-schedulability guard keeps probe-side chains waiting until their
//! build tables complete.
//!
//! The signal path is sans-io end to end. At every planning phase the
//! policy feeds the [`RateObserver`] one cumulative sample per wrapper —
//! virtual `now`, tuples received, the CM's fine-grained inter-arrival
//! EWMA as a hint, and the window-protocol suspension flag so
//! flow-controlled silences never read as slowness. Planning phases are
//! themselves arrival-driven (the CM raises `RateChange` when its
//! estimate drifts past the threshold, §3.1), so samples track batch
//! arrivals under both the discrete-event and the wall-clock driver. The
//! [`PermutationPlanner`] then re-permutes only when a rate advantage
//! crosses its hysteresis band — oscillating estimates cannot thrash the
//! drain order — with the SPM paper's optimistic lower bound on remaining
//! retrieval time breaking ties among unmeasured sources.
//!
//! SPM never degrades or splits: like SEQ it changes *order* only, which
//! is what makes `answers are bit-identical to SEQ/DSE` a testable
//! invariant (see `tests/spm_parity.rs`). Every folded sample and every
//! re-permutation is emitted as a typed event (`RateSample`,
//! `RatePermuted`) so the adaptation is visible in the JSON trace.

use dqs_adapt::{PermutationPlanner, RateObserver, RateSample, Replan, SourceScore};
use dqs_plan::ChainSource;
use dqs_relop::RelId;
use dqs_sim::SimTime;

use crate::frag::FragId;
use crate::observe::EngineEvent;
use crate::policy::{Interrupt, PlanCtx, Policy};

/// The online source-permutation strategy.
#[derive(Debug)]
pub struct SpmPolicy {
    /// Lazily sized on the first planning phase (the policy is built
    /// before the world exists).
    obs: Option<RateObserver>,
    planner: PermutationPlanner,
}

impl SpmPolicy {
    /// SPM with the default hysteresis.
    pub fn new() -> SpmPolicy {
        SpmPolicy {
            obs: None,
            planner: PermutationPlanner::new(),
        }
    }

    /// SPM re-permuting only past `hysteresis` relative rate advantage.
    pub fn with_hysteresis(hysteresis: f64) -> SpmPolicy {
        SpmPolicy {
            obs: None,
            planner: PermutationPlanner::with_hysteresis(hysteresis),
        }
    }

    /// Mid-query re-permutations performed so far.
    pub fn permutations(&self) -> u64 {
        self.planner.permutations()
    }
}

impl Default for SpmPolicy {
    fn default() -> Self {
        SpmPolicy::new()
    }
}

impl Policy for SpmPolicy {
    fn name(&self) -> &'static str {
        "SPM"
    }

    fn plan(&mut self, ctx: &mut PlanCtx<'_>, _why: Interrupt) -> Vec<FragId> {
        let n = ctx.world.cm.len();
        let obs = self.obs.get_or_insert_with(|| RateObserver::new(n));
        let now_nanos = ctx.now.saturating_since(SimTime::ZERO).as_nanos();

        // Wrapper-fed chains in QEP activation order; each wrapper feeds
        // at most one chain, so rel index doubles as the source index.
        let chains = ctx.plan.chains.sequential_order();
        let mut wrappers: Vec<(dqs_plan::PcId, RelId)> = Vec::new();
        for &pc in &chains {
            if let ChainSource::Wrapper(rel) = ctx.plan.chains.chain(pc).source {
                wrappers.push((pc, rel));
            }
        }

        // Feed this phase's cumulative arrival sample per wrapper.
        for &(_, rel) in &wrappers {
            let sample = RateSample {
                at_nanos: now_nanos,
                tuples: ctx.world.cm.received(rel),
                gap_hint_nanos: ctx.world.cm.estimated_gap(rel).map(|g| g.as_nanos() as f64),
                flow_controlled: ctx.world.cm.is_suspended(rel),
            };
            if let Some(est) = obs.observe(rel.0 as usize, sample) {
                ctx.obs.on_event(
                    ctx.now,
                    &EngineEvent::RateSample {
                        rel,
                        rate_tps: est.rate,
                        burstiness: est.burstiness,
                    },
                );
            }
        }

        // Score the not-yet-exhausted wrappers and re-permute.
        let w_min = ctx.world.params.w_min().as_nanos();
        let mut live: Vec<SourceScore> = Vec::new();
        for &(pc, rel) in &wrappers {
            if ctx.frags.live_body(pc).is_none() || ctx.world.cm.drained(rel) {
                continue;
            }
            live.push(SourceScore {
                src: rel.0 as usize,
                rate: obs.rate(rel.0 as usize),
                lower_bound_nanos: ctx.remaining_tuples(pc).saturating_mul(w_min),
            });
        }
        if self.planner.replan(&live) == Replan::Permuted {
            let order: Vec<RelId> = self
                .planner
                .order()
                .iter()
                .map(|&s| RelId(s as u16))
                .collect();
            ctx.obs
                .on_event(ctx.now, &EngineEvent::RatePermuted { order: &order });
        }

        // Assemble the scheduling plan: permuted wrapper chains first,
        // then any remaining live chains (temp-fed, local-disk speed) in
        // activation order. The DQP skips fragments whose probe tables
        // are incomplete, so listing everything is safe.
        let mut sp: Vec<FragId> = Vec::new();
        for &src in self.planner.order() {
            let rel = RelId(src as u16);
            if let Some(&(pc, _)) = wrappers.iter().find(|&&(_, r)| r == rel) {
                if let Some(f) = ctx.frags.live_body(pc) {
                    sp.push(f);
                }
            }
        }
        for &pc in &chains {
            if let Some(f) = ctx.frags.live_body(pc) {
                if !sp.contains(&f) {
                    sp.push(f);
                }
            }
        }
        sp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use crate::strategies::seq::SeqPolicy;
    use crate::workload::Workload;
    use dqs_plan::{Catalog, QepBuilder};
    use dqs_sim::SimDuration;
    use dqs_source::DelayModel;

    /// Three-way join; relation A builds, B probes+builds, C outputs.
    fn three_way(card: u64) -> Workload {
        let mut cat = Catalog::new();
        let a = cat.add("A", card);
        let b = cat.add("B", card);
        let c = cat.add("C", card);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j1 = qb.hash_join(sa, sb, 1.0);
        let sc = qb.scan(c, 1.0);
        let j2 = qb.hash_join(j1, sc, 1.0);
        Workload::new(cat, qb.finish(j2).unwrap())
    }

    #[test]
    fn spm_answers_match_seq() {
        let w = three_way(3_000);
        let seq = run_workload(&w, SeqPolicy);
        let spm = run_workload(&w, SpmPolicy::new());
        assert_eq!(spm.strategy, "SPM");
        assert_eq!(
            spm.output_tuples, seq.output_tuples,
            "drain order must never change the answer"
        );
    }

    #[test]
    fn spm_beats_seq_on_a_slow_source() {
        // Fig. 5 workload with wrapper A at a quarter of everyone else's
        // pace. Drain order only matters while the CPU has a choice, so
        // the win shows up on a workload whose probe work keeps every
        // queue busy — not on an idle-CPU trickle, where work-conserving
        // dispatch makes SEQ just as overlapped as any permutation.
        let (base, f5) = Workload::fig5();
        let w_min = base.config.params.w_min();
        let w = base.with_delay(f5.rels.a, DelayModel::Uniform { mean: w_min * 4 });
        let seq = run_workload(&w, SeqPolicy);
        let spm = run_workload(&w, SpmPolicy::new());
        assert_eq!(spm.output_tuples, seq.output_tuples);
        assert!(
            spm.response_time < seq.response_time,
            "SPM {} must beat SEQ {} when a source is slow",
            spm.response_time,
            seq.response_time
        );
    }

    #[test]
    fn spm_emits_rate_samples() {
        let w = three_way(3_000).with_delay(
            dqs_relop::RelId(0),
            DelayModel::Uniform {
                mean: SimDuration::from_micros(400),
            },
        );
        let m = run_workload(&w, SpmPolicy::new());
        assert!(
            m.rate_samples > 0,
            "planning phases must feed the observatory"
        );
    }

    #[test]
    fn spm_repermutes_when_rates_cross() {
        // Relation A starts fast then collapses into long pauses; C is
        // steadily slow-ish. The crossing must trigger at least one
        // mid-query re-permutation.
        let w = three_way(6_000)
            .with_delay(
                dqs_relop::RelId(0),
                DelayModel::Bursty {
                    burst: 500,
                    within: SimDuration::from_micros(5),
                    pause: SimDuration::from_millis(80),
                },
            )
            .with_delay(
                dqs_relop::RelId(2),
                DelayModel::Uniform {
                    mean: SimDuration::from_micros(60),
                },
            );
        let m = run_workload(&w, SpmPolicy::new());
        assert!(
            m.permutations >= 1,
            "a rate crossing must re-permute the drain order (got {})",
            m.permutations
        );
    }

    #[test]
    fn spm_is_deterministic_per_seed() {
        let w = three_way(2_000).with_delay(
            dqs_relop::RelId(1),
            DelayModel::Bursty {
                burst: 300,
                within: SimDuration::from_micros(10),
                pause: SimDuration::from_millis(20),
            },
        );
        let m1 = run_workload(&w.clone().with_seed(7), SpmPolicy::new());
        let m2 = run_workload(&w.with_seed(7), SpmPolicy::new());
        assert_eq!(m1.response_time, m2.response_time);
        assert_eq!(m1.permutations, m2.permutations);
        assert_eq!(m1.events, m2.events);
    }

    #[test]
    fn zero_cardinality_relations_complete() {
        let w = three_way(0);
        let m = run_workload(&w, SpmPolicy::new());
        assert_eq!(m.output_tuples, 0);
    }
}
