//! MA: the Materialize-All strategy of \[1\] (§5.1.2).
//!
//! "The last strategy is the fairly simple Materialize All, denoted by MA
//! and proposed in \[1\] which proceeds in two phases. In the first phase, MA
//! materializes simultaneously on the disk of the mediator all the remote
//! relations. Then, in the second phase, it executes the query with local
//! data stored on disk. Therefore, MA can overlap the delays of several
//! input relations, however at a high I/O overhead."
//!
//! Implementation: at start, every wrapper-sourced chain is degraded with
//! `include_scan = false` (raw spooling — MA stores the relations, not
//! partial results). Phase 1 schedules all MFs, ordered by chain id; phase
//! 2 begins only when every MF finished and runs the complement fragments
//! sequentially, exactly like SEQ but reading local temps.

use crate::frag::{FragId, FragKind, FragStatus};
use crate::policy::{Interrupt, PlanCtx, Policy};

/// The Materialize-All baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaPolicy {
    degraded: bool,
}

impl Policy for MaPolicy {
    fn name(&self) -> &'static str {
        "MA"
    }

    fn plan(&mut self, ctx: &mut PlanCtx<'_>, _why: Interrupt) -> Vec<FragId> {
        if !self.degraded {
            let pcs: Vec<_> = ctx.plan.chains.sequential_order();
            for pc in pcs {
                use dqs_plan::ChainSource;
                if matches!(ctx.plan.chains.chain(pc).source, ChainSource::Wrapper(_)) {
                    let (mf, _cf) = ctx.degrade(pc, false);
                    // MA is the naive materializer of [1]: its spooling
                    // blocks on every page write instead of writing behind.
                    ctx.frags.get_mut(mf).sync_mat_io = true;
                }
            }
            self.degraded = true;
        }

        // Phase 1: all active MFs, in chain order.
        let mfs: Vec<FragId> = ctx
            .plan
            .chains
            .sequential_order()
            .into_iter()
            .filter_map(|pc| ctx.frags.live_mf(pc))
            .filter(|&f| ctx.frags.get(f).status == FragStatus::Active)
            .collect();
        if !mfs.is_empty() {
            return mfs;
        }

        // Phase 2: sequential over the complements.
        for pc in ctx.plan.chains.sequential_order() {
            if let Some(f) = ctx.frags.live_body(pc) {
                debug_assert_ne!(ctx.frags.get(f).kind, FragKind::Mf);
                return vec![f];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use crate::strategies::seq::SeqPolicy;
    use crate::workload::Workload;
    use dqs_plan::{Catalog, QepBuilder};
    use dqs_sim::{SimDuration, SimParams};
    use dqs_source::DelayModel;

    fn two_way(card_a: u64, card_b: u64) -> Workload {
        let mut cat = Catalog::new();
        let a = cat.add("A", card_a);
        let b = cat.add("B", card_b);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j = qb.hash_join(sa, sb, 1.0);
        Workload::new(cat, qb.finish(j).unwrap())
    }

    #[test]
    fn ma_materializes_everything_then_answers() {
        let w = two_way(2_000, 3_000);
        let m = run_workload(&w, MaPolicy::default());
        assert_eq!(m.strategy, "MA");
        assert_eq!(m.output_tuples, 3_000);
        // All 5000 tuples hit the disk: ≥ ceil(5000/204) pages written.
        let pages = SimParams::default().pages_for_tuples(5_000);
        assert!(
            m.pages_written >= pages,
            "MA must spool all relations: {} < {pages}",
            m.pages_written
        );
        assert_eq!(m.degradations, 2);
    }

    #[test]
    fn ma_is_slower_than_seq_without_delays() {
        // §5.2: "MA's response time is always worse in these experiments" —
        // with no slowdown its extra I/O buys nothing.
        let w = two_way(20_000, 20_000);
        let seq = run_workload(&w, SeqPolicy);
        let ma = run_workload(&w, MaPolicy::default());
        assert!(
            ma.response_time > seq.response_time,
            "MA {} should exceed SEQ {}",
            ma.response_time,
            seq.response_time
        );
    }

    #[test]
    fn ma_overlaps_two_slow_relations() {
        // MA's one virtue (§5.4): overlapping delays of *several* slowed
        // relations. Slow both inputs heavily; SEQ pays the sum of the two
        // retrieval times, MA roughly their max plus local work.
        let slow = DelayModel::Uniform {
            mean: SimDuration::from_micros(400),
        };
        let w = two_way(5_000, 5_000).with_all_delays(slow);
        let seq = run_workload(&w, SeqPolicy);
        let ma = run_workload(&w, MaPolicy::default());
        assert!(
            ma.response_time < seq.response_time,
            "MA {} should beat SEQ {} when all inputs crawl",
            ma.response_time,
            seq.response_time
        );
    }

    #[test]
    fn ma_deterministic_per_seed() {
        let w = two_way(1_000, 1_000);
        let a = run_workload(&w.clone().with_seed(3), MaPolicy::default());
        let b = run_workload(&w.with_seed(3), MaPolicy::default());
        assert_eq!(a.response_time, b.response_time);
        assert_eq!(a.pages_written, b.pages_written);
    }
}
