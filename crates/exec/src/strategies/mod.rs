//! Execution strategies: the paper's §5.1.2 comparison set minus DSE
//! (which lives in `dqs-core`), plus the adaptive SPM extension.

pub mod ma;
pub mod scrambling;
pub mod seq;
pub mod spm;

pub use ma::MaPolicy;
pub use scrambling::ScramblingPolicy;
pub use seq::SeqPolicy;
pub use spm::SpmPolicy;
