//! Baseline execution strategies (the paper's §5.1.2 comparison set minus
//! DSE, which lives in `dqs-core`).

pub mod ma;
pub mod scrambling;
pub mod seq;

pub use ma::MaPolicy;
pub use scrambling::ScramblingPolicy;
pub use seq::SeqPolicy;
