//! The dynamic query processor (DQP) and its event loop.
//!
//! §3.2: "the task of the DQP is to interleave the execution of the query
//! fragments in order to maximize the processor utilization with respect to
//! the priorities defined in the scheduling plan. To do so, the DQP scans
//! the queue associated with the query fragment which has the highest
//! priority and processes a certain amount of tuples called a batch (if
//! any). If the queue does not contain a sufficient amount of tuples, the
//! DQP scans the second queue in the list and so on. After each batch
//! processing, the DQP returns to the highest priority queue."
//!
//! The engine is strategy-agnostic: SEQ, MA and DSE are [`Policy`]s that
//! differ only in the scheduling plans they return (§5.1.2: "Since the
//! different strategies use the same lower-level code, the performance
//! difference can only stem from the execution strategies").
//!
//! Everything runs on the simulated clock: batch CPU time and message
//! receive costs queue on the single mediator CPU, materialization and temp
//! scans queue on the single disk.

use std::collections::HashMap;

use dqs_plan::AnnotatedPlan;
use dqs_relop::{HtId, RelId, Tuple};
use dqs_sim::{EventId, EventQueue, SimTime, TraceKind};
use dqs_storage::ReservationId;

use crate::frag::{FragId, FragSink, FragSource, FragStatus, FragTable};
use crate::metrics::{MetricsAcc, RunMetrics};
use crate::policy::{Interrupt, PlanCtx, Policy};
use crate::workload::{EngineConfig, Workload};
use crate::world::World;

/// Events driving the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A tuple from this wrapper reaches the communication manager.
    Arrival(RelId),
    /// The in-flight DQP batch completes.
    BatchDone,
    /// A temp relation's prefetched pages became resident.
    TempReady,
    /// The stall timer expired (generation guards staleness).
    Timeout(u64),
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    frag: FragId,
}

/// Hard ceiling on simulation events — a runaway loop trips this rather
/// than hanging the benchmark harness.
const MAX_EVENTS: u64 = 500_000_000;

/// One query execution: world + fragments + policy + event loop.
pub struct Engine<P: Policy> {
    world: World,
    plan: AnnotatedPlan,
    frags: FragTable,
    policy: P,
    cfg: EngineConfig,
    events: EventQueue<Event>,
    /// Current scheduling plan, highest priority first.
    sp: Vec<FragId>,
    inflight: Option<Inflight>,
    pending_replan: Option<Interrupt>,
    timeout_ev: Option<EventId>,
    timeout_gen: u64,
    /// Memory reservation per built hash table: (grant, reserved bytes).
    ht_mem: HashMap<HtId, (ReservationId, u64)>,
    /// Fragment that last failed to reserve, with the free bytes then.
    last_overflow: Option<(FragId, u64)>,
    /// Output chains still running (multi-query forests have several).
    outputs_pending: usize,
    /// `(query, completion time)` per finished output chain.
    output_times: Vec<(u32, SimTime)>,
    /// Set once every output chain finished.
    output_done_at: Option<SimTime>,
    aborted: Option<String>,
    acc: MetricsAcc,
}

impl<P: Policy> Engine<P> {
    /// Build an engine for `workload` driven by `policy`.
    pub fn new(workload: &Workload, policy: P) -> Self {
        let (world, plan) = World::build(workload);
        let frags = FragTable::from_plan(&plan);
        let outputs_pending = plan
            .chains
            .chains
            .iter()
            .filter(|c| matches!(c.sink, dqs_plan::ChainSink::Output))
            .count();
        Engine {
            world,
            plan,
            frags,
            policy,
            cfg: workload.config.clone(),
            events: EventQueue::new(),
            sp: Vec::new(),
            inflight: None,
            pending_replan: None,
            timeout_ev: None,
            timeout_gen: 0,
            ht_mem: HashMap::new(),
            last_overflow: None,
            outputs_pending,
            output_times: Vec::new(),
            output_done_at: None,
            aborted: None,
            acc: MetricsAcc::default(),
        }
    }

    /// Execute to completion, panicking on unrecoverable scheduling errors
    /// (deadlock, unresolvable memory overflow). Use [`Engine::try_run`] to
    /// observe those as errors instead.
    pub fn run(self) -> RunMetrics {
        match self.try_run() {
            Ok(m) => m,
            Err(e) => panic!("query execution aborted: {e}"),
        }
    }

    /// Execute to completion and report metrics, or the abort reason.
    pub fn try_run(self) -> Result<RunMetrics, String> {
        self.try_run_traced().map(|(m, _)| m)
    }

    /// Like [`Engine::try_run`], also returning the execution trace (empty
    /// unless the workload's config enabled tracing).
    pub fn try_run_traced(mut self) -> Result<(RunMetrics, dqs_sim::Trace), String> {
        let (arrivals, start_instr) = self.world.cm.start(SimTime::ZERO);
        if start_instr > 0 {
            let t = self.world.params.instr_time(start_instr);
            self.world.cpu.acquire(SimTime::ZERO, t);
        }
        for (rel, at) in arrivals {
            self.events.schedule(at, Event::Arrival(rel));
        }
        self.replan(Interrupt::Start);
        self.try_dispatch();

        while self.output_done_at.is_none() && self.aborted.is_none() {
            let Some((t, ev)) = self.events.pop() else {
                self.aborted = Some(format!(
                    "deadlock: no events pending, query incomplete (sp={:?})",
                    self.sp
                ));
                break;
            };
            match ev {
                Event::Arrival(rel) => self.on_arrival(rel, t),
                Event::BatchDone => self.on_batch_done(),
                Event::TempReady => {
                    if self.inflight.is_none() {
                        self.try_dispatch();
                    }
                }
                Event::Timeout(gen) => self.on_timeout(gen),
            }
            if self.events.fired() > MAX_EVENTS {
                self.aborted = Some("runaway simulation: event limit exceeded".into());
            }
        }
        self.finish_metrics()
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, rel: RelId, now: SimTime) {
        let out = self.world.cm.on_arrival(rel, now);
        if out.cpu_instr > 0 {
            let t = self.world.params.instr_time(out.cpu_instr);
            self.world.cpu.acquire(now, t);
        }
        if let Some(at) = out.next_arrival {
            self.events.schedule(at, Event::Arrival(rel));
        }
        if out.rate_change {
            self.acc.m.rate_changes += 1;
            self.note_replan(Interrupt::RateChange);
        }
        self.world.trace.emit(now, TraceKind::Arrival, || {
            format!("rel {} tuple (finished={})", rel.0, out.finished)
        });
        if self.inflight.is_none() {
            self.try_dispatch();
        }
    }

    fn on_batch_done(&mut self) {
        let inf = self.inflight.take().expect("BatchDone without inflight");
        let now = self.events.now();
        // Keep every temp scan's asynchronous read-ahead window warm while
        // the CPU is busy elsewhere (§4.4: CF I/O overlaps CPU) — this is
        // what lets a complement fragment start from resident pages instead
        // of a cold disk once its blocking inputs complete.
        self.arm_all_readahead();
        self.world.trace.emit(now, TraceKind::Batch, || {
            format!("batch done frag {}", inf.frag.0)
        });
        self.maybe_finalize(inf.frag);
        if self.output_done_at.is_some() {
            return;
        }
        if let Some(why) = self.pending_replan.take() {
            self.replan(why);
        }
        self.try_dispatch();
    }

    fn on_timeout(&mut self, gen: u64) {
        self.timeout_ev = None;
        if gen != self.timeout_gen || self.inflight.is_some() || self.output_done_at.is_some() {
            return;
        }
        self.acc.m.timeouts += 1;
        self.world
            .trace
            .emit(self.events.now(), TraceKind::Interrupt, || "TimeOut".into());
        self.replan(Interrupt::Timeout);
        self.try_dispatch();
    }

    // ------------------------------------------------------------------
    // Planning
    // ------------------------------------------------------------------

    fn replan(&mut self, why: Interrupt) {
        self.acc.m.plans += 1;
        self.world.cm.mark_rates();
        let degradations_before = self.frags.len();
        let mut ctx = PlanCtx {
            now: self.events.now(),
            plan: &self.plan,
            frags: &mut self.frags,
            world: &mut self.world,
        };
        let sp = self.policy.plan(&mut ctx, why);
        self.acc.m.degradations += ((self.frags.len() - degradations_before) / 2) as u64;
        for &f in &sp {
            debug_assert_eq!(
                self.frags.get(f).status,
                FragStatus::Active,
                "policy scheduled a dead fragment"
            );
        }
        self.world.trace.emit(self.events.now(), TraceKind::Plan, || {
            format!("{why:?} -> sp {:?}", sp.iter().map(|f| f.0).collect::<Vec<_>>())
        });
        self.sp = sp;
    }

    /// Request a planning phase; deferred to batch completion if the DQP is
    /// mid-batch (the DQS and DQP never run concurrently, §3.1).
    fn note_replan(&mut self, why: Interrupt) {
        if self.inflight.is_some() {
            self.pending_replan.get_or_insert(why);
        } else {
            self.replan(why);
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn try_dispatch(&mut self) {
        loop {
            if self.inflight.is_some() || self.output_done_at.is_some() || self.aborted.is_some() {
                return;
            }
            // Finalize every fragment that is complete without further
            // processing (drained sources, zero-tuple relations, sealed and
            // consumed temps).
            let active: Vec<FragId> = self
                .frags
                .iter()
                .filter(|f| f.status == FragStatus::Active)
                .map(|f| f.id)
                .collect();
            let mut last_finalized = None;
            for f in active {
                self.normalize_source(f);
                if self.frag_complete_now(f) {
                    self.finalize(f);
                    last_finalized = Some(f);
                }
            }
            if let Some(f) = last_finalized {
                if self.output_done_at.is_some() {
                    return;
                }
                self.replan(Interrupt::EndOfQf(f));
                continue; // plan changed; rescan
            }

            // Pick the next batch. Pass 0 is the flow-control emergency
            // lane: a fragment whose wrapper the window protocol suspended
            // is losing retrieval bandwidth every instant its queue stays
            // full, so it is drained first whatever its priority. Pass 1
            // wants a full batch from the highest priority (§3.2's
            // "sufficient amount of tuples"); pass 2 takes anything.
            let batch = self.cfg.batch_size as u64;
            let mut picked = None;
            'pick: for pass in 0..3 {
                for i in 0..self.sp.len() {
                    let f = self.sp[i];
                    if self.frags.get(f).status != FragStatus::Active {
                        continue;
                    }
                    if !self.probes_complete(f) {
                        continue;
                    }
                    self.normalize_source(f);
                    let avail = self.available_input(f);
                    let enough = match pass {
                        0 => {
                            avail > 0
                                && matches!(self.frags.get(f).source, FragSource::Queue(rel)
                                    if self.world.cm.is_suspended(rel))
                        }
                        1 => avail >= batch || (avail > 0 && self.upstream_finished(f)),
                        _ => avail > 0,
                    };
                    if enough {
                        picked = Some(f);
                        break 'pick;
                    }
                }
            }
            match picked {
                Some(f) => {
                    if self.start_batch(f) {
                        return;
                    }
                    // Reservation failed: the policy replanned; rescan
                    // unless we are giving up.
                    continue;
                }
                None => {
                    // Nothing runnable: make sure pending temp reads are in
                    // flight — their completion is what will wake us.
                    let now = self.events.now();
                    self.arm_all_readahead();
                    // Stall (§3.2): nothing schedulable has data.
                    self.acc.stall_begin(now);
                    if self.timeout_ev.is_none() && !self.cfg.timeout.is_zero() {
                        self.timeout_gen += 1;
                        let id = self
                            .events
                            .schedule(now + self.cfg.timeout, Event::Timeout(self.timeout_gen));
                        self.timeout_ev = Some(id);
                    }
                    return;
                }
            }
        }
    }

    /// Start one batch of `f`. Returns false if a memory reservation failed
    /// (a `MemoryOverflow` planning phase was run instead).
    fn start_batch(&mut self, f: FragId) -> bool {
        let now = self.events.now();

        // Reserve hash-table memory before the fragment's first build.
        if let FragSink::Build(ht) = self.frags.get(f).sink {
            if !self.ht_mem.contains_key(&ht) && !self.reserve_ht(f, ht) {
                return false;
            }
        }

        self.acc.stall_end(now);
        if let Some(id) = self.timeout_ev.take() {
            self.events.cancel(id);
        }

        // Pull the input batch.
        let batch = self.cfg.batch_size;
        let source = self.frags.get(f).source;
        let (input, read_wait, read_instr): (Vec<Tuple>, Option<SimTime>, u64) = match source {
            FragSource::Queue(rel) => {
                let tuples = self.world.cm.consume(rel, batch);
                if let Some(at) = self.world.cm.after_consume(rel, now) {
                    self.events.schedule(at, Event::Arrival(rel));
                }
                (tuples, None, 0)
            }
            FragSource::Temp { temp, cursor, .. } => {
                let world = &mut self.world;
                let (tuples, instr, wake) = world.temps[temp.0 as usize].read_available(
                    cursor,
                    batch as u64,
                    now,
                    &mut world.disk,
                );
                if let FragSource::Temp { ref mut cursor, .. } = self.frags.get_mut(f).source {
                    *cursor += tuples.len() as u64;
                }
                if let Some(at) = wake {
                    self.events.schedule(at.max(now), Event::TempReady);
                }
                // Reads are asynchronous (§4.4): the DQP only consumes
                // resident pages and never blocks on the device.
                (tuples, None, instr)
            }
        };
        assert!(!input.is_empty(), "dispatched a fragment without input");

        let frag = self.frags.get_mut(f);
        frag.started = true;
        frag.tuples_in += input.len() as u64;
        let result = frag
            .chain
            .run_batch(&input, &mut self.world.arena, &self.world.params);
        let mut instr = result.instr + read_instr;
        let mut sink_wait: Option<SimTime> = None;

        match self.frags.get(f).sink {
            FragSink::Build(ht) => {
                // Grow the reservation if the build outgrew its estimate.
                let fp = self
                    .world
                    .arena
                    .get(ht)
                    .footprint_bytes(self.world.params.tuple_bytes);
                if let Some(&(res, reserved)) = self.ht_mem.get(&ht) {
                    if fp > reserved {
                        let extra = fp - reserved;
                        if self.world.memory.grow(res, extra).is_err() {
                            self.acc.m.memory_overflows += 1;
                            self.aborted = Some(format!(
                                "hash table {ht:?} outgrew query memory mid-build \
                                 ({fp} bytes needed, {} free)",
                                self.world.memory.free()
                            ));
                            return true; // batch charged; abort surfaces next loop
                        }
                        self.ht_mem.insert(ht, (res, fp));
                    }
                }
            }
            FragSink::Mat(temp) => {
                // The mat operator moves each tuple into the I/O buffer.
                instr += result.out.len() as u64 * self.world.params.instr_move_tuple;
                let world = &mut self.world;
                let charge =
                    world.temps[temp.0 as usize].append_batch(&result.out, now, &mut world.disk);
                instr += charge.cpu_instr;
                if self.frags.get(f).sync_mat_io {
                    // Naive synchronous materialization (MA): the batch is
                    // not done until the page write lands.
                    if let Some(done) = charge.device_done {
                        sink_wait = Some(done);
                    }
                }
            }
            FragSink::Output => {
                self.acc.m.output_tuples += result.out.len() as u64;
            }
        }

        let grant = self.world.cpu.acquire(now, self.world.params.instr_time(instr));
        let done_at = [read_wait, sink_wait]
            .into_iter()
            .flatten()
            .fold(grant.finish, SimTime::max);
        self.events.schedule(done_at, Event::BatchDone);
        self.inflight = Some(Inflight { frag: f });
        self.acc.m.batches += 1;
        true
    }

    fn reserve_ht(&mut self, f: FragId, ht: HtId) -> bool {
        let pc = self.frags.get(f).pc;
        let bytes = self.plan.info(pc).mem_bytes;
        match self.world.memory.reserve(bytes, format!("ht:{}", ht.0)) {
            Ok(res) => {
                self.ht_mem.insert(ht, (res, bytes));
                self.last_overflow = None;
                true
            }
            Err(e) => {
                self.acc.m.memory_overflows += 1;
                // If the same fragment already failed with no memory freed
                // since, the policy cannot make progress: abort.
                if self.last_overflow == Some((f, e.free)) {
                    self.aborted = Some(format!(
                        "fragment {f:?} is not M-schedulable and the policy \
                         could not resolve it: {e}"
                    ));
                    return false;
                }
                self.last_overflow = Some((f, e.free));
                self.note_replan(Interrupt::MemoryOverflow {
                    frag: f,
                    needed: bytes,
                });
                false
            }
        }
    }

    // ------------------------------------------------------------------
    // Fragment state helpers
    // ------------------------------------------------------------------

    /// Issue asynchronous read-ahead for every active temp-sourced
    /// fragment, scheduling wake-ups for newly in-flight windows.
    fn arm_all_readahead(&mut self) {
        let now = self.events.now();
        let temp_frags: Vec<FragId> = self
            .frags
            .iter()
            .filter(|fr| {
                fr.status == FragStatus::Active && matches!(fr.source, FragSource::Temp { .. })
            })
            .map(|fr| fr.id)
            .collect();
        for f in temp_frags {
            if let FragSource::Temp { temp, cursor, .. } = self.frags.get(f).source {
                let world = &mut self.world;
                let (instr, wake) =
                    world.temps[temp.0 as usize].arm_readahead(cursor, now, &mut world.disk);
                if instr > 0 {
                    let t = world.params.instr_time(instr);
                    world.cpu.acquire(now, t);
                }
                if let Some(at) = wake {
                    self.events.schedule(at.max(now), Event::TempReady);
                }
            }
        }
    }

    /// Swap a drained-temp source over to its live queue (MF cancelled
    /// hand-off). The retired MF's operators are prepended to the chain —
    /// with their live accumulator state — so tuples that now bypass the
    /// temp still see the same scan predicate with the same deterministic
    /// rounding.
    fn normalize_source(&mut self, f: FragId) {
        let frag = self.frags.get(f);
        if let FragSource::Temp {
            temp,
            cursor,
            then_queue: Some(rel),
        } = frag.source
        {
            let t = self.world.temp(temp);
            if t.is_sealed() && cursor >= t.len() {
                if let Some(mf) = self.frags.get_mut(f).handoff_from.take() {
                    let front = self.frags.take_chain(mf);
                    let back = self.frags.take_chain(f);
                    self.frags.get_mut(f).chain = dqs_relop::PhysChain::concat(front, back);
                }
                self.frags.get_mut(f).source = FragSource::Queue(rel);
            }
        }
    }

    fn available_input(&self, f: FragId) -> u64 {
        match self.frags.get(f).source {
            FragSource::Queue(rel) => self.world.cm.available(rel) as u64,
            FragSource::Temp { temp, cursor, .. } => {
                self.world.temp(temp).available(cursor, self.events.now())
            }
        }
    }

    /// No more input will ever appear beyond what is currently available.
    fn upstream_finished(&self, f: FragId) -> bool {
        match self.frags.get(f).source {
            FragSource::Queue(rel) => self.world.cm.exhausted(rel),
            FragSource::Temp {
                temp, then_queue, ..
            } => then_queue.is_none() && self.world.temp(temp).is_sealed(),
        }
    }

    fn probes_complete(&self, f: FragId) -> bool {
        self.frags
            .get(f)
            .chain
            .probe_targets()
            .iter()
            .all(|&ht| self.world.arena.get(ht).is_complete())
    }

    fn frag_complete_now(&self, f: FragId) -> bool {
        let frag = self.frags.get(f);
        if frag.status != FragStatus::Active {
            return false;
        }
        match frag.source {
            FragSource::Queue(rel) => self.world.cm.drained(rel),
            FragSource::Temp {
                temp,
                cursor,
                then_queue,
            } => {
                let t = self.world.temp(temp);
                then_queue.is_none() && t.is_sealed() && cursor >= t.len()
            }
        }
    }

    /// Finalize `f` if it has become complete, raising `EndOfQF`.
    fn maybe_finalize(&mut self, f: FragId) {
        self.normalize_source(f);
        if self.frag_complete_now(f) {
            self.finalize(f);
            if self.output_done_at.is_none() {
                self.replan(Interrupt::EndOfQf(f));
            }
        }
    }

    fn finalize(&mut self, f: FragId) {
        let now = self.events.now();
        self.frags.get_mut(f).status = FragStatus::Done;
        self.acc.m.end_of_qf += 1;
        self.world.trace.emit(now, TraceKind::Interrupt, || {
            format!("EndOfQF frag {}", f.0)
        });
        match self.frags.get(f).sink {
            FragSink::Build(ht) => {
                self.world.arena.get_mut(ht).complete();
            }
            FragSink::Mat(temp) => {
                let world = &mut self.world;
                let charge = world.temps[temp.0 as usize].seal(now, &mut world.disk);
                if charge.cpu_instr > 0 {
                    let t = world.params.instr_time(charge.cpu_instr);
                    world.cpu.acquire(now, t);
                }
            }
            FragSink::Output => {
                let query = self.plan.chains.chain(self.frags.get(f).pc).query;
                self.output_times.push((query, now));
                self.outputs_pending -= 1;
                if self.outputs_pending == 0 {
                    self.output_done_at = Some(now);
                }
            }
        }
        // This fragment was the sole consumer of the tables it probed:
        // drop their contents and release their memory.
        for ht in self.frags.get(f).chain.probe_targets() {
            self.world.arena.discard(ht);
            if let Some((res, _)) = self.ht_mem.remove(&ht) {
                self.world.memory.release(res);
            }
        }
    }

    fn finish_metrics(mut self) -> Result<(RunMetrics, dqs_sim::Trace), String> {
        if let Some(reason) = self.aborted {
            return Err(reason);
        }
        let trace = std::mem::take(&mut self.world.trace);
        let end = self.output_done_at.unwrap_or(self.events.now());
        self.acc.stall_end(end);
        let mut m = self.acc.m;
        m.strategy = self.policy.name();
        m.seed = self.cfg.seed;
        m.response_time = end.saturating_since(SimTime::ZERO);
        m.cpu_busy = self.world.cpu.busy_time();
        m.disk_busy = self.world.disk.busy_time();
        m.pages_written = self.world.disk.pages_written();
        m.pages_read = self.world.disk.pages_read();
        m.seeks = self.world.disk.seeks();
        m.memory_high_water = self.world.memory.high_water();
        m.events = self.events.fired();
        m.query_responses = {
            let mut v: Vec<(u32, dqs_sim::SimDuration)> = self
                .output_times
                .iter()
                .map(|&(q, t)| (q, t.saturating_since(SimTime::ZERO)))
                .collect();
            v.sort();
            v
        };
        Ok((m, trace))
    }
}

/// Convenience: build and run `workload` under `policy`.
pub fn run_workload<P: Policy>(workload: &Workload, policy: P) -> RunMetrics {
    Engine::new(workload, policy).run()
}
