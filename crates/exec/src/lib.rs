//! # dqs-exec — the execution engine
//!
//! Event-driven execution of integration queries on the simulated platform:
//!
//! * [`workload::Workload`] — a run is a pure function of this description;
//! * [`world::World`] — CPU, disk, memory, wrappers, hash tables, temps;
//! * [`frag`] — runtime query fragments (whole chains and the MF/CF halves
//!   of degraded chains, §4.4);
//! * [`runtime::Engine`] — the engine runtime, split into layered modules:
//!   [`runtime`] (event loop), [`dqp`] (batch-interleaved processing over
//!   the scheduling plan, §3.2), [`mem`] (hash-table memory accounting,
//!   §4.2) and [`replan`] (planning phases and interrupt handling, §3.1);
//! * [`driver`] — the sans-io substrate: the engine runs unchanged on the
//!   discrete-event [`SimDriver`] or the threaded wall-clock
//!   [`RealTimeDriver`];
//! * [`error`] — typed [`RunError`] abort reasons;
//! * [`observe`] — structured, typed engine events ([`EngineEvent`]) and the
//!   [`EngineObserver`] trait, with text-trace, metrics and JSON-lines sinks;
//! * [`policy::Policy`] — the DQS interface: scheduling plans recomputed at
//!   every interruption;
//! * [`strategies`] — the SEQ / MA / scrambling baselines and the adaptive
//!   SPM strategy (online source permutation over `dqs-adapt`'s rate
//!   observatory). The paper's DSE strategy is `dqs_core::DsePolicy`.
//!
//! ```
//! use dqs_exec::{run_workload, SeqPolicy, Workload};
//! use dqs_plan::{Catalog, QepBuilder};
//!
//! let mut catalog = Catalog::new();
//! let r = catalog.add("R", 500);
//! let s = catalog.add("S", 800);
//! let mut qb = QepBuilder::new();
//! let scan_r = qb.scan(r, 1.0);
//! let scan_s = qb.scan(s, 1.0);
//! let join = qb.hash_join(scan_r, scan_s, 1.0);
//! let workload = Workload::new(catalog, qb.finish(join).unwrap());
//!
//! let metrics = run_workload(&workload, SeqPolicy);
//! assert_eq!(metrics.output_tuples, 800);
//! assert!(metrics.response_time > dqs_sim::SimDuration::ZERO);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dqp;
pub mod driver;
pub mod error;
pub mod frag;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod multi;
pub mod observe;
pub mod policy;
pub mod pool;
pub mod replan;
pub mod runtime;
pub mod spec;
pub mod strategies;
pub mod workload;
pub mod world;

pub use driver::{Driver, RealTimeDriver, Signal, SimDriver};
pub use error::RunError;
pub use frag::{FragId, FragKind, FragSink, FragSource, FragStatus, FragTable, TempId};
pub use metrics::RunMetrics;
pub use multi::{combine, SingleQuery};
pub use observe::{
    EngineEvent, EngineObserver, JsonLinesSink, MetricsObserver, NullObserver, TextTrace,
};
pub use policy::{Interrupt, PlanCtx, Policy};
pub use pool::{PoolStats, TaskCtx, WorkerPool};
pub use runtime::{
    run_workload, run_workload_observed, run_workload_realtime, run_workload_realtime_observed,
    Engine,
};
pub use spec::{ConfigSpec, DelaySpec, JoinSpec, RelationSpec, SpecError, WorkloadSpec};
pub use strategies::{MaPolicy, ScramblingPolicy, SeqPolicy, SpmPolicy};
pub use workload::{EngineConfig, Workload};
pub use world::World;
