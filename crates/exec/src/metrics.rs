//! Run metrics: what every experiment reports.

use dqs_sim::{SimDuration, SimTime};

/// Everything measured during one query execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Name of the strategy that ran.
    pub strategy: &'static str,
    /// Master seed of the run.
    pub seed: u64,
    /// Query response time (the paper's Y axis).
    pub response_time: SimDuration,
    /// Result tuples produced.
    pub output_tuples: u64,
    /// Total mediator CPU busy time.
    pub cpu_busy: SimDuration,
    /// Total disk busy time.
    pub disk_busy: SimDuration,
    /// Pages written to / read from the local disk.
    pub pages_written: u64,
    /// Pages read back.
    pub pages_read: u64,
    /// Disk head repositionings.
    pub seeks: u64,
    /// Time the DQP spent stalled (no schedulable fragment had data).
    pub stall_time: SimDuration,
    /// Batches processed.
    pub batches: u64,
    /// Scheduling (planning) phases run.
    pub plans: u64,
    /// `EndOfQF` interruptions.
    pub end_of_qf: u64,
    /// `RateChange` interruptions.
    pub rate_changes: u64,
    /// `TimeOut` interruptions.
    pub timeouts: u64,
    /// `MemoryOverflow` interruptions.
    pub memory_overflows: u64,
    /// Chain degradations performed (MF/CF pairs created).
    pub degradations: u64,
    /// Peak query-memory reservation.
    pub memory_high_water: u64,
    /// Relations served from the mediator's result cache instead of a
    /// wrapper (zero when no cache is configured).
    pub cache_hits: u64,
    /// Relations that had to go to a wrapper (and were recorded if a
    /// cache is configured).
    pub cache_misses: u64,
    /// Payload bytes served from the result cache.
    pub cache_bytes_served: u64,
    /// Mid-scan replica failovers: a scan lost its endpoint and resumed
    /// on a peer (zero outside replica-backed runs).
    pub failovers: u64,
    /// Replica endpoints put on cooldown after a failure (each one is a
    /// retry the failover machinery absorbed).
    pub replica_retries: u64,
    /// Morsels dispatched to the worker pool (zero on the serial path;
    /// deliberately excluded from the golden fingerprint signature).
    pub morsels: u64,
    /// Morsels executed by a worker other than their home worker. Unlike
    /// `morsels` this is scheduling-dependent — answers never are.
    pub steals: u64,
    /// SPM rate-observatory samples folded (zero outside `SpmPolicy` runs;
    /// excluded from the golden fingerprint signature like `morsels`).
    pub rate_samples: u64,
    /// SPM mid-query drain-order re-permutations (zero outside `SpmPolicy`
    /// runs; excluded from the golden fingerprint signature).
    pub permutations: u64,
    /// Simulation events fired.
    pub events: u64,
    /// Per-query response times (query index, completion time), sorted by
    /// query. One entry for single-query plans; the §6 multi-query
    /// extension yields one per forest root.
    pub query_responses: Vec<(u32, SimDuration)>,
}

impl RunMetrics {
    /// Response time in seconds (reporting convenience).
    pub fn response_secs(&self) -> f64 {
        self.response_time.as_secs_f64()
    }

    /// Fraction of the response time the CPU was busy.
    pub fn cpu_utilization(&self) -> f64 {
        if self.response_time.is_zero() {
            return 0.0;
        }
        self.cpu_busy.as_secs_f64() / self.response_time.as_secs_f64()
    }

    /// Relative gain of this run over a `baseline` response time, as the
    /// paper reports it: `(base - this) / base`.
    pub fn gain_over(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.response_time.as_secs_f64();
        if base == 0.0 {
            return 0.0;
        }
        (base - self.response_time.as_secs_f64()) / base
    }
}

/// Internal time bookkeeping used by the engine while a run is in flight.
#[derive(Debug, Default)]
pub struct MetricsAcc {
    /// Mutable metrics under construction.
    pub m: RunMetrics,
    /// When the current stall began, if stalled.
    pub stall_since: Option<SimTime>,
}

impl MetricsAcc {
    /// Mark the DQP idle from `now` (idempotent).
    pub fn stall_begin(&mut self, now: SimTime) {
        self.stall_since.get_or_insert(now);
    }

    /// Mark the DQP busy again at `now`, accumulating the stall.
    pub fn stall_end(&mut self, now: SimTime) {
        if let Some(since) = self.stall_since.take() {
            self.m.stall_time += now.saturating_since(since);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_over_matches_paper_formula() {
        let base = RunMetrics {
            response_time: SimDuration::from_secs(10),
            ..Default::default()
        };
        let fast = RunMetrics {
            response_time: SimDuration::from_secs(6),
            ..Default::default()
        };
        assert!((fast.gain_over(&base) - 0.4).abs() < 1e-12);
        assert_eq!(base.gain_over(&fast), -(2.0 / 3.0));
    }

    #[test]
    fn stall_accounting_accumulates() {
        let mut acc = MetricsAcc::default();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        acc.stall_begin(t(1));
        acc.stall_begin(t(2)); // idempotent: still counts from t=1
        acc.stall_end(t(3));
        acc.stall_end(t(4)); // no-op: not stalled
        acc.stall_begin(t(5));
        acc.stall_end(t(6));
        assert_eq!(acc.m.stall_time, SimDuration::from_secs(3));
    }

    #[test]
    fn utilization_guards_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.cpu_utilization(), 0.0);
    }
}
