//! Query fragments at runtime.
//!
//! §3.1: "The scheduling plan consists of a totally ordered set of query
//! fragments (QF's)" — a QF is either a whole pipeline chain or one half of
//! a *degraded* chain (§4.4): the materialization fragment MF(p), which
//! spools the wrapper's tuples (optionally through the chain's first scan)
//! into a temp relation, and the complement fragment CF(p), which runs the
//! remaining operators reading from that temp.
//!
//! The fragment table owns the runtime state of every fragment: compiled
//! chain, source cursor, sink, status, and the degradation bookkeeping. The
//! engine (`engine.rs`) executes fragments; scheduling policies create and
//! reorder them.

use dqs_plan::{AnnotatedPlan, ChainSink, ChainSource, PcId};
use dqs_relop::{HtId, OpSpec, PhysChain, RelId};

/// Identifier of a runtime temp relation (index into the engine's temp
/// vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TempId(pub u32);

/// Identifier of a fragment in the [`FragTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragId(pub u32);

/// What kind of fragment this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragKind {
    /// An undegraded pipeline chain.
    Whole,
    /// Materialization fragment of a degraded chain.
    Mf,
    /// Complement fragment of a degraded chain.
    Cf,
}

/// Where a fragment's input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragSource {
    /// The communication queue of a wrapper.
    Queue(RelId),
    /// A temp relation, scanned from `cursor`. When `then_queue` is set the
    /// fragment continues reading live tuples from that wrapper's queue
    /// once the (sealed) temp is drained — the hand-off after an MF is
    /// cancelled because its chain became schedulable.
    Temp {
        /// Which temp relation.
        temp: TempId,
        /// Next tuple index to read.
        cursor: u64,
        /// Continue from this queue after the temp is drained.
        then_queue: Option<RelId>,
    },
}

/// Where a fragment's output goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragSink {
    /// Into a hash table (the chain's terminal `Build` op does the work).
    Build(HtId),
    /// Into a temp relation.
    Mat(TempId),
    /// The query result.
    Output,
}

/// Lifecycle of a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragStatus {
    /// May be scheduled.
    Active,
    /// Completed (sink finalized).
    Done,
    /// Replaced by an MF/CF pair before it ever ran.
    Superseded,
}

/// Runtime state of one query fragment.
#[derive(Debug)]
pub struct Fragment {
    /// Identifier.
    pub id: FragId,
    /// The pipeline chain this fragment belongs to.
    pub pc: PcId,
    /// Whole / MF / CF.
    pub kind: FragKind,
    /// Lifecycle state.
    pub status: FragStatus,
    /// Compiled operator pipeline.
    pub chain: PhysChain,
    /// Input.
    pub source: FragSource,
    /// Output.
    pub sink: FragSink,
    /// Whether any batch has been processed.
    pub started: bool,
    /// Source tuples consumed.
    pub tuples_in: u64,
    /// Materialization writes block the processor until the device
    /// completes (the naive MA baseline); the default is write-behind
    /// (§4.4's asynchronous I/O).
    pub sync_mat_io: bool,
    /// After an MF cancellation: the retired MF whose leading operators
    /// (with their live accumulator state) must be prepended to this
    /// fragment's chain when its source switches to the live queue.
    pub handoff_from: Option<FragId>,
    /// This fragment's RNG stream seed, derived from the workload's master
    /// seed and the fragment's position (chain id / MF-CF role) at creation.
    /// Morsel streams derive from `(seed, morsel index)` — see
    /// [`Fragment::morsel_seed`] — so per-morsel randomness never depends on
    /// worker count or steal order.
    pub seed: u64,
}

impl Fragment {
    /// The RNG stream seed of morsel `index` of this fragment's next batch.
    pub fn morsel_seed(&self, index: u64) -> u64 {
        crate::world::morsel_seed(self.seed, index)
    }
}

/// All fragments of one execution.
#[derive(Debug)]
pub struct FragTable {
    frags: Vec<Fragment>,
    /// pc index → fragment ids (Whole first, then MF/CF if degraded).
    by_pc: Vec<Vec<FragId>>,
}

impl FragTable {
    /// Create one `Whole` fragment per pipeline chain of `plan`.
    ///
    /// Plan-level `Mat` nodes (inserted by the optimizer or the DQO) map to
    /// runtime temp ids `0..mat_count`, which the engine pre-allocates.
    ///
    /// `master_seed` (the workload's config seed) roots every fragment's
    /// derived RNG stream seed.
    pub fn from_plan(plan: &AnnotatedPlan, master_seed: u64) -> FragTable {
        let mut t = FragTable {
            frags: Vec::new(),
            by_pc: vec![Vec::new(); plan.chains.len()],
        };
        for pc in &plan.chains.chains {
            let id = FragId(t.frags.len() as u32);
            let source = match pc.source {
                ChainSource::Wrapper(rel) => FragSource::Queue(rel),
                ChainSource::Temp(m) => FragSource::Temp {
                    temp: TempId(m.0),
                    cursor: 0,
                    then_queue: None,
                },
            };
            let sink = match pc.sink {
                ChainSink::Build(ht) => FragSink::Build(ht),
                ChainSink::Mat(m) => FragSink::Mat(TempId(m.0)),
                ChainSink::Output => FragSink::Output,
            };
            t.frags.push(Fragment {
                id,
                pc: pc.id,
                kind: FragKind::Whole,
                status: FragStatus::Active,
                chain: PhysChain::compile(&pc.ops),
                source,
                sink,
                started: false,
                tuples_in: 0,
                sync_mat_io: false,
                handoff_from: None,
                seed: crate::world::derive_seed(master_seed, &format!("frag:{}", pc.id.0)),
            });
            t.by_pc[pc.id.0 as usize].push(id);
        }
        t
    }

    /// Fragment lookup.
    pub fn get(&self, id: FragId) -> &Fragment {
        &self.frags[id.0 as usize]
    }

    /// Mutable fragment lookup.
    pub fn get_mut(&mut self, id: FragId) -> &mut Fragment {
        &mut self.frags[id.0 as usize]
    }

    /// Number of fragments ever created.
    pub fn len(&self) -> usize {
        self.frags.len()
    }

    /// True when no fragments exist.
    pub fn is_empty(&self) -> bool {
        self.frags.is_empty()
    }

    /// Iterate all fragments.
    pub fn iter(&self) -> impl Iterator<Item = &Fragment> {
        self.frags.iter()
    }

    /// Fragments of chain `pc` (in creation order).
    pub fn of_pc(&self, pc: PcId) -> &[FragId] {
        &self.by_pc[pc.0 as usize]
    }

    /// The single *live* fragment representing chain `pc`'s remaining work:
    /// the Whole fragment, or the CF once degraded. `None` once complete.
    pub fn live_body(&self, pc: PcId) -> Option<FragId> {
        self.by_pc[pc.0 as usize].iter().copied().rev().find(|&f| {
            let fr = self.get(f);
            fr.status == FragStatus::Active && fr.kind != FragKind::Mf
        })
    }

    /// The active MF of `pc`, if one exists.
    pub fn live_mf(&self, pc: PcId) -> Option<FragId> {
        self.by_pc[pc.0 as usize]
            .iter()
            .copied()
            .find(|&f| self.get(f).kind == FragKind::Mf && self.get(f).status == FragStatus::Active)
    }

    /// Take a fragment's chain out, leaving an empty one (used by the
    /// MF-cancellation hand-off).
    pub fn take_chain(&mut self, id: FragId) -> PhysChain {
        std::mem::replace(&mut self.get_mut(id).chain, PhysChain::compile(&[]))
    }

    /// True when chain `pc` was degraded.
    pub fn is_degraded(&self, pc: PcId) -> bool {
        self.by_pc[pc.0 as usize].len() > 1
    }

    /// True when every non-superseded fragment is done.
    pub fn all_done(&self) -> bool {
        self.frags.iter().all(|f| f.status != FragStatus::Active)
    }

    /// Split an active, not-yet-started fragment at operator boundary `k`:
    /// the *head* runs `ops[..k]` and materializes into `temp`; the *tail*
    /// reads the temp and runs `ops[k..]` into the original sink. This is
    /// both §4.4's PC degradation (`k <= 1`) and §4.2's memory-overflow
    /// split ("inserting a materialize operator at the highest possible
    /// point", `k = ops.len() - 1`).
    ///
    /// Returns `(head, tail)`.
    ///
    /// # Panics
    /// Panics if the fragment already ran, is not active, or `k` would put
    /// a `Build` into the head — all scheduler bugs.
    pub fn split_fragment(&mut self, fid: FragId, k: usize, temp: TempId) -> (FragId, FragId) {
        let frag = self.get(fid);
        assert_eq!(frag.status, FragStatus::Active, "splitting a dead fragment");
        assert!(!frag.started, "splitting a fragment that already ran");
        let spec = frag.chain.spec().to_vec();
        assert!(k <= spec.len(), "split point out of range");
        assert!(
            !spec[..k].iter().any(|o| matches!(o, OpSpec::Build { .. })),
            "a Build cannot move into the materialization head"
        );
        let pc = frag.pc;
        let source = frag.source;
        let sink = frag.sink;
        let parent_seed = frag.seed;

        self.get_mut(fid).status = FragStatus::Superseded;

        let head_id = FragId(self.frags.len() as u32);
        self.frags.push(Fragment {
            id: head_id,
            pc,
            kind: FragKind::Mf,
            status: FragStatus::Active,
            chain: PhysChain::compile(&spec[..k]),
            source,
            sink: FragSink::Mat(temp),
            started: false,
            tuples_in: 0,
            sync_mat_io: false,
            handoff_from: None,
            seed: crate::world::derive_seed(parent_seed, "mf"),
        });
        let tail_id = FragId(self.frags.len() as u32);
        self.frags.push(Fragment {
            id: tail_id,
            pc,
            kind: FragKind::Cf,
            status: FragStatus::Active,
            chain: PhysChain::compile(&spec[k..]),
            source: FragSource::Temp {
                temp,
                cursor: 0,
                then_queue: None,
            },
            sink,
            started: false,
            tuples_in: 0,
            sync_mat_io: false,
            handoff_from: None,
            seed: crate::world::derive_seed(parent_seed, "cf"),
        });
        self.by_pc[pc.0 as usize].push(head_id);
        self.by_pc[pc.0 as usize].push(tail_id);
        (head_id, tail_id)
    }

    /// Degrade chain `pc` (§4.4): supersede its Whole fragment with
    /// MF(p) → `temp` → CF(p). `include_scan` keeps the chain's leading
    /// scan/selection inside the MF (the paper's choice: "applies the first
    /// scan operator of p (if any)"); pass `false` for the raw spooling the
    /// Materialize-All baseline performs.
    ///
    /// Returns `(mf, cf)`.
    ///
    /// # Panics
    /// Panics if the chain already started, is already degraded, or is not
    /// wrapper-sourced — degrading any of those is a scheduler bug.
    pub fn degrade(&mut self, pc: PcId, include_scan: bool, temp: TempId) -> (FragId, FragId) {
        let whole_id = *self.by_pc[pc.0 as usize]
            .first()
            .expect("chain has a fragment");
        assert!(!self.is_degraded(pc), "chain {pc:?} is already degraded");
        let whole = self.get(whole_id);
        assert!(
            matches!(whole.source, FragSource::Queue(_)),
            "only wrapper-sourced chains can be degraded"
        );
        let k = match whole.chain.spec().first() {
            Some(OpSpec::Select { .. }) if include_scan => 1,
            _ => 0,
        };
        self.split_fragment(whole_id, k, temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_plan::{AnnotatedPlan, Catalog, ChainSet, QepBuilder};
    use dqs_sim::SimParams;

    fn plan() -> AnnotatedPlan {
        let mut cat = Catalog::new();
        let a = cat.add("A", 100);
        let b = cat.add("B", 200);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 0.5);
        let sb = qb.scan(b, 1.0);
        let j = qb.hash_join(sa, sb, 1.0);
        let qep = qb.finish(j).unwrap();
        AnnotatedPlan::annotate(ChainSet::decompose(&qep), &cat, &SimParams::default())
    }

    #[test]
    fn from_plan_creates_whole_fragments() {
        let t = FragTable::from_plan(&plan(), 42);
        assert_eq!(t.len(), 2);
        let f0 = t.get(FragId(0));
        assert_eq!(f0.kind, FragKind::Whole);
        assert_eq!(f0.source, FragSource::Queue(dqs_relop::RelId(0)));
        assert!(matches!(f0.sink, FragSink::Build(_)));
        let f1 = t.get(FragId(1));
        assert_eq!(f1.sink, FragSink::Output);
        assert_eq!(t.live_body(PcId(0)), Some(FragId(0)));
        assert!(!t.all_done());
    }

    #[test]
    fn degrade_splits_scan_into_mf() {
        let mut t = FragTable::from_plan(&plan(), 42);
        let (mf, cf) = t.degrade(PcId(0), true, TempId(0));
        assert_eq!(t.get(FragId(0)).status, FragStatus::Superseded);
        let m = t.get(mf);
        assert_eq!(m.kind, FragKind::Mf);
        assert_eq!(m.chain.spec().len(), 1, "MF keeps the scan");
        assert_eq!(m.sink, FragSink::Mat(TempId(0)));
        assert!(
            m.chain
                .spec()
                .iter()
                .all(|o| matches!(o, OpSpec::Select { .. })),
            "MF must not contain joins"
        );
        let c = t.get(cf);
        assert_eq!(c.kind, FragKind::Cf);
        assert_eq!(c.chain.spec().len(), 1, "CF gets the build");
        assert!(matches!(c.sink, FragSink::Build(_)));
        assert_eq!(
            c.source,
            FragSource::Temp {
                temp: TempId(0),
                cursor: 0,
                then_queue: None
            }
        );
        // live_body now points at the CF, live_mf at the MF.
        assert_eq!(t.live_body(PcId(0)), Some(cf));
        assert_eq!(t.live_mf(PcId(0)), Some(mf));
        assert!(t.is_degraded(PcId(0)));
    }

    #[test]
    fn degrade_without_scan_spools_raw() {
        let mut t = FragTable::from_plan(&plan(), 42);
        let (mf, cf) = t.degrade(PcId(0), false, TempId(0));
        assert_eq!(t.get(mf).chain.spec().len(), 0, "raw spool");
        assert_eq!(t.get(cf).chain.spec().len(), 2, "CF gets scan + build");
    }

    #[test]
    #[should_panic(expected = "already degraded")]
    fn double_degrade_panics() {
        let mut t = FragTable::from_plan(&plan(), 42);
        t.degrade(PcId(0), true, TempId(0));
        t.degrade(PcId(0), true, TempId(1));
    }

    #[test]
    #[should_panic(expected = "already ran")]
    fn degrade_after_start_panics() {
        let mut t = FragTable::from_plan(&plan(), 42);
        t.get_mut(FragId(0)).started = true;
        t.degrade(PcId(0), true, TempId(0));
    }

    #[test]
    fn all_done_tracks_statuses() {
        let mut t = FragTable::from_plan(&plan(), 42);
        t.get_mut(FragId(0)).status = FragStatus::Done;
        assert!(!t.all_done());
        t.get_mut(FragId(1)).status = FragStatus::Done;
        assert!(t.all_done());
    }
}
