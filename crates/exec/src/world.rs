//! The execution world: every simulated component of one run.

use dqs_plan::{AnnotatedPlan, ChainSet};
use dqs_relop::{HashTableArena, RelId, Tuple};
use dqs_sim::{FifoResource, SeedSplitter, SimParams};
use dqs_source::{BoxSource, CommManager, Wrapper};
use dqs_storage::{Disk, MemoryManager, StreamId, TempRelation};

use crate::frag::TempId;
use crate::workload::Workload;

/// The simulated pull-paced wrappers for `workload`, seeded exactly as the
/// pre-driver engine seeded them (one ChaCha8 stream per wrapper name).
/// Shared by [`World::build`] and `SimDriver` so both construct
/// bit-identical sources.
pub(crate) fn sim_sources(workload: &Workload) -> Vec<BoxSource> {
    let seeds = SeedSplitter::new(workload.config.seed);
    workload
        .catalog
        .iter()
        .map(|(rel, spec)| {
            Box::new(Wrapper::new(
                rel,
                workload.actual_cardinality(rel),
                workload.delays[rel.0 as usize].clone(),
                seeds.stream(&format!("wrapper:{}", spec.name)),
            )) as BoxSource
        })
        .collect()
}

/// Derive a child seed from a master seed and a context label: FNV-1a over
/// the label folded into the master, finished with a splitmix64 mix. Used to
/// give every fragment its own seed stream at construction
/// ([`crate::frag::FragTable::from_plan`]), so per-morsel randomness is a
/// pure function of *position* — (fragment seed, morsel index) — and never of
/// worker count, steal order, or wall-clock timing.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(master ^ h)
}

/// The RNG stream seed of morsel `index` within a fragment whose stream seed
/// is `frag_seed` (satellite of the morsel-parallelism refactor: dispatch
/// jitter and any future per-morsel sampling draw from this, reproducibly).
pub fn morsel_seed(frag_seed: u64, index: u64) -> u64 {
    splitmix64(frag_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// SplitMix64 finalizer — a cheap, well-mixed u64→u64 bijection.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// All mutable simulated state shared by the engine and the policies.
#[derive(Debug)]
pub struct World {
    /// Platform parameters.
    pub params: SimParams,
    /// The mediator's single CPU.
    pub cpu: FifoResource,
    /// The mediator's local disk.
    pub disk: Disk,
    /// The query memory budget.
    pub memory: MemoryManager,
    /// Wrappers, queues and rate estimation.
    pub cm: CommManager,
    /// All hash tables of the plan.
    pub arena: HashTableArena,
    /// Temp relations (plan-level mats first, degradations appended).
    pub temps: Vec<TempRelation<Tuple>>,
}

impl World {
    /// Build a world for `workload` with the default simulated sources,
    /// returning it with the annotated plan.
    pub fn build(workload: &Workload) -> (World, AnnotatedPlan) {
        World::build_with_sources(
            workload,
            sim_sources(workload),
            workload.config.queue_capacity,
        )
    }

    /// Build a world for `workload` around driver-provided `sources` and
    /// communication-manager `queue_capacity`.
    pub fn build_with_sources(
        workload: &Workload,
        sources: Vec<BoxSource>,
        queue_capacity: usize,
    ) -> (World, AnnotatedPlan) {
        let params = workload.config.params.clone();
        let chains = ChainSet::decompose(&workload.qep);
        let plan = AnnotatedPlan::annotate(chains, &workload.catalog, &params);

        let mut cm = CommManager::from_boxed(sources, queue_capacity, params.clone());
        if let Some(t) = workload.config.rate_change_threshold {
            cm.set_rate_change_threshold(t);
        }

        let mut arena = HashTableArena::new();
        for _ in 0..plan.chains.ht_count {
            arena.alloc();
        }

        let mut world = World {
            cpu: FifoResource::new("cpu"),
            disk: Disk::new(params.clone()),
            memory: MemoryManager::new(workload.config.memory_bytes),
            cm,
            arena,
            temps: Vec::new(),
            params,
        };
        // Pre-allocate temps for plan-level Mat nodes so TempId(i) == MatId(i).
        for _ in 0..plan.chains.mat_count {
            world.alloc_temp();
        }
        (world, plan)
    }

    /// Allocate a fresh temp relation with its own disk streams.
    pub fn alloc_temp(&mut self) -> TempId {
        let i = self.temps.len() as u32;
        self.temps.push(TempRelation::new(
            &self.params,
            StreamId(2 * i),
            StreamId(2 * i + 1),
        ));
        TempId(i)
    }

    /// Temp lookup.
    pub fn temp(&self, id: TempId) -> &TempRelation<Tuple> {
        &self.temps[id.0 as usize]
    }

    /// Mutable temp lookup.
    pub fn temp_mut(&mut self, id: TempId) -> &mut TempRelation<Tuple> {
        &mut self.temps[id.0 as usize]
    }

    /// True when the wrapper for `rel` delivered everything and its queue
    /// is empty.
    pub fn rel_drained(&self, rel: RelId) -> bool {
        self.cm.drained(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn build_wires_all_components() {
        let (w, _f5) = Workload::fig5();
        let (world, plan) = World::build(&w);
        assert_eq!(world.cm.len(), 6);
        assert_eq!(world.arena.len(), 5, "five joins, five hash tables");
        assert!(world.temps.is_empty(), "no plan-level mats in figure 5");
        assert_eq!(plan.chains.len(), 6);
        assert_eq!(world.memory.total(), 32 * 1024 * 1024);
    }

    #[test]
    fn alloc_temp_assigns_distinct_streams() {
        let (w, _) = Workload::fig5();
        let (mut world, _) = World::build(&w);
        let a = world.alloc_temp();
        let b = world.alloc_temp();
        assert_ne!(a, b);
        assert_eq!(world.temps.len(), 2);
    }

    #[test]
    fn same_workload_same_world_shape() {
        let (w, _) = Workload::fig5();
        let (w1, p1) = World::build(&w);
        let (w2, p2) = World::build(&w);
        assert_eq!(p1.chains.len(), p2.chains.len());
        assert_eq!(w1.cm.len(), w2.cm.len());
    }
}
