//! Process-wide worker pool for morsel-driven intra-query parallelism.
//!
//! The scheduler (priority order, C-/M-schedulability, critical degree)
//! stays the *admission* layer: it still decides which fragment runs a batch
//! next. Once a batch is admitted, [`WorkerPool::execute`] fans its morsels
//! out across a fixed set of worker threads with per-worker deques and
//! work-stealing (the Morsel-Driven Parallelism model), and gathers results
//! back **in submission order** — the merge order never depends on which
//! worker ran a morsel or when, which is one half of the bit-identical
//! answer guarantee (the other half is the arithmetic chain forking in
//! `dqs-relop`).
//!
//! One pool is shared by everything in the process: every mediator session,
//! every bench repetition. Sharing is what keeps the admission layer
//! meaningful — concurrent queries compete for the same workers instead of
//! each spawning its own set.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a task ran, handed to the task closure so callers can record
/// per-morsel placement (worker id, whether it was stolen from another
/// worker's deque) without the pool knowing anything about morsels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCtx {
    /// Index of the worker thread that executed the task.
    pub worker: usize,
    /// True when the task was popped from another worker's deque.
    pub stolen: bool,
}

type Task = Box<dyn FnOnce(TaskCtx) + Send + 'static>;

/// A queued task remembers its home deque so the runner can tell a steal
/// from a local pop.
struct QueuedTask {
    home: usize,
    run: Task,
}

struct PoolShared {
    deques: Vec<Mutex<VecDeque<QueuedTask>>>,
    /// Paired with `cond`; the guarded value counts submitted-not-yet-started
    /// tasks so sleeping workers know whether a wakeup is worth taking.
    pending: Mutex<u64>,
    cond: Condvar,
    stop: AtomicBool,
    next_home: AtomicUsize,
    busy: AtomicU64,
    dispatched: AtomicU64,
    stolen: AtomicU64,
}

/// Point-in-time snapshot of the pool's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker threads.
    pub workers: u64,
    /// Workers currently running a task.
    pub busy_workers: u64,
    /// Tasks submitted but not yet started.
    pub queued: u64,
    /// Total tasks ever submitted.
    pub dispatched: u64,
    /// Total tasks executed by a worker other than their home worker.
    pub stolen: u64,
}

/// Fixed-size work-stealing thread pool (see module docs).
///
/// Entirely safe code: per-worker `Mutex<VecDeque>` deques instead of a
/// lock-free stealing deque. Morsels are coarse (hundreds of microseconds of
/// modeled work each), so deque lock traffic is noise; what matters is that
/// idle workers steal instead of spinning and that results merge in
/// submission order.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            cond: Condvar::new(),
            stop: AtomicBool::new(false),
            next_home: AtomicUsize::new(0),
            busy: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dqs-morsel-{i}"))
                    .spawn(move || worker_loop(i, &sh))
                    .expect("spawn morsel worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            threads: Mutex::new(threads),
            workers,
        })
    }

    /// The process-global pool, sized to the machine (capped at 8), created
    /// on first use. Engines configured with `workers > 1` fall back to this
    /// when no pool was attached explicitly; the mediator attaches its own
    /// `--exec-workers`-sized pool instead.
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism().map_or(2, |n| n.get());
            WorkerPool::new(n.clamp(1, 8))
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot the activity counters.
    pub fn stats(&self) -> PoolStats {
        let queued: u64 = *self.shared.pending.lock().unwrap();
        PoolStats {
            workers: self.workers as u64,
            busy_workers: self.shared.busy.load(Ordering::Relaxed),
            queued,
            dispatched: self.shared.dispatched.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
        }
    }

    /// Run every task on the pool and return their results **in submission
    /// order**, blocking the caller until all are done. Tasks are dealt
    /// round-robin across the worker deques; idle workers steal from busy
    /// ones, so completion order is scheduling-dependent — but the returned
    /// `Vec` is not.
    ///
    /// Safe to call from many threads at once (concurrent mediator sessions
    /// share one pool); each call gathers only its own tasks. Also safe to
    /// call from *inside* a pool task (a bench repetition running on the
    /// pool whose engine fans out morsels): while waiting, the gatherer
    /// runs queued tasks inline instead of blocking, so even a one-worker
    /// pool makes progress.
    ///
    /// # Panics
    /// Panics if a task panicked on its worker (the channel closes early).
    pub fn execute<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce(TaskCtx) -> T + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        {
            let mut pending = self.shared.pending.lock().unwrap();
            for (idx, f) in tasks.into_iter().enumerate() {
                let home = self.shared.next_home.fetch_add(1, Ordering::Relaxed) % self.workers;
                let tx = tx.clone();
                let run: Task = Box::new(move |ctx| {
                    // A dropped receiver just means the gatherer already
                    // panicked; nothing useful to do with the error.
                    let _ = tx.send((idx, f(ctx)));
                });
                self.shared.deques[home]
                    .lock()
                    .unwrap()
                    .push_back(QueuedTask { home, run });
                *pending += 1;
            }
            self.shared
                .dispatched
                .fetch_add(n as u64, Ordering::Relaxed);
            self.shared.cond.notify_all();
        }
        drop(tx);

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut done = 0;
        while done < n {
            match rx.try_recv() {
                Ok((idx, val)) => {
                    slots[idx] = Some(val);
                    done += 1;
                    continue;
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    panic!("morsel task panicked on worker")
                }
                Err(mpsc::TryRecvError::Empty) => {}
            }
            // Help-first gathering: drain queued work (ours or anyone's)
            // instead of parking. Helper-run tasks report their home worker
            // unstolen — the caller is not a worker, and steal accounting
            // only describes real cross-deque pops.
            if let Some(task) = self.pop_any() {
                (task.run)(TaskCtx {
                    worker: task.home,
                    stolen: false,
                });
            } else {
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok((idx, val)) => {
                        slots[idx] = Some(val);
                        done += 1;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        panic!("morsel task panicked on worker")
                    }
                }
            }
        }
        slots.into_iter().map(|s| s.unwrap()).collect()
    }

    /// Pop one queued task from any deque (front-first, lowest worker
    /// first), for the gatherer's help loop.
    fn pop_any(&self) -> Option<QueuedTask> {
        for d in &self.shared.deques {
            if let Some(t) = d.lock().unwrap().pop_front() {
                let mut pending = self.shared.pending.lock().unwrap();
                *pending = pending.saturating_sub(1);
                return Some(t);
            }
        }
        None
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        for h in self.threads.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(me: usize, sh: &PoolShared) {
    let n = sh.deques.len();
    loop {
        // Own deque first (FIFO), then steal from the others' tails in a
        // fixed rotation starting after `me` — deterministic victim order,
        // though which victim has work is of course timing-dependent.
        let mut found: Option<QueuedTask> = sh.deques[me].lock().unwrap().pop_front();
        if found.is_none() {
            for step in 1..n {
                let victim = (me + step) % n;
                if let Some(t) = sh.deques[victim].lock().unwrap().pop_back() {
                    found = Some(t);
                    break;
                }
            }
        }
        match found {
            Some(task) => {
                {
                    let mut pending = sh.pending.lock().unwrap();
                    *pending = pending.saturating_sub(1);
                }
                let stolen = task.home != me;
                if stolen {
                    sh.stolen.fetch_add(1, Ordering::Relaxed);
                }
                sh.busy.fetch_add(1, Ordering::Relaxed);
                (task.run)(TaskCtx { worker: me, stolen });
                sh.busy.fetch_sub(1, Ordering::Relaxed);
            }
            None => {
                if sh.stop.load(Ordering::SeqCst) {
                    return;
                }
                let pending = sh.pending.lock().unwrap();
                if *pending == 0 {
                    // Timeout bounds the cost of a lost race between the
                    // emptiness check above and this wait.
                    let _ = sh
                        .cond
                        .wait_timeout(pending, Duration::from_millis(2))
                        .unwrap();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                move |_ctx: TaskCtx| {
                    // Uneven task lengths so completion order scrambles.
                    std::thread::sleep(Duration::from_micros(((i * 7) % 13) * 50));
                    i * i
                }
            })
            .collect();
        let got = pool.execute(tasks);
        let want: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_callers_each_get_their_own_results() {
        let pool = WorkerPool::new(3);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|caller| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let tasks: Vec<_> = (0..20u64)
                            .map(|i| move |_ctx: TaskCtx| caller * 1000 + i)
                            .collect();
                        pool.execute(tasks)
                    })
                })
                .collect();
            for (caller, h) in handles.into_iter().enumerate() {
                let got = h.join().unwrap();
                let want: Vec<u64> = (0..20).map(|i| caller as u64 * 1000 + i).collect();
                assert_eq!(got, want);
            }
        });
    }

    #[test]
    fn stats_count_dispatches() {
        let pool = WorkerPool::new(2);
        let _ = pool.execute((0..10).map(|i| move |_ctx: TaskCtx| i).collect::<Vec<_>>());
        let st = pool.stats();
        assert_eq!(st.workers, 2);
        assert_eq!(st.dispatched, 10);
        assert_eq!(st.queued, 0);
        assert_eq!(st.busy_workers, 0);
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        let pool = WorkerPool::new(1);
        let got: Vec<u64> = pool.execute(Vec::<fn(TaskCtx) -> u64>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn nested_execute_from_inside_a_task_cannot_deadlock() {
        // One worker: the outer task occupies it, so the inner execute can
        // only finish because the gatherer helps run queued tasks inline.
        let pool = WorkerPool::new(1);
        let inner_pool = Arc::clone(&pool);
        let got = pool.execute(vec![move |_ctx: TaskCtx| {
            inner_pool.execute(
                (0..8u64)
                    .map(|i| move |_ctx: TaskCtx| i * 2)
                    .collect::<Vec<_>>(),
            )
        }]);
        assert_eq!(got[0], (0..8).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_pool_runs_everything_unstolen() {
        let pool = WorkerPool::new(1);
        let ctxs = pool.execute((0..8).map(|_| |ctx: TaskCtx| ctx).collect::<Vec<_>>());
        for c in ctxs {
            assert_eq!(c.worker, 0);
            assert!(!c.stolen);
        }
        assert_eq!(pool.stats().stolen, 0);
    }
}
