//! The engine runtime: construction, the event loop, and run finalization.
//!
//! [`Engine`] is split across four modules, each an `impl` extension of the
//! same struct:
//!
//! * here — the signal loop and the arrival/batch-done handlers;
//! * [`crate::dqp`] — fragment lifecycle and batch processing (§3.2);
//! * [`crate::mem`] — hash-table memory accounting (§4.2);
//! * [`crate::replan`] — planning phases and interrupt handling (§3.1).
//!
//! The engine is strategy-agnostic: SEQ, MA and DSE are [`Policy`]s that
//! differ only in the scheduling plans they return (§5.1.2: "Since the
//! different strategies use the same lower-level code, the performance
//! difference can only stem from the execution strategies").
//!
//! It is also substrate-agnostic (sans-io): time, timers and tuple delivery
//! come from a [`Driver`]. Under the default [`SimDriver`] everything runs
//! on the simulated clock — batch CPU time and message receive costs queue
//! on the single mediator CPU, materialization and temp scans queue on the
//! single disk — exactly as before the driver split. Under
//! [`RealTimeDriver`] the same loop runs against a wall clock with threaded
//! wrappers. Every state transition is reported as a structured
//! [`EngineEvent`] to the observer stack (see [`crate::observe`]).

use std::collections::HashMap;
use std::sync::Arc;

use dqs_plan::AnnotatedPlan;
use dqs_relop::{HtId, RelId, Tuple};
use dqs_sim::SimTime;
use dqs_storage::ReservationId;

use crate::driver::{Driver, RealTimeDriver, Signal, SimDriver};
use crate::error::RunError;
use crate::frag::{FragId, FragTable};
use crate::metrics::RunMetrics;
use crate::observe::{EngineEvent, EngineObserver, NullObserver, Observers, TextTrace};
use crate::policy::{Interrupt, Policy};
use crate::pool::WorkerPool;
use crate::workload::{EngineConfig, Workload};
use crate::world::World;

/// The batch currently on the CPU.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Inflight {
    pub(crate) frag: FragId,
    /// Result tuples this batch delivered to the query output.
    pub(crate) output: u64,
}

/// Hard ceiling on delivered signals — a runaway loop trips this rather
/// than hanging the benchmark harness.
const MAX_EVENTS: u64 = 500_000_000;

/// One query execution: world + fragments + policy + signal loop.
///
/// The observer type parameter defaults to [`NullObserver`] and the driver
/// to [`SimDriver`], so existing `Engine::new(..)` call sites are
/// unchanged; [`Engine::with_observer`] installs a custom
/// [`EngineObserver`] with static dispatch, and [`Engine::with_driver`]
/// additionally picks the execution substrate.
pub struct Engine<P: Policy, O: EngineObserver = NullObserver, D: Driver = SimDriver> {
    pub(crate) world: World,
    pub(crate) plan: AnnotatedPlan,
    pub(crate) frags: FragTable,
    pub(crate) policy: P,
    pub(crate) cfg: EngineConfig,
    pub(crate) driver: D,
    /// Current scheduling plan, highest priority first.
    pub(crate) sp: Vec<FragId>,
    pub(crate) inflight: Option<Inflight>,
    pub(crate) pending_replan: Option<Interrupt>,
    pub(crate) timeout_ev: Option<D::Timer>,
    pub(crate) timeout_gen: u64,
    /// Memory reservation per built hash table: (grant, reserved bytes).
    pub(crate) ht_mem: HashMap<HtId, (ReservationId, u64)>,
    /// Fragment that last failed to reserve, with the free bytes then.
    pub(crate) last_overflow: Option<(FragId, u64)>,
    /// Output chains still running (multi-query forests have several).
    pub(crate) outputs_pending: usize,
    /// `(query, completion time)` per finished output chain.
    pub(crate) output_times: Vec<(u32, SimTime)>,
    /// Set once every output chain finished.
    pub(crate) output_done_at: Option<SimTime>,
    /// True while the DQP is stalled (dedups `Stalled` events).
    pub(crate) stalled: bool,
    pub(crate) aborted: Option<RunError>,
    /// Reusable batch-input scratch (avoids a Vec per batch).
    pub(crate) in_buf: Vec<Tuple>,
    /// Reusable batch-output scratch.
    pub(crate) out_buf: Vec<Tuple>,
    /// Worker pool for morsel-parallel batches. Resolved on first use when
    /// `cfg.workers > 1` (driver-provided pool, else the process-global one);
    /// never touched at workers=1, so serial runs spawn no threads.
    pub(crate) pool: Option<Arc<WorkerPool>>,
    pub(crate) obs: Observers<O>,
}

impl<P: Policy> Engine<P> {
    /// Build an engine for `workload` driven by `policy`.
    pub fn new(workload: &Workload, policy: P) -> Self {
        Engine::with_observer(workload, policy, NullObserver)
    }
}

impl<P: Policy, O: EngineObserver> Engine<P, O> {
    /// Build an engine that reports every [`EngineEvent`] to `observer`
    /// (in addition to the built-in metrics and optional text trace).
    pub fn with_observer(workload: &Workload, policy: P, observer: O) -> Self {
        Engine::with_driver(workload, policy, observer, SimDriver::new())
    }
}

impl<P: Policy, O: EngineObserver, D: Driver> Engine<P, O, D> {
    /// Build an engine running on `driver` — the fully general constructor.
    pub fn with_driver(workload: &Workload, policy: P, observer: O, mut driver: D) -> Self {
        let sources = driver.sources(workload);
        let queue_capacity = driver.queue_capacity(&workload.config);
        let (world, plan) = World::build_with_sources(workload, sources, queue_capacity);
        let frags = FragTable::from_plan(&plan, workload.config.seed);
        let pool = driver.exec_pool();
        let outputs_pending = plan
            .chains
            .chains
            .iter()
            .filter(|c| matches!(c.sink, dqs_plan::ChainSink::Output))
            .count();
        Engine {
            world,
            plan,
            frags,
            policy,
            obs: Observers::new(workload.config.trace, observer),
            cfg: workload.config.clone(),
            driver,
            sp: Vec::new(),
            inflight: None,
            pending_replan: None,
            timeout_ev: None,
            timeout_gen: 0,
            ht_mem: HashMap::new(),
            last_overflow: None,
            outputs_pending,
            output_times: Vec::new(),
            output_done_at: None,
            stalled: false,
            aborted: None,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            pool,
        }
    }

    /// Attach a specific worker pool for morsel-parallel batches (the
    /// mediator attaches one shared pool across all sessions). Without this,
    /// an engine whose config asks for `workers > 1` uses the driver's pool
    /// or, failing that, [`WorkerPool::global`].
    pub fn with_exec_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Report `ev` to the observer stack.
    #[inline]
    pub(crate) fn emit(&mut self, at: SimTime, ev: EngineEvent<'_>) {
        self.obs.on_event(at, &ev);
    }

    /// Execute to completion, panicking on unrecoverable scheduling errors
    /// (deadlock, unresolvable memory overflow). Use [`Engine::try_run`] to
    /// observe those as errors instead.
    pub fn run(self) -> RunMetrics {
        match self.try_run() {
            Ok(m) => m,
            Err(e) => panic!("query execution aborted: {e}"),
        }
    }

    /// Execute to completion and report metrics, or the abort reason.
    pub fn try_run(self) -> Result<RunMetrics, RunError> {
        self.try_run_traced().map(|(m, _)| m)
    }

    /// Like [`Engine::try_run`], also returning the execution trace (empty
    /// unless the workload's config enabled tracing).
    pub fn try_run_traced(mut self) -> Result<(RunMetrics, dqs_sim::Trace), RunError> {
        let start = self.driver.now();
        let (arrivals, start_instr) = self.world.cm.start(start);
        if start_instr > 0 {
            let t = self.world.params.instr_time(start_instr);
            self.world.cpu.acquire(start, t);
        }
        for (rel, at) in arrivals {
            self.driver.schedule(at, Signal::Arrival(rel));
        }
        self.replan(Interrupt::Start);
        self.try_dispatch();

        while self.output_done_at.is_none() && self.aborted.is_none() {
            let Some((t, ev)) = self.driver.next() else {
                self.aborted = Some(RunError::Deadlock {
                    sp: self.sp.clone(),
                });
                break;
            };
            match ev {
                Signal::Arrival(rel) => self.on_arrival(rel, t),
                Signal::BatchDone => self.on_batch_done(),
                Signal::TempReady => {
                    if self.inflight.is_none() {
                        self.try_dispatch();
                    }
                }
                Signal::Timeout(gen) => self.on_timeout(gen),
                Signal::SourceFault(rel) => {
                    let error = self.driver.take_fault().map(|(_, e)| e).unwrap_or_else(|| {
                        dqs_source::SourceError::Io {
                            detail: "source fault with no detail".into(),
                        }
                    });
                    self.aborted = Some(RunError::Wrapper { rel, error });
                }
                Signal::ReplicaEvent(_) => match self.driver.take_replica_event() {
                    Some(dqs_source::Notice::ReplicaPinned { rel, endpoint }) => {
                        self.emit(
                            t,
                            EngineEvent::ReplicaPinned {
                                rel,
                                endpoint: &endpoint,
                            },
                        );
                    }
                    Some(dqs_source::Notice::Failover {
                        rel,
                        from,
                        to,
                        resume_from,
                    }) => {
                        self.emit(
                            t,
                            EngineEvent::Failover {
                                rel,
                                from: &from,
                                to: &to,
                                resume_from,
                            },
                        );
                    }
                    Some(dqs_source::Notice::ReplicaDegraded {
                        rel,
                        endpoint,
                        error,
                    }) => {
                        self.emit(
                            t,
                            EngineEvent::ReplicaDegraded {
                                rel,
                                endpoint: &endpoint,
                                error: &error,
                            },
                        );
                    }
                    // Arrival/Fault never ride this signal; a drained
                    // stash is a stale duplicate — ignore.
                    _ => {}
                },
            }
            if self.driver.fired() > MAX_EVENTS {
                self.aborted = Some(RunError::EventLimit { limit: MAX_EVENTS });
            }
        }
        self.finish_metrics()
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, rel: RelId, now: SimTime) {
        let out = self.world.cm.on_arrival(rel, now);
        if out.cpu_instr > 0 {
            let t = self.world.params.instr_time(out.cpu_instr);
            self.world.cpu.acquire(now, t);
        }
        if let Some(at) = out.next_arrival {
            self.driver.schedule(at, Signal::Arrival(rel));
        }
        if out.rate_change {
            self.emit(now, EngineEvent::InterruptRaised(Interrupt::RateChange));
            self.note_replan(Interrupt::RateChange);
        }
        self.emit(
            now,
            EngineEvent::Arrival {
                rel,
                finished: out.finished,
            },
        );
        if self.inflight.is_none() {
            self.try_dispatch();
        }
    }

    fn on_batch_done(&mut self) {
        let inf = self.inflight.take().expect("BatchDone without inflight");
        let now = self.driver.now();
        // Keep every temp scan's asynchronous read-ahead window warm while
        // the CPU is busy elsewhere (§4.4: CF I/O overlaps CPU) — this is
        // what lets a complement fragment start from resident pages instead
        // of a cold disk once its blocking inputs complete.
        self.arm_all_readahead();
        self.emit(
            now,
            EngineEvent::BatchDone {
                frag: inf.frag,
                output: inf.output,
            },
        );
        self.maybe_finalize(inf.frag);
        if self.output_done_at.is_some() {
            return;
        }
        if let Some(why) = self.pending_replan.take() {
            self.replan(why);
        }
        self.try_dispatch();
    }

    fn finish_metrics(mut self) -> Result<(RunMetrics, dqs_sim::Trace), RunError> {
        if let Some(reason) = self.aborted.take() {
            let at = self.driver.now();
            self.emit(at, EngineEvent::Aborted { reason: &reason });
            return Err(reason);
        }
        let trace = self
            .obs
            .text
            .take()
            .map(TextTrace::into_trace)
            .unwrap_or_default();
        let end = self.output_done_at.unwrap_or(self.driver.now());
        self.obs.metrics.acc.stall_end(end);
        let mut m = self.obs.metrics.acc.m;
        m.strategy = self.policy.name();
        m.seed = self.cfg.seed;
        m.response_time = end.saturating_since(SimTime::ZERO);
        m.cpu_busy = self.world.cpu.busy_time();
        m.disk_busy = self.world.disk.busy_time();
        m.pages_written = self.world.disk.pages_written();
        m.pages_read = self.world.disk.pages_read();
        m.seeks = self.world.disk.seeks();
        m.memory_high_water = self.world.memory.high_water();
        m.events = self.driver.fired();
        m.query_responses = {
            let mut v: Vec<(u32, dqs_sim::SimDuration)> = self
                .output_times
                .iter()
                .map(|&(q, t)| (q, t.saturating_since(SimTime::ZERO)))
                .collect();
            v.sort();
            v
        };
        Ok((m, trace))
    }
}

/// Convenience: build and run `workload` under `policy`.
pub fn run_workload<P: Policy>(workload: &Workload, policy: P) -> RunMetrics {
    Engine::new(workload, policy).run()
}

/// Like [`run_workload`], reporting engine events to `observer` as the run
/// progresses.
pub fn run_workload_observed<P: Policy, O: EngineObserver>(
    workload: &Workload,
    policy: P,
    observer: O,
) -> RunMetrics {
    Engine::with_observer(workload, policy, observer).run()
}

/// Run `workload` on the wall clock: wrappers are real threads delivering
/// tuples through bounded channels, timeouts are real deadlines.
///
/// Unlike simulation this is not deterministic wall-clock-wise, but the
/// deterministic parts — wrapper payloads, join fan-out, output
/// cardinality — match the simulated run for the same seed.
pub fn run_workload_realtime<P: Policy>(
    workload: &Workload,
    policy: P,
) -> Result<RunMetrics, RunError> {
    run_workload_realtime_observed(workload, policy, NullObserver)
}

/// Like [`run_workload_realtime`], reporting engine events to `observer`.
pub fn run_workload_realtime_observed<P: Policy, O: EngineObserver>(
    workload: &Workload,
    policy: P,
    observer: O,
) -> Result<RunMetrics, RunError> {
    Engine::with_driver(workload, policy, observer, RealTimeDriver::new()).try_run()
}
