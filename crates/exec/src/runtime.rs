//! The engine runtime: construction, the event loop, and run finalization.
//!
//! [`Engine`] is split across four modules, each an `impl` extension of the
//! same struct:
//!
//! * here — the simulation event loop and the arrival/batch-done handlers;
//! * [`crate::dqp`] — fragment lifecycle and batch processing (§3.2);
//! * [`crate::mem`] — hash-table memory accounting (§4.2);
//! * [`crate::replan`] — planning phases and interrupt handling (§3.1).
//!
//! The engine is strategy-agnostic: SEQ, MA and DSE are [`Policy`]s that
//! differ only in the scheduling plans they return (§5.1.2: "Since the
//! different strategies use the same lower-level code, the performance
//! difference can only stem from the execution strategies").
//!
//! Everything runs on the simulated clock: batch CPU time and message
//! receive costs queue on the single mediator CPU, materialization and temp
//! scans queue on the single disk. Every state transition is reported as a
//! structured [`EngineEvent`] to the observer stack (see [`crate::observe`]).

use std::collections::HashMap;

use dqs_plan::AnnotatedPlan;
use dqs_relop::{HtId, RelId};
use dqs_sim::{EventId, EventQueue, SimTime};
use dqs_storage::ReservationId;

use crate::frag::{FragId, FragTable};
use crate::metrics::RunMetrics;
use crate::observe::{EngineEvent, EngineObserver, NullObserver, Observers, TextTrace};
use crate::policy::{Interrupt, Policy};
use crate::workload::{EngineConfig, Workload};
use crate::world::World;

/// Events driving the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// A tuple from this wrapper reaches the communication manager.
    Arrival(RelId),
    /// The in-flight DQP batch completes.
    BatchDone,
    /// A temp relation's prefetched pages became resident.
    TempReady,
    /// The stall timer expired (generation guards staleness).
    Timeout(u64),
}

/// The batch currently on the CPU.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Inflight {
    pub(crate) frag: FragId,
    /// Result tuples this batch delivered to the query output.
    pub(crate) output: u64,
}

/// Hard ceiling on simulation events — a runaway loop trips this rather
/// than hanging the benchmark harness.
const MAX_EVENTS: u64 = 500_000_000;

/// One query execution: world + fragments + policy + event loop.
///
/// The observer type parameter defaults to [`NullObserver`], so existing
/// `Engine::new(..)` call sites are unchanged; [`Engine::with_observer`]
/// installs a custom [`EngineObserver`] with static dispatch.
pub struct Engine<P: Policy, O: EngineObserver = NullObserver> {
    pub(crate) world: World,
    pub(crate) plan: AnnotatedPlan,
    pub(crate) frags: FragTable,
    pub(crate) policy: P,
    pub(crate) cfg: EngineConfig,
    pub(crate) events: EventQueue<Event>,
    /// Current scheduling plan, highest priority first.
    pub(crate) sp: Vec<FragId>,
    pub(crate) inflight: Option<Inflight>,
    pub(crate) pending_replan: Option<Interrupt>,
    pub(crate) timeout_ev: Option<EventId>,
    pub(crate) timeout_gen: u64,
    /// Memory reservation per built hash table: (grant, reserved bytes).
    pub(crate) ht_mem: HashMap<HtId, (ReservationId, u64)>,
    /// Fragment that last failed to reserve, with the free bytes then.
    pub(crate) last_overflow: Option<(FragId, u64)>,
    /// Output chains still running (multi-query forests have several).
    pub(crate) outputs_pending: usize,
    /// `(query, completion time)` per finished output chain.
    pub(crate) output_times: Vec<(u32, SimTime)>,
    /// Set once every output chain finished.
    pub(crate) output_done_at: Option<SimTime>,
    /// True while the DQP is stalled (dedups `Stalled` events).
    pub(crate) stalled: bool,
    pub(crate) aborted: Option<String>,
    pub(crate) obs: Observers<O>,
}

impl<P: Policy> Engine<P> {
    /// Build an engine for `workload` driven by `policy`.
    pub fn new(workload: &Workload, policy: P) -> Self {
        Engine::with_observer(workload, policy, NullObserver)
    }
}

impl<P: Policy, O: EngineObserver> Engine<P, O> {
    /// Build an engine that reports every [`EngineEvent`] to `observer`
    /// (in addition to the built-in metrics and optional text trace).
    pub fn with_observer(workload: &Workload, policy: P, observer: O) -> Self {
        let (world, plan) = World::build(workload);
        let frags = FragTable::from_plan(&plan);
        let outputs_pending = plan
            .chains
            .chains
            .iter()
            .filter(|c| matches!(c.sink, dqs_plan::ChainSink::Output))
            .count();
        Engine {
            world,
            plan,
            frags,
            policy,
            obs: Observers::new(workload.config.trace, observer),
            cfg: workload.config.clone(),
            events: EventQueue::new(),
            sp: Vec::new(),
            inflight: None,
            pending_replan: None,
            timeout_ev: None,
            timeout_gen: 0,
            ht_mem: HashMap::new(),
            last_overflow: None,
            outputs_pending,
            output_times: Vec::new(),
            output_done_at: None,
            stalled: false,
            aborted: None,
        }
    }

    /// Report `ev` to the observer stack.
    #[inline]
    pub(crate) fn emit(&mut self, at: SimTime, ev: EngineEvent<'_>) {
        self.obs.on_event(at, &ev);
    }

    /// Execute to completion, panicking on unrecoverable scheduling errors
    /// (deadlock, unresolvable memory overflow). Use [`Engine::try_run`] to
    /// observe those as errors instead.
    pub fn run(self) -> RunMetrics {
        match self.try_run() {
            Ok(m) => m,
            Err(e) => panic!("query execution aborted: {e}"),
        }
    }

    /// Execute to completion and report metrics, or the abort reason.
    pub fn try_run(self) -> Result<RunMetrics, String> {
        self.try_run_traced().map(|(m, _)| m)
    }

    /// Like [`Engine::try_run`], also returning the execution trace (empty
    /// unless the workload's config enabled tracing).
    pub fn try_run_traced(mut self) -> Result<(RunMetrics, dqs_sim::Trace), String> {
        let (arrivals, start_instr) = self.world.cm.start(SimTime::ZERO);
        if start_instr > 0 {
            let t = self.world.params.instr_time(start_instr);
            self.world.cpu.acquire(SimTime::ZERO, t);
        }
        for (rel, at) in arrivals {
            self.events.schedule(at, Event::Arrival(rel));
        }
        self.replan(Interrupt::Start);
        self.try_dispatch();

        while self.output_done_at.is_none() && self.aborted.is_none() {
            let Some((t, ev)) = self.events.pop() else {
                self.aborted = Some(format!(
                    "deadlock: no events pending, query incomplete (sp={:?})",
                    self.sp
                ));
                break;
            };
            match ev {
                Event::Arrival(rel) => self.on_arrival(rel, t),
                Event::BatchDone => self.on_batch_done(),
                Event::TempReady => {
                    if self.inflight.is_none() {
                        self.try_dispatch();
                    }
                }
                Event::Timeout(gen) => self.on_timeout(gen),
            }
            if self.events.fired() > MAX_EVENTS {
                self.aborted = Some("runaway simulation: event limit exceeded".into());
            }
        }
        self.finish_metrics()
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, rel: RelId, now: SimTime) {
        let out = self.world.cm.on_arrival(rel, now);
        if out.cpu_instr > 0 {
            let t = self.world.params.instr_time(out.cpu_instr);
            self.world.cpu.acquire(now, t);
        }
        if let Some(at) = out.next_arrival {
            self.events.schedule(at, Event::Arrival(rel));
        }
        if out.rate_change {
            self.emit(now, EngineEvent::InterruptRaised(Interrupt::RateChange));
            self.note_replan(Interrupt::RateChange);
        }
        self.emit(
            now,
            EngineEvent::Arrival {
                rel,
                finished: out.finished,
            },
        );
        if self.inflight.is_none() {
            self.try_dispatch();
        }
    }

    fn on_batch_done(&mut self) {
        let inf = self.inflight.take().expect("BatchDone without inflight");
        let now = self.events.now();
        // Keep every temp scan's asynchronous read-ahead window warm while
        // the CPU is busy elsewhere (§4.4: CF I/O overlaps CPU) — this is
        // what lets a complement fragment start from resident pages instead
        // of a cold disk once its blocking inputs complete.
        self.arm_all_readahead();
        self.emit(
            now,
            EngineEvent::BatchDone {
                frag: inf.frag,
                output: inf.output,
            },
        );
        self.maybe_finalize(inf.frag);
        if self.output_done_at.is_some() {
            return;
        }
        if let Some(why) = self.pending_replan.take() {
            self.replan(why);
        }
        self.try_dispatch();
    }

    fn finish_metrics(mut self) -> Result<(RunMetrics, dqs_sim::Trace), String> {
        if let Some(reason) = self.aborted {
            return Err(reason);
        }
        let trace = self
            .obs
            .text
            .take()
            .map(TextTrace::into_trace)
            .unwrap_or_default();
        let end = self.output_done_at.unwrap_or(self.events.now());
        self.obs.metrics.acc.stall_end(end);
        let mut m = self.obs.metrics.acc.m;
        m.strategy = self.policy.name();
        m.seed = self.cfg.seed;
        m.response_time = end.saturating_since(SimTime::ZERO);
        m.cpu_busy = self.world.cpu.busy_time();
        m.disk_busy = self.world.disk.busy_time();
        m.pages_written = self.world.disk.pages_written();
        m.pages_read = self.world.disk.pages_read();
        m.seeks = self.world.disk.seeks();
        m.memory_high_water = self.world.memory.high_water();
        m.events = self.events.fired();
        m.query_responses = {
            let mut v: Vec<(u32, dqs_sim::SimDuration)> = self
                .output_times
                .iter()
                .map(|&(q, t)| (q, t.saturating_since(SimTime::ZERO)))
                .collect();
            v.sort();
            v
        };
        Ok((m, trace))
    }
}

/// Convenience: build and run `workload` under `policy`.
pub fn run_workload<P: Policy>(workload: &Workload, policy: P) -> RunMetrics {
    Engine::new(workload, policy).run()
}

/// Like [`run_workload`], reporting engine events to `observer` as the run
/// progresses.
pub fn run_workload_observed<P: Policy, O: EngineObserver>(
    workload: &Workload,
    policy: P,
    observer: O,
) -> RunMetrics {
    Engine::with_observer(workload, policy, observer).run()
}
