//! JSON workload specifications.
//!
//! A spec names the remote relations (with their delivery behaviour), the
//! join graph, and the engine configuration; the classical DP optimizer
//! (§5.1.1) turns the join graph into a bushy plan. This is the external
//! interface a mediator deployment would feed the engine — see
//! `examples/specs/*.json`.
//!
//! Decoding is strict, mirroring serde's `deny_unknown_fields`: unknown or
//! duplicate keys, missing required fields and type mismatches are all
//! [`SpecError::Parse`] errors.

use crate::json::{self, Json};

use crate::workload::{EngineConfig, Workload};
use dqs_plan::{optimize, Catalog, JoinGraph};
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

/// One remote relation.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// Name used by the join specs.
    pub name: String,
    /// Cardinality estimate the mediator plans with.
    pub cardinality: u64,
    /// Tuples the wrapper really delivers (defaults to `cardinality`).
    pub actual_cardinality: Option<u64>,
    /// Delivery pacing (defaults to the platform `w_min`).
    pub delay: Option<DelaySpec>,
}

/// Delivery pacing, mirroring `dqs_source::DelayModel`.
#[derive(Debug, Clone)]
pub enum DelaySpec {
    /// Fixed inter-tuple gap in microseconds.
    ConstantUs(u64),
    /// Uniform gaps in `[0, 2·mean]`, mean in microseconds.
    UniformUs(u64),
    /// First tuple delayed, rest uniform.
    Initial {
        /// Delay before the first tuple, milliseconds.
        delay_ms: u64,
        /// Mean gap afterwards, microseconds.
        mean_us: u64,
    },
    /// Bursts separated by silence.
    Bursty {
        /// Tuples per burst.
        burst: u64,
        /// Gap within a burst, microseconds.
        within_us: u64,
        /// Silence between bursts, milliseconds.
        pause_ms: u64,
    },
}

impl DelaySpec {
    /// Convert to the engine's delay model.
    pub fn to_model(&self) -> DelayModel {
        match *self {
            DelaySpec::ConstantUs(us) => DelayModel::Constant {
                w: SimDuration::from_micros(us),
            },
            DelaySpec::UniformUs(us) => DelayModel::Uniform {
                mean: SimDuration::from_micros(us),
            },
            DelaySpec::Initial { delay_ms, mean_us } => DelayModel::Initial {
                initial: SimDuration::from_millis(delay_ms),
                mean: SimDuration::from_micros(mean_us),
            },
            DelaySpec::Bursty {
                burst,
                within_us,
                pause_ms,
            } => DelayModel::Bursty {
                burst,
                within: SimDuration::from_micros(within_us),
                pause: SimDuration::from_millis(pause_ms),
            },
        }
    }

    /// Parse a delay spec from JSON text (the externally-tagged form used
    /// inside workload files, e.g. `{"uniform_us": 100}`).
    pub fn from_json(text: &str) -> Result<DelaySpec, SpecError> {
        let v = json::parse(text).map_err(|e| SpecError::Parse(e.to_string()))?;
        decode_delay(&v)
    }
}

/// One join predicate between two named relations.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Left relation name.
    pub left: String,
    /// Right relation name.
    pub right: String,
    /// Classical join selectivity `|L ⋈ R| / (|L|·|R|)`.
    pub selectivity: f64,
}

/// Engine knobs (all optional).
#[derive(Debug, Clone, Default)]
pub struct ConfigSpec {
    /// Query memory budget in megabytes.
    pub memory_mb: Option<u64>,
    /// Communication queue capacity in tuples.
    pub queue_capacity: Option<usize>,
    /// DQP batch size in tuples.
    pub batch_size: Option<usize>,
    /// Stall timeout in milliseconds (0 disables).
    pub timeout_ms: Option<u64>,
    /// Master seed.
    pub seed: Option<u64>,
    /// Morsel worker threads (1 = serial execution).
    pub workers: Option<usize>,
    /// Morsel size in tuples.
    pub morsel_tuples: Option<usize>,
}

/// The whole workload file.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Remote relations.
    pub relations: Vec<RelationSpec>,
    /// Join graph (must connect all relations).
    pub joins: Vec<JoinSpec>,
    /// Engine configuration overrides.
    pub config: ConfigSpec,
}

/// Errors turning a spec into a workload.
#[derive(Debug)]
pub enum SpecError {
    /// JSON syntax / schema problem.
    Parse(String),
    /// A join references an unknown relation.
    UnknownRelation(String),
    /// Structural problems (optimizer rejected the join graph, ...).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec parse error: {e}"),
            SpecError::UnknownRelation(n) => write!(f, "join references unknown relation {n:?}"),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

// --- strict object decoding -------------------------------------------------

/// Tracks which keys of an object have been consumed so leftovers can be
/// rejected, matching serde's `deny_unknown_fields`.
struct Fields<'a> {
    what: &'static str,
    entries: &'a [(String, Json)],
    seen: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Json, what: &'static str) -> Result<Fields<'a>, SpecError> {
        let entries = v.as_object().ok_or_else(|| {
            SpecError::Parse(format!("{what}: expected object, got {}", v.kind()))
        })?;
        Ok(Fields {
            what,
            seen: vec![false; entries.len()],
            entries,
        })
    }

    fn take(&mut self, name: &str) -> Option<&'a Json> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == name {
                self.seen[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn require(&mut self, name: &str) -> Result<&'a Json, SpecError> {
        self.take(name)
            .ok_or_else(|| SpecError::Parse(format!("{}: missing field {name:?}", self.what)))
    }

    fn deny_unknown(self) -> Result<(), SpecError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.seen[i] {
                return Err(SpecError::Parse(format!(
                    "{}: unknown field {k:?}",
                    self.what
                )));
            }
        }
        Ok(())
    }
}

fn decode_string(v: &Json, what: &str) -> Result<String, SpecError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| SpecError::Parse(format!("{what}: expected string, got {}", v.kind())))
}

fn decode_u64(v: &Json, what: &str) -> Result<u64, SpecError> {
    v.as_u64().ok_or_else(|| {
        SpecError::Parse(format!(
            "{what}: expected non-negative integer, got {}",
            v.kind()
        ))
    })
}

fn decode_f64(v: &Json, what: &str) -> Result<f64, SpecError> {
    v.as_f64()
        .ok_or_else(|| SpecError::Parse(format!("{what}: expected number, got {}", v.kind())))
}

fn decode_delay(v: &Json) -> Result<DelaySpec, SpecError> {
    let entries = v
        .as_object()
        .ok_or_else(|| SpecError::Parse(format!("delay: expected object, got {}", v.kind())))?;
    let [(tag, body)] = entries else {
        return Err(SpecError::Parse(
            "delay: expected exactly one variant key".into(),
        ));
    };
    match tag.as_str() {
        "constant_us" => Ok(DelaySpec::ConstantUs(decode_u64(
            body,
            "delay.constant_us",
        )?)),
        "uniform_us" => Ok(DelaySpec::UniformUs(decode_u64(body, "delay.uniform_us")?)),
        "initial" => {
            let mut f = Fields::new(body, "delay.initial")?;
            let spec = DelaySpec::Initial {
                delay_ms: decode_u64(f.require("delay_ms")?, "delay.initial.delay_ms")?,
                mean_us: decode_u64(f.require("mean_us")?, "delay.initial.mean_us")?,
            };
            f.deny_unknown()?;
            Ok(spec)
        }
        "bursty" => {
            let mut f = Fields::new(body, "delay.bursty")?;
            let spec = DelaySpec::Bursty {
                burst: decode_u64(f.require("burst")?, "delay.bursty.burst")?,
                within_us: decode_u64(f.require("within_us")?, "delay.bursty.within_us")?,
                pause_ms: decode_u64(f.require("pause_ms")?, "delay.bursty.pause_ms")?,
            };
            f.deny_unknown()?;
            Ok(spec)
        }
        other => Err(SpecError::Parse(format!(
            "delay: unknown variant {other:?}"
        ))),
    }
}

fn decode_relation(v: &Json) -> Result<RelationSpec, SpecError> {
    let mut f = Fields::new(v, "relation")?;
    let spec = RelationSpec {
        name: decode_string(f.require("name")?, "relation.name")?,
        cardinality: decode_u64(f.require("cardinality")?, "relation.cardinality")?,
        actual_cardinality: f
            .take("actual_cardinality")
            .map(|v| decode_u64(v, "relation.actual_cardinality"))
            .transpose()?,
        delay: f.take("delay").map(decode_delay).transpose()?,
    };
    f.deny_unknown()?;
    Ok(spec)
}

fn decode_join(v: &Json) -> Result<JoinSpec, SpecError> {
    let mut f = Fields::new(v, "join")?;
    let spec = JoinSpec {
        left: decode_string(f.require("left")?, "join.left")?,
        right: decode_string(f.require("right")?, "join.right")?,
        selectivity: decode_f64(f.require("selectivity")?, "join.selectivity")?,
    };
    f.deny_unknown()?;
    Ok(spec)
}

fn decode_config(v: &Json) -> Result<ConfigSpec, SpecError> {
    let mut f = Fields::new(v, "config")?;
    let spec = ConfigSpec {
        memory_mb: f
            .take("memory_mb")
            .map(|v| decode_u64(v, "config.memory_mb"))
            .transpose()?,
        queue_capacity: f
            .take("queue_capacity")
            .map(|v| decode_u64(v, "config.queue_capacity").map(|n| n as usize))
            .transpose()?,
        batch_size: f
            .take("batch_size")
            .map(|v| decode_u64(v, "config.batch_size").map(|n| n as usize))
            .transpose()?,
        timeout_ms: f
            .take("timeout_ms")
            .map(|v| decode_u64(v, "config.timeout_ms"))
            .transpose()?,
        seed: f
            .take("seed")
            .map(|v| decode_u64(v, "config.seed"))
            .transpose()?,
        workers: f
            .take("workers")
            .map(|v| decode_u64(v, "config.workers").map(|n| n as usize))
            .transpose()?,
        morsel_tuples: f
            .take("morsel_tuples")
            .map(|v| decode_u64(v, "config.morsel_tuples").map(|n| n as usize))
            .transpose()?,
    };
    f.deny_unknown()?;
    Ok(spec)
}

impl WorkloadSpec {
    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<WorkloadSpec, SpecError> {
        let v = json::parse(text).map_err(|e| SpecError::Parse(e.to_string()))?;
        let mut f = Fields::new(&v, "workload")?;
        let relations = f
            .require("relations")?
            .as_array()
            .ok_or_else(|| SpecError::Parse("workload.relations: expected array".into()))?
            .iter()
            .map(decode_relation)
            .collect::<Result<Vec<_>, _>>()?;
        let joins = f
            .require("joins")?
            .as_array()
            .ok_or_else(|| SpecError::Parse("workload.joins: expected array".into()))?
            .iter()
            .map(decode_join)
            .collect::<Result<Vec<_>, _>>()?;
        let config = f
            .take("config")
            .map(decode_config)
            .transpose()?
            .unwrap_or_default();
        f.deny_unknown()?;
        Ok(WorkloadSpec {
            relations,
            joins,
            config,
        })
    }

    /// Build the executable workload: catalog + DP-optimized plan + delays.
    pub fn into_workload(self) -> Result<Workload, SpecError> {
        if self.relations.len() < 2 {
            return Err(SpecError::Invalid("need at least two relations".into()));
        }
        let mut catalog = Catalog::new();
        let mut ids = std::collections::HashMap::new();
        for r in &self.relations {
            if ids.contains_key(r.name.as_str()) {
                return Err(SpecError::Invalid(format!(
                    "duplicate relation {:?}",
                    r.name
                )));
            }
            let id = catalog.add(r.name.clone(), r.cardinality);
            ids.insert(r.name.as_str(), id);
        }
        let mut graph = JoinGraph::new();
        for j in &self.joins {
            let l = *ids
                .get(j.left.as_str())
                .ok_or_else(|| SpecError::UnknownRelation(j.left.clone()))?;
            let r = *ids
                .get(j.right.as_str())
                .ok_or_else(|| SpecError::UnknownRelation(j.right.clone()))?;
            if l == r {
                return Err(SpecError::Invalid(format!("self-join on {:?}", j.left)));
            }
            if j.selectivity <= 0.0 || j.selectivity.is_nan() || !j.selectivity.is_finite() {
                return Err(SpecError::Invalid(format!(
                    "selectivity {} out of range",
                    j.selectivity
                )));
            }
            graph.join(l, r, j.selectivity);
        }
        let qep = optimize(&catalog, &graph).map_err(|e| SpecError::Invalid(e.to_string()))?;

        let mut workload = Workload::new(catalog, qep);
        for r in &self.relations {
            let id = ids[r.name.as_str()];
            if let Some(d) = &r.delay {
                workload = workload.with_delay(id, d.to_model());
            }
            if let Some(n) = r.actual_cardinality {
                workload = workload.with_actual_cardinality(id, n);
            }
        }
        let c = &self.config;
        let cfg: &mut EngineConfig = &mut workload.config;
        if let Some(mb) = c.memory_mb {
            cfg.memory_bytes = mb * 1024 * 1024;
        }
        if let Some(q) = c.queue_capacity {
            cfg.queue_capacity = q;
        }
        if let Some(b) = c.batch_size {
            cfg.batch_size = b;
            cfg.queue_capacity = cfg.queue_capacity.max(b);
        }
        if let Some(ms) = c.timeout_ms {
            cfg.timeout = SimDuration::from_millis(ms);
        }
        if let Some(s) = c.seed {
            cfg.seed = s;
        }
        if let Some(w) = c.workers {
            cfg.workers = w.max(1);
        }
        if let Some(m) = c.morsel_tuples {
            if m == 0 {
                return Err(SpecError::Invalid("morsel_tuples must be positive".into()));
            }
            cfg.morsel_tuples = m;
        }
        Ok(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "relations": [
            {"name": "orders", "cardinality": 10000,
             "delay": {"uniform_us": 100}},
            {"name": "customers", "cardinality": 2000,
             "actual_cardinality": 1500}
        ],
        "joins": [
            {"left": "orders", "right": "customers", "selectivity": 0.0005}
        ],
        "config": {"memory_mb": 16, "seed": 7}
    }"#;

    #[test]
    fn good_spec_builds_a_workload() {
        let spec = WorkloadSpec::from_json(GOOD).unwrap();
        let w = spec.into_workload().unwrap();
        assert_eq!(w.catalog.len(), 2);
        assert_eq!(w.config.memory_bytes, 16 * 1024 * 1024);
        assert_eq!(w.config.seed, 7);
        assert_eq!(w.actual_cardinality(dqs_relop_rel(1)), 1_500);
        assert!(matches!(w.delays[0], DelayModel::Uniform { .. }));
    }

    fn dqs_relop_rel(i: u16) -> dqs_relop::RelId {
        dqs_relop::RelId(i)
    }

    #[test]
    fn unknown_relation_rejected() {
        let bad = GOOD.replace("\"right\": \"customers\"", "\"right\": \"nope\"");
        let err = WorkloadSpec::from_json(&bad)
            .unwrap()
            .into_workload()
            .unwrap_err();
        assert!(matches!(err, SpecError::UnknownRelation(_)));
    }

    #[test]
    fn unknown_fields_rejected() {
        let bad = GOOD.replace("\"memory_mb\": 16", "\"memory_mbb\": 16");
        assert!(matches!(
            WorkloadSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn missing_required_field_rejected() {
        let bad = GOOD.replace("\"cardinality\": 10000,", "");
        assert!(matches!(
            WorkloadSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn bad_selectivity_rejected() {
        let bad = GOOD.replace("0.0005", "-1.0");
        let err = WorkloadSpec::from_json(&bad)
            .unwrap()
            .into_workload()
            .unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let spec = r#"{
            "relations": [
                {"name": "a", "cardinality": 10},
                {"name": "b", "cardinality": 10},
                {"name": "c", "cardinality": 10}
            ],
            "joins": [
                {"left": "a", "right": "b", "selectivity": 0.1}
            ]
        }"#;
        let err = WorkloadSpec::from_json(spec)
            .unwrap()
            .into_workload()
            .unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)));
    }

    #[test]
    fn workers_config_round_trips() {
        let spec = GOOD.replace(
            r#""memory_mb": 16, "seed": 7"#,
            r#""memory_mb": 16, "seed": 7, "workers": 4, "morsel_tuples": 32"#,
        );
        let w = WorkloadSpec::from_json(&spec)
            .unwrap()
            .into_workload()
            .unwrap();
        assert_eq!(w.config.workers, 4);
        assert_eq!(w.config.morsel_tuples, 32);

        let zero = GOOD.replace(r#""seed": 7"#, r#""seed": 7, "morsel_tuples": 0"#);
        assert!(WorkloadSpec::from_json(&zero)
            .unwrap()
            .into_workload()
            .is_err());
    }

    #[test]
    fn all_delay_specs_convert() {
        for (json, want_constant) in [
            (r#"{"constant_us": 20}"#, true),
            (r#"{"uniform_us": 50}"#, false),
            (r#"{"initial": {"delay_ms": 100, "mean_us": 20}}"#, false),
            (
                r#"{"bursty": {"burst": 100, "within_us": 20, "pause_ms": 50}}"#,
                false,
            ),
        ] {
            let d = DelaySpec::from_json(json).unwrap();
            let m = d.to_model();
            assert_eq!(matches!(m, DelayModel::Constant { .. }), want_constant);
        }
    }
}
