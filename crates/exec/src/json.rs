//! A small, strict JSON parser.
//!
//! The build environment has no crates.io access, so workload specs are
//! parsed with this hand-written recursive-descent parser instead of
//! `serde_json`. It accepts exactly RFC 8259 documents (no comments, no
//! trailing commas, no NaN/Infinity) and reports byte offsets on errors.
//!
//! Numbers are held as `f64`; integer accessors reject values that cannot
//! be represented exactly (magnitude above 2^53 or fractional), which is
//! far beyond anything a workload spec needs.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs on integers).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys rejected at
    /// parse time.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Human-readable name of this value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value if this is a number exactly representing a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Number(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= MAX_EXACT => Some(*v as u64),
            _ => None,
        }
    }
}

/// A syntax error with the byte offset where it was detected.
#[derive(Debug, Clone)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_at,
                    message: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err(format!("invalid escape \\{}", esc as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so it's valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            self.digits();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let v: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Number(v))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

/// Escape `s` for embedding in JSON output (adds the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\n\u0041"}"#)
            .unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].1.as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(fields[2].1.as_str(), Some("x\nA"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "01",
            "1 2",
            "nul",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "+1",
            "NaN",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integer_accessor_is_exact() {
        assert_eq!(parse("10000").unwrap().as_u64(), Some(10_000));
        assert_eq!(parse("0.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\u{1}";
        assert_eq!(parse(&escape(s)).unwrap().as_str(), Some(s));
    }
}
