//! Workload descriptions: everything a run is a pure function of.

use dqs_plan::{Catalog, Fig5, Qep};
use dqs_relop::RelId;
use dqs_sim::{SimDuration, SimParams};
use dqs_source::{DelayModel, DEFAULT_QUEUE_CAPACITY};

/// Engine tuning knobs, with the defaults every experiment starts from.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Platform parameters (Table 1).
    pub params: SimParams,
    /// Query memory budget in bytes (§3.3: fixed for the whole execution).
    pub memory_bytes: u64,
    /// Communication queue capacity in tuples (the window protocol's
    /// window, §2.1).
    pub queue_capacity: usize,
    /// Tuples the DQP processes per batch (§3.2; footnote 1 notes the batch
    /// size can vary — the ablation benches sweep it).
    pub batch_size: usize,
    /// Stall duration after which a `TimeOut` interruption is raised
    /// (§3.2).
    pub timeout: SimDuration,
    /// Relative drift of a wrapper's delivery-rate estimate from the
    /// scheduler's planning mark that raises `RateChange` (§3.2). `None`
    /// keeps the communication manager's default (0.5).
    pub rate_change_threshold: Option<f64>,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Record an execution trace.
    pub trace: bool,
    /// Intra-query parallelism degree: number of worker lanes an admitted
    /// batch may be morselized across. `1` (the default, and what every
    /// golden-fingerprint workload uses) keeps the serial batch path.
    pub workers: usize,
    /// Morsel granularity in source tuples. Batches at most this size (or
    /// chains with no operators) always run serially.
    pub morsel_tuples: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            params: SimParams::default(),
            memory_bytes: 32 * 1024 * 1024,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            batch_size: 128,
            timeout: SimDuration::from_secs(2),
            rate_change_threshold: None,
            seed: 42,
            trace: false,
            workers: 1,
            morsel_tuples: 64,
        }
    }
}

/// A complete executable workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Relation cardinality *estimates* — the mediator's (possibly wrong)
    /// knowledge, used for annotations, scheduling metrics and memory
    /// reservations.
    pub catalog: Catalog,
    /// The plan to execute.
    pub qep: Qep,
    /// Delay model per relation (indexed by `RelId`).
    pub delays: Vec<DelayModel>,
    /// Cardinalities the wrappers *actually* deliver, when they differ
    /// from the estimates (§1: "the sizes of intermediate results used to
    /// estimate the costs ... are likely to be inaccurate"). `None` means
    /// estimates are exact (the default, and the paper's §5 setting).
    pub actuals: Option<Vec<u64>>,
    /// Engine configuration.
    pub config: EngineConfig,
}

impl Workload {
    /// A workload over `catalog`/`qep` with every wrapper at the paper's
    /// `w_min` constant pace and default configuration.
    pub fn new(catalog: Catalog, qep: Qep) -> Self {
        let config = EngineConfig::default();
        let w_min = config.params.w_min();
        let delays = vec![DelayModel::Constant { w: w_min }; catalog.len()];
        Workload {
            catalog,
            qep,
            delays,
            actuals: None,
            config,
        }
    }

    /// The Figure 5 experiment workload with every wrapper at `w_min`.
    pub fn fig5() -> (Self, Fig5) {
        let f5 = Fig5::build();
        (Workload::new(f5.catalog.clone(), f5.qep.clone()), f5)
    }

    /// Replace the delay model of one relation.
    pub fn with_delay(mut self, rel: RelId, model: DelayModel) -> Self {
        self.delays[rel.0 as usize] = model;
        self
    }

    /// Replace every relation's delay model.
    pub fn with_all_delays(mut self, model: DelayModel) -> Self {
        for d in &mut self.delays {
            *d = model.clone();
        }
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Override the intra-query parallelism degree.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Make relation `rel` actually deliver `n` tuples while the catalog
    /// (and hence every scheduler estimate) still claims its old number.
    pub fn with_actual_cardinality(mut self, rel: RelId, n: u64) -> Self {
        let actuals = self
            .actuals
            .get_or_insert_with(|| self.catalog.iter().map(|(_, r)| r.cardinality).collect());
        actuals[rel.0 as usize] = n;
        self
    }

    /// The cardinality relation `rel` will really deliver.
    pub fn actual_cardinality(&self, rel: RelId) -> u64 {
        match &self.actuals {
            Some(a) => a[rel.0 as usize],
            None => self.catalog.cardinality(rel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_workload_defaults_to_w_min() {
        let (w, f5) = Workload::fig5();
        assert_eq!(w.delays.len(), 6);
        for d in &w.delays {
            assert_eq!(
                *d,
                DelayModel::Constant {
                    w: SimDuration::from_micros(20)
                }
            );
        }
        let slowed = w.with_delay(
            f5.rels.a,
            DelayModel::Uniform {
                mean: SimDuration::from_micros(100),
            },
        );
        assert!(matches!(
            slowed.delays[f5.rels.a.0 as usize],
            DelayModel::Uniform { .. }
        ));
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.batch_size > 0);
        assert!(
            c.queue_capacity >= c.batch_size,
            "window must cover a batch"
        );
        assert!(c.memory_bytes > 16 * 1024 * 1024);
    }
}
