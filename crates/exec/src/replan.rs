//! Planning phases and interrupt handling (the DQS side of the loop).
//!
//! §3.1: the DQS recomputes the scheduling plan at every interruption
//! event; the DQO, DQS and DQP interact synchronously — they never run
//! concurrently — so a replanning request raised mid-batch is deferred to
//! the batch boundary.

use crate::driver::Driver;
use crate::frag::FragStatus;
use crate::observe::{EngineEvent, EngineObserver};
use crate::policy::{Interrupt, PlanCtx, Policy};
use crate::runtime::Engine;

impl<P: Policy, O: EngineObserver, D: Driver> Engine<P, O, D> {
    /// Run a planning phase now: hand the fragment table, world and
    /// observer to the policy and install the scheduling plan it returns.
    pub(crate) fn replan(&mut self, why: Interrupt) {
        let now = self.driver.now();
        self.world.cm.mark_rates();
        let mut ctx = PlanCtx {
            now,
            plan: &self.plan,
            frags: &mut self.frags,
            world: &mut self.world,
            obs: &mut self.obs,
        };
        let sp = self.policy.plan(&mut ctx, why);
        for &f in &sp {
            debug_assert_eq!(
                self.frags.get(f).status,
                FragStatus::Active,
                "policy scheduled a dead fragment"
            );
        }
        self.emit(now, EngineEvent::PlanComputed { why, sp: &sp });
        self.sp = sp;
    }

    /// Request a planning phase; deferred to batch completion if the DQP is
    /// mid-batch (the DQS and DQP never run concurrently, §3.1).
    pub(crate) fn note_replan(&mut self, why: Interrupt) {
        if self.inflight.is_some() {
            self.pending_replan.get_or_insert(why);
        } else {
            self.replan(why);
        }
    }

    /// Stall-timer expiry: raise `TimeOut` unless the timer is stale.
    pub(crate) fn on_timeout(&mut self, gen: u64) {
        self.timeout_ev = None;
        if gen != self.timeout_gen || self.inflight.is_some() || self.output_done_at.is_some() {
            return;
        }
        let now = self.driver.now();
        self.emit(now, EngineEvent::InterruptRaised(Interrupt::Timeout));
        self.replan(Interrupt::Timeout);
        self.try_dispatch();
    }
}
