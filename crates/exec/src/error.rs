//! Typed run-abort reasons.
//!
//! A run that cannot make progress ends in a [`RunError`] instead of a
//! panic or an opaque string: the engine surfaces it both as the `Err` of
//! [`Engine::try_run`](crate::Engine::try_run) and as a final
//! [`EngineEvent::Aborted`](crate::EngineEvent::Aborted) on the observer
//! stack — so a stuck real-time run degrades into a diagnosable trace
//! rather than taking the process down.

use std::fmt;

use dqs_relop::{HtId, RelId};
use dqs_source::SourceError;

use crate::frag::FragId;

/// Why a query execution aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The driver ran out of events with output chains still pending —
    /// the scheduler wedged itself.
    Deadlock {
        /// The scheduling plan in force when events ran dry.
        sp: Vec<FragId>,
    },
    /// The event-count ceiling tripped — a runaway loop, not progress.
    EventLimit {
        /// The ceiling that was exceeded.
        limit: u64,
    },
    /// A fragment could not reserve hash-table memory and the policy's
    /// `MemoryOverflow` planning phase freed nothing (§4.2: the fragment
    /// is not M-schedulable and cannot be made so).
    MemoryUnresolvable {
        /// The fragment that failed to reserve.
        frag: FragId,
        /// The allocator's account of the failure.
        detail: String,
    },
    /// A hash table outgrew query memory mid-build; estimates were wrong
    /// in a way no planning phase can undo.
    MemoryGrowth {
        /// The hash table being built.
        ht: HtId,
        /// Its actual footprint in bytes.
        needed: u64,
        /// Query memory still free.
        free: u64,
    },
    /// A wrapper failed terminally mid-query (remote peer died, went
    /// silent past its read timeout, or broke the wire protocol); the
    /// relation's remaining tuples will never arrive.
    Wrapper {
        /// The failed wrapper's relation.
        rel: RelId,
        /// The transport-level failure.
        error: SourceError,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { sp } => {
                write!(
                    f,
                    "deadlock: no events pending, query incomplete (sp={sp:?})"
                )
            }
            RunError::EventLimit { limit } => {
                write!(
                    f,
                    "runaway simulation: event limit exceeded ({limit} events)"
                )
            }
            RunError::MemoryUnresolvable { frag, detail } => write!(
                f,
                "fragment {frag:?} is not M-schedulable and the policy \
                 could not resolve it: {detail}"
            ),
            RunError::MemoryGrowth { ht, needed, free } => write!(
                f,
                "hash table {ht:?} outgrew query memory mid-build \
                 ({needed} bytes needed, {free} free)"
            ),
            RunError::Wrapper { rel, error } => {
                write!(f, "wrapper for relation {} failed: {error}", rel.0)
            }
        }
    }
}

impl std::error::Error for RunError {}

/// A short machine-readable tag for each abort kind (used by the JSON
/// event sink).
impl RunError {
    /// Stable snake_case discriminant name.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Deadlock { .. } => "deadlock",
            RunError::EventLimit { .. } => "event_limit",
            RunError::MemoryUnresolvable { .. } => "memory_unresolvable",
            RunError::MemoryGrowth { .. } => "memory_growth",
            RunError::Wrapper { .. } => "wrapper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_diagnostic_substrings() {
        let d = RunError::Deadlock {
            sp: vec![FragId(1)],
        };
        assert!(d.to_string().contains("deadlock"));
        let l = RunError::EventLimit { limit: 10 };
        assert!(l.to_string().contains("runaway"));
        let m = RunError::MemoryUnresolvable {
            frag: FragId(2),
            detail: "out of memory".into(),
        };
        assert!(m.to_string().contains("M-schedulable"));
        let g = RunError::MemoryGrowth {
            ht: HtId(0),
            needed: 100,
            free: 10,
        };
        assert!(g.to_string().contains("outgrew"));
        assert_eq!(g.kind(), "memory_growth");
    }
}
