//! The sans-io driver layer.
//!
//! The scheduler core — event loop, DQP batch processing, planning phases
//! — programs against the [`Driver`] trait: a clock, a timer/deadline
//! facility, a stream of [`Signal`]s, and a factory for the tuple sources
//! the communication manager will drive. What "time" and "waiting" mean is
//! the driver's business:
//!
//! * [`SimDriver`] wraps the discrete-event [`EventQueue`]: time is
//!   virtual, a scheduled signal *is* the clock advancing, and runs are
//!   bit-identical to the pre-driver engine by construction (same wrapper
//!   seeding, same `(time, seq)` event ordering).
//! * [`RealTimeDriver`] reads a monotonic [`WallClock`], keeps deadlines
//!   in a [`TimerHeap`], and learns of tuple arrivals from the notify
//!   channel that [`ThreadedWrapper`] producer threads post to. Modeled
//!   CPU/disk completion times become real deadlines: the engine's cost
//!   model still decides *when* a batch is done, so scheduling dynamics
//!   (stalls, timeouts, rate estimation) carry over unchanged.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};

use dqs_relop::RelId;
use dqs_sim::clock::until;
use dqs_sim::{Clock, EventId, EventQueue, SimTime, TimerHeap, TimerId, WallClock};
use dqs_source::{BoxSource, Notice, SourceError, ThreadedWrapper};

use crate::workload::{EngineConfig, Workload};
use crate::world::sim_sources;

/// Events the driver delivers to the engine's loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// A tuple from this wrapper reaches the communication manager.
    Arrival(RelId),
    /// The in-flight DQP batch completes.
    BatchDone,
    /// A temp relation's prefetched pages became resident.
    TempReady,
    /// The stall timer expired (generation guards staleness).
    Timeout(u64),
    /// A source failed terminally (remote wrapper died, timed out, or
    /// broke protocol); the details wait in [`Driver::take_fault`].
    SourceFault(RelId),
    /// A replica-backed source pinned, failed over, or degraded an
    /// endpoint; the full notice waits in [`Driver::take_replica_event`].
    ReplicaEvent(RelId),
}

/// The substrate a scheduler run executes on: time, timers, and sources.
pub trait Driver {
    /// Handle to a scheduled signal, for cancellation.
    type Timer: Copy + std::fmt::Debug;

    /// Create the tuple sources for `workload` (called once, before the
    /// world is built).
    fn sources(&mut self, workload: &Workload) -> Vec<BoxSource>;

    /// Capacity of the communication-manager queues. Simulation enforces
    /// the window protocol here; real-time drivers move that backpressure
    /// into their transport and return an effectively unbounded capacity.
    fn queue_capacity(&self, cfg: &EngineConfig) -> usize;

    /// The current time.
    fn now(&self) -> SimTime;

    /// Schedule `signal` for time `at` (which a real-time driver may treat
    /// as already due if it lies in the past).
    fn schedule(&mut self, at: SimTime, signal: Signal) -> Self::Timer;

    /// Cancel a scheduled signal; `false` if it already fired.
    fn cancel(&mut self, timer: Self::Timer) -> bool;

    /// Deliver the next signal, advancing (or waiting for) time. `None`
    /// means no signal can ever arrive again.
    fn next(&mut self) -> Option<(SimTime, Signal)>;

    /// Signals delivered so far (the runaway-loop guard).
    fn fired(&self) -> u64;

    /// The failure behind the most recent [`Signal::SourceFault`], if any.
    /// Simulated drivers never fault.
    fn take_fault(&mut self) -> Option<(RelId, SourceError)> {
        None
    }

    /// The notice behind the most recent [`Signal::ReplicaEvent`], if any.
    /// Simulated drivers have no replicas.
    fn take_replica_event(&mut self) -> Option<Notice> {
        None
    }

    /// The worker pool morsel-parallel batches should execute on, when the
    /// driver brings its own (a mediator-owned [`RealTimeDriver`] shares one
    /// pool across every session). The default — and [`SimDriver`]'s
    /// behavior — is `None`: the engine then resolves
    /// [`crate::pool::WorkerPool::global`] on first use, and only if its
    /// config asks for `workers > 1` at all.
    fn exec_pool(&mut self) -> Option<std::sync::Arc<crate::pool::WorkerPool>> {
        None
    }
}

/// The discrete-event driver: virtual time from the [`EventQueue`].
#[derive(Debug, Default)]
pub struct SimDriver {
    events: EventQueue<Signal>,
}

impl SimDriver {
    /// A fresh driver at virtual time zero.
    pub fn new() -> SimDriver {
        SimDriver {
            events: EventQueue::new(),
        }
    }
}

impl Driver for SimDriver {
    type Timer = EventId;

    fn sources(&mut self, workload: &Workload) -> Vec<BoxSource> {
        sim_sources(workload)
    }

    fn queue_capacity(&self, cfg: &EngineConfig) -> usize {
        cfg.queue_capacity
    }

    fn now(&self) -> SimTime {
        self.events.now()
    }

    fn schedule(&mut self, at: SimTime, signal: Signal) -> EventId {
        self.events.schedule(at, signal)
    }

    fn cancel(&mut self, timer: EventId) -> bool {
        self.events.cancel(timer)
    }

    fn next(&mut self) -> Option<(SimTime, Signal)> {
        self.events.pop()
    }

    fn fired(&self) -> u64 {
        self.events.fired()
    }
}

/// The wall-clock driver: threaded sources, real sleeps, real deadlines.
#[derive(Debug)]
pub struct RealTimeDriver {
    clock: WallClock,
    timers: TimerHeap<Signal>,
    notify_rx: Receiver<Notice>,
    /// Held only until [`Driver::sources`] hands clones to the wrappers;
    /// dropping it afterwards lets `notify_rx` disconnect when every
    /// producer thread finishes.
    notify_tx: Option<Sender<Notice>>,
    /// Sources built ahead of the run (remote wrappers a mediator
    /// connected eagerly); [`Driver::sources`] returns these when present
    /// instead of spawning in-process threads.
    prebuilt: Option<Vec<BoxSource>>,
    /// The failure behind the last [`Signal::SourceFault`] delivered.
    fault: Option<(RelId, SourceError)>,
    /// The notice behind the last [`Signal::ReplicaEvent`] delivered.
    replica_note: Option<Notice>,
    /// Pool handed to the engine for morsel-parallel batches (shared across
    /// sessions when the mediator owns it).
    pool: Option<std::sync::Arc<crate::pool::WorkerPool>>,
    fired: u64,
}

impl RealTimeDriver {
    /// A driver whose time origin is this instant.
    pub fn new() -> RealTimeDriver {
        let (notify_tx, notify_rx) = channel();
        RealTimeDriver {
            clock: WallClock::new(),
            timers: TimerHeap::new(),
            notify_rx,
            notify_tx: Some(notify_tx),
            prebuilt: None,
            fault: None,
            replica_note: None,
            pool: None,
            fired: 0,
        }
    }

    /// Attach the worker pool this driver hands to its engine (see
    /// [`Driver::exec_pool`]).
    pub fn with_pool(mut self, pool: std::sync::Arc<crate::pool::WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// A driver whose sources are built by `connect` — which receives the
    /// driver's notify sender to hand to each source — instead of spawned
    /// in-process from the workload catalog. Connection errors surface
    /// here, before any run starts, so a mediator can reject the session
    /// rather than abort it.
    pub fn try_with_sources<E>(
        connect: impl FnOnce(&Sender<Notice>) -> Result<Vec<BoxSource>, E>,
    ) -> Result<RealTimeDriver, E> {
        let mut driver = RealTimeDriver::new();
        let notify = driver.notify_tx.as_ref().expect("fresh driver has sender");
        driver.prebuilt = Some(connect(notify)?);
        Ok(driver)
    }

    /// Turn a notice into the signal the engine loop sees, stashing fault
    /// details for [`Driver::take_fault`].
    fn signal_for(&mut self, notice: Notice) -> Signal {
        match notice {
            Notice::Arrival(rel) => Signal::Arrival(rel),
            Notice::Fault { rel, error } => {
                self.fault = Some((rel, error));
                Signal::SourceFault(rel)
            }
            replica @ (Notice::ReplicaPinned { .. }
            | Notice::Failover { .. }
            | Notice::ReplicaDegraded { .. }) => {
                let rel = replica.rel();
                self.replica_note = Some(replica);
                Signal::ReplicaEvent(rel)
            }
        }
    }
}

impl Default for RealTimeDriver {
    fn default() -> Self {
        RealTimeDriver::new()
    }
}

impl Driver for RealTimeDriver {
    type Timer = TimerId;

    fn sources(&mut self, workload: &Workload) -> Vec<BoxSource> {
        let notify = self
            .notify_tx
            .take()
            .expect("RealTimeDriver::sources called twice");
        if let Some(prebuilt) = self.prebuilt.take() {
            // Remote wrappers already hold their sender clones.
            return prebuilt;
        }
        let seeds = dqs_sim::SeedSplitter::new(workload.config.seed);
        workload
            .catalog
            .iter()
            .map(|(rel, spec)| {
                Box::new(ThreadedWrapper::new(
                    rel,
                    workload.actual_cardinality(rel),
                    workload.delays[rel.0 as usize].clone(),
                    seeds.stream(&format!("wrapper:{}", spec.name)),
                    workload.config.queue_capacity,
                    notify.clone(),
                )) as BoxSource
            })
            .collect()
        // `notify` drops here: only producer threads hold senders now.
    }

    fn queue_capacity(&self, _cfg: &EngineConfig) -> usize {
        // The window protocol lives in the wrappers' bounded data channels;
        // the CM queue must never overflow-panic on a burst of notifies.
        usize::MAX >> 1
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn schedule(&mut self, at: SimTime, signal: Signal) -> TimerId {
        self.timers.arm(at, signal)
    }

    fn cancel(&mut self, timer: TimerId) -> bool {
        self.timers.cancel(timer)
    }

    fn next(&mut self) -> Option<(SimTime, Signal)> {
        loop {
            let now = self.clock.now();
            if let Some((_, s)) = self.timers.pop_due(now) {
                self.fired += 1;
                return Some((now, s));
            }
            match self.timers.next_deadline() {
                Some(deadline) => {
                    // Wait for an arrival, but no longer than the deadline.
                    match self.notify_rx.recv_timeout(until(now, deadline)) {
                        Ok(notice) => {
                            self.fired += 1;
                            return Some((self.clock.now(), self.signal_for(notice)));
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            // All producers finished; sleep out the timer.
                            std::thread::sleep(until(self.clock.now(), deadline));
                        }
                    }
                }
                None => {
                    // No deadlines: only an arrival can wake us.
                    match self.notify_rx.recv() {
                        Ok(notice) => {
                            self.fired += 1;
                            return Some((self.clock.now(), self.signal_for(notice)));
                        }
                        // Producers done and nothing scheduled: nothing can
                        // ever happen again.
                        Err(_) => return None,
                    }
                }
            }
        }
    }

    fn fired(&self) -> u64 {
        self.fired
    }

    fn take_fault(&mut self) -> Option<(RelId, SourceError)> {
        self.fault.take()
    }

    fn take_replica_event(&mut self) -> Option<Notice> {
        self.replica_note.take()
    }

    fn exec_pool(&mut self) -> Option<std::sync::Arc<crate::pool::WorkerPool>> {
        self.pool.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_driver_delivers_in_time_order() {
        let mut d = SimDriver::new();
        d.schedule(SimTime::from_nanos(30), Signal::BatchDone);
        d.schedule(SimTime::from_nanos(10), Signal::TempReady);
        assert_eq!(d.next(), Some((SimTime::from_nanos(10), Signal::TempReady)));
        assert_eq!(d.now(), SimTime::from_nanos(10));
        assert_eq!(d.next(), Some((SimTime::from_nanos(30), Signal::BatchDone)));
        assert_eq!(d.next(), None);
        assert_eq!(d.fired(), 2);
    }

    #[test]
    fn sim_driver_cancellation() {
        let mut d = SimDriver::new();
        let t = d.schedule(SimTime::from_nanos(5), Signal::Timeout(1));
        assert!(d.cancel(t));
        assert_eq!(d.next(), None);
    }

    #[test]
    fn real_time_driver_fires_deadlines_without_sources() {
        let mut d = RealTimeDriver::new();
        d.schedule(d.now(), Signal::BatchDone);
        let (at, s) = d.next().expect("due timer fires");
        assert_eq!(s, Signal::BatchDone);
        assert!(at >= SimTime::ZERO);
        assert_eq!(d.fired(), 1);
    }

    #[test]
    fn real_time_driver_times_out_into_timer() {
        let mut d = RealTimeDriver::new();
        // Keep a sender alive so the channel stays connected (as wrappers
        // would); the timer must still fire at its deadline.
        let _tx = d.notify_tx.clone();
        d.schedule(
            d.now() + dqs_sim::SimDuration::from_micros(200),
            Signal::Timeout(7),
        );
        let (_, s) = d.next().expect("deadline fires despite no arrivals");
        assert_eq!(s, Signal::Timeout(7));
    }

    #[test]
    fn real_time_driver_returns_none_when_nothing_can_happen() {
        let mut d = RealTimeDriver::new();
        d.notify_tx = None; // as after sources() + all producers exiting
        assert_eq!(d.next(), None);
    }

    #[test]
    fn fault_notice_becomes_source_fault_signal() {
        let mut d = RealTimeDriver::new();
        let tx = d.notify_tx.clone().unwrap();
        tx.send(Notice::Fault {
            rel: RelId(4),
            error: SourceError::Timeout { millis: 50 },
        })
        .unwrap();
        let (_, s) = d.next().expect("fault delivered");
        assert_eq!(s, Signal::SourceFault(RelId(4)));
        let (rel, err) = d.take_fault().expect("details stashed");
        assert_eq!(rel, RelId(4));
        assert_eq!(err.kind(), "timeout");
        assert!(d.take_fault().is_none(), "take_fault drains");
    }

    #[test]
    fn replica_notices_become_replica_event_signals() {
        let mut d = RealTimeDriver::new();
        let tx = d.notify_tx.clone().unwrap();
        tx.send(Notice::Failover {
            rel: RelId(2),
            from: "a:1".into(),
            to: "b:2".into(),
            resume_from: 512,
        })
        .unwrap();
        let (_, s) = d.next().expect("event delivered");
        assert_eq!(s, Signal::ReplicaEvent(RelId(2)));
        match d.take_replica_event().expect("notice stashed") {
            Notice::Failover {
                rel, resume_from, ..
            } => {
                assert_eq!(rel, RelId(2));
                assert_eq!(resume_from, 512);
            }
            other => panic!("wrong notice: {other:?}"),
        }
        assert!(d.take_replica_event().is_none(), "take drains");
    }
}
