//! Hash-table memory accounting (§4.2).
//!
//! Every build-side fragment reserves its estimated hash-table footprint
//! before its first batch; builds that outgrow the estimate grow the
//! reservation mid-run; reservations are released when the fragment that
//! probed the table finishes. A failed reservation raises the
//! `MemoryOverflow` interruption so the policy can split or reorder
//! (§4.2); a failed mid-build growth is unrecoverable and aborts the run.

use dqs_relop::HtId;
use dqs_sim::SimTime;

use crate::driver::Driver;
use crate::error::RunError;
use crate::frag::FragId;
use crate::observe::{EngineEvent, EngineObserver};
use crate::policy::{Interrupt, Policy};
use crate::runtime::Engine;

impl<P: Policy, O: EngineObserver, D: Driver> Engine<P, O, D> {
    /// Reserve `ht`'s estimated footprint before fragment `f` first builds
    /// into it. On failure, raises `MemoryOverflow` — unless the same
    /// fragment already failed with no memory freed since, in which case
    /// the policy cannot make progress and the run aborts.
    pub(crate) fn reserve_ht(&mut self, f: FragId, ht: HtId) -> bool {
        let now = self.driver.now();
        let pc = self.frags.get(f).pc;
        let bytes = self.plan.info(pc).mem_bytes;
        match self.world.memory.reserve(bytes, format!("ht:{}", ht.0)) {
            Ok(res) => {
                self.ht_mem.insert(ht, (res, bytes));
                self.last_overflow = None;
                self.emit(now, EngineEvent::MemoryGranted { ht, bytes });
                true
            }
            Err(e) => {
                self.emit(
                    now,
                    EngineEvent::MemoryDenied {
                        frag: f,
                        needed: bytes,
                        free: e.free,
                    },
                );
                if self.last_overflow == Some((f, e.free)) {
                    self.aborted = Some(RunError::MemoryUnresolvable {
                        frag: f,
                        detail: e.to_string(),
                    });
                    return false;
                }
                self.last_overflow = Some((f, e.free));
                self.note_replan(Interrupt::MemoryOverflow {
                    frag: f,
                    needed: bytes,
                });
                false
            }
        }
    }

    /// Grow `ht`'s reservation if the build outgrew its estimate. Sets the
    /// abort reason (and returns) when query memory cannot cover it.
    pub(crate) fn grow_ht_if_needed(&mut self, f: FragId, ht: HtId, now: SimTime) {
        let fp = self
            .world
            .arena
            .get(ht)
            .footprint_bytes(self.world.params.tuple_bytes);
        let Some(&(res, reserved)) = self.ht_mem.get(&ht) else {
            return;
        };
        if fp <= reserved {
            return;
        }
        let extra = fp - reserved;
        if self.world.memory.grow(res, extra).is_err() {
            let free = self.world.memory.free();
            self.emit(
                now,
                EngineEvent::MemoryDenied {
                    frag: f,
                    needed: extra,
                    free,
                },
            );
            self.aborted = Some(RunError::MemoryGrowth {
                ht,
                needed: fp,
                free,
            });
            return;
        }
        self.ht_mem.insert(ht, (res, fp));
        self.emit(now, EngineEvent::MemoryGranted { ht, bytes: extra });
    }

    /// Reserve scratch-slab memory for one morsel-parallel batch: the input
    /// copies handed to the workers plus the estimated per-morsel output
    /// partitions. Unlike [`Engine::reserve_ht`], a refusal here raises no
    /// `MemoryOverflow` — the batch silently runs serially instead (serial
    /// execution needs no slabs), so memory pressure degrades parallelism
    /// without perturbing the planning sequence.
    pub(crate) fn reserve_morsel_slab(&mut self, bytes: u64) -> Option<dqs_storage::ReservationId> {
        self.world.memory.reserve(bytes, "morsel-slabs").ok()
    }

    /// Drop the hash tables fragment `f` probed and release their memory —
    /// `f` was their sole consumer.
    pub(crate) fn release_probe_memory(&mut self, f: FragId) {
        for ht in self.frags.get(f).chain.probe_targets() {
            self.world.arena.discard(*ht);
            if let Some((res, _)) = self.ht_mem.remove(ht) {
                self.world.memory.release(res);
            }
        }
    }
}
