//! Fragment lifecycle and batch processing — the DQP proper.
//!
//! §3.2: "the task of the DQP is to interleave the execution of the query
//! fragments in order to maximize the processor utilization with respect to
//! the priorities defined in the scheduling plan. To do so, the DQP scans
//! the queue associated with the query fragment which has the highest
//! priority and processes a certain amount of tuples called a batch (if
//! any). If the queue does not contain a sufficient amount of tuples, the
//! DQP scans the second queue in the list and so on. After each batch
//! processing, the DQP returns to the highest priority queue."

use std::sync::Arc;

use dqs_relop::Tuple;
use dqs_sim::SimTime;

use crate::driver::{Driver, Signal};
use crate::frag::{FragId, FragSink, FragSource, FragStatus};
use crate::observe::{EngineEvent, EngineObserver};
use crate::policy::{Interrupt, Policy};
use crate::pool::{TaskCtx, WorkerPool};
use crate::runtime::{Engine, Inflight};

/// Modeled dispatch overhead of one morsel, in instructions: a small base
/// cost plus jitter drawn deterministically from the morsel's RNG stream
/// seed `(fragment seed, morsel index)` — reproducible by construction,
/// whatever the worker count or steal order.
fn morsel_overhead_instr(frag_seed: u64, index: u64) -> u64 {
    200 + crate::world::morsel_seed(frag_seed, index) % 101
}

impl<P: Policy, O: EngineObserver, D: Driver> Engine<P, O, D> {
    /// Scan the scheduling plan for the next runnable batch and start it;
    /// finalizes completed fragments and loops until a batch is on the CPU,
    /// the query finished, or nothing is runnable (stall).
    pub(crate) fn try_dispatch(&mut self) {
        loop {
            if self.inflight.is_some() || self.output_done_at.is_some() || self.aborted.is_some() {
                return;
            }
            // Finalize every fragment that is complete without further
            // processing (drained sources, zero-tuple relations, sealed and
            // consumed temps).
            let active: Vec<FragId> = self
                .frags
                .iter()
                .filter(|f| f.status == FragStatus::Active)
                .map(|f| f.id)
                .collect();
            let mut last_finalized = None;
            for f in active {
                self.normalize_source(f);
                if self.frag_complete_now(f) {
                    self.finalize(f);
                    last_finalized = Some(f);
                }
            }
            if let Some(f) = last_finalized {
                if self.output_done_at.is_some() {
                    return;
                }
                self.replan(Interrupt::EndOfQf(f));
                continue; // plan changed; rescan
            }

            // Pick the next batch. Pass 0 is the flow-control emergency
            // lane: a fragment whose wrapper the window protocol suspended
            // is losing retrieval bandwidth every instant its queue stays
            // full, so it is drained first whatever its priority. Pass 1
            // wants a full batch from the highest priority (§3.2's
            // "sufficient amount of tuples"); pass 2 takes anything.
            let batch = self.cfg.batch_size as u64;
            let mut picked = None;
            'pick: for pass in 0..3 {
                for i in 0..self.sp.len() {
                    let f = self.sp[i];
                    if self.frags.get(f).status != FragStatus::Active {
                        continue;
                    }
                    if !self.probes_complete(f) {
                        continue;
                    }
                    self.normalize_source(f);
                    let avail = self.available_input(f);
                    let enough = match pass {
                        0 => {
                            avail > 0
                                && matches!(self.frags.get(f).source, FragSource::Queue(rel)
                                    if self.world.cm.is_suspended(rel))
                        }
                        1 => avail >= batch || (avail > 0 && self.upstream_finished(f)),
                        _ => avail > 0,
                    };
                    if enough {
                        picked = Some(f);
                        break 'pick;
                    }
                }
            }
            match picked {
                Some(f) => {
                    if self.start_batch(f) {
                        return;
                    }
                    // Reservation failed: the policy replanned; rescan
                    // unless we are giving up.
                    continue;
                }
                None => {
                    // Nothing runnable: make sure pending temp reads are in
                    // flight — their completion is what will wake us.
                    let now = self.driver.now();
                    self.arm_all_readahead();
                    // Stall (§3.2): nothing schedulable has data.
                    if !self.stalled {
                        self.stalled = true;
                        self.emit(now, EngineEvent::Stalled);
                    }
                    if self.timeout_ev.is_none() && !self.cfg.timeout.is_zero() {
                        self.timeout_gen += 1;
                        let id = self
                            .driver
                            .schedule(now + self.cfg.timeout, Signal::Timeout(self.timeout_gen));
                        self.timeout_ev = Some(id);
                    }
                    return;
                }
            }
        }
    }

    /// Start one batch of `f`. Returns false if a memory reservation failed
    /// (a `MemoryOverflow` planning phase was run instead).
    pub(crate) fn start_batch(&mut self, f: FragId) -> bool {
        let now = self.driver.now();

        // Reserve hash-table memory before the fragment's first build.
        if let FragSink::Build(ht) = self.frags.get(f).sink {
            if !self.ht_mem.contains_key(&ht) && !self.reserve_ht(f, ht) {
                return false;
            }
        }

        self.stalled = false;
        if let Some(id) = self.timeout_ev.take() {
            self.driver.cancel(id);
        }

        // Pull the input batch into the reusable scratch buffer.
        let batch = self.cfg.batch_size;
        let source = self.frags.get(f).source;
        let mut input = std::mem::take(&mut self.in_buf);
        input.clear();
        let (read_wait, read_instr): (Option<SimTime>, u64) = match source {
            FragSource::Queue(rel) => {
                self.world.cm.consume_into(rel, batch, &mut input);
                if let Some(at) = self.world.cm.after_consume(rel, now) {
                    self.driver.schedule(at, Signal::Arrival(rel));
                }
                (None, 0)
            }
            FragSource::Temp { temp, cursor, .. } => {
                let world = &mut self.world;
                let (tuples, instr, wake) = world.temps[temp.0 as usize].read_available(
                    cursor,
                    batch as u64,
                    now,
                    &mut world.disk,
                );
                if let FragSource::Temp { ref mut cursor, .. } = self.frags.get_mut(f).source {
                    *cursor += tuples.len() as u64;
                }
                if let Some(at) = wake {
                    self.driver.schedule(at.max(now), Signal::TempReady);
                }
                self.emit(
                    now,
                    EngineEvent::TempRead {
                        temp,
                        tuples: tuples.len() as u64,
                    },
                );
                input.extend(tuples);
                // Reads are asynchronous (§4.4): the DQP only consumes
                // resident pages and never blocks on the device.
                (None, instr)
            }
        };
        assert!(!input.is_empty(), "dispatched a fragment without input");
        self.emit(
            now,
            EngineEvent::BatchStart {
                frag: f,
                tuples: input.len() as u64,
            },
        );

        {
            let frag = self.frags.get_mut(f);
            frag.started = true;
            frag.tuples_in += input.len() as u64;
        }
        let mut out = std::mem::take(&mut self.out_buf);
        // Chain work: morsel-parallel across the worker pool when configured
        // and worthwhile, serial otherwise. `chain_instr` is the modeled CPU
        // cost charged for the chain — the W-lane makespan on the parallel
        // path, the plain instruction count on the serial one. Either way
        // the *answer* is bit-identical; only modeled time differs.
        let chain_instr = match self.run_batch_morsels(f, &input, &mut out, now) {
            Some(makespan) => makespan,
            None => {
                let frag = self.frags.get_mut(f);
                frag.chain.run_batch_into(
                    &input,
                    &mut out,
                    &mut self.world.arena,
                    &self.world.params,
                )
            }
        };
        let mut instr = chain_instr + read_instr;
        let mut sink_wait: Option<SimTime> = None;
        let mut output = 0u64;

        match self.frags.get(f).sink {
            FragSink::Build(ht) => {
                self.grow_ht_if_needed(f, ht, now);
                if self.aborted.is_some() {
                    self.in_buf = input;
                    self.out_buf = out;
                    return true; // batch charged; abort surfaces next loop
                }
            }
            FragSink::Mat(temp) => {
                // The mat operator moves each tuple into the I/O buffer.
                instr += out.len() as u64 * self.world.params.instr_move_tuple;
                let world = &mut self.world;
                let charge = world.temps[temp.0 as usize].append_batch(&out, now, &mut world.disk);
                instr += charge.cpu_instr;
                self.emit(
                    now,
                    EngineEvent::TempWrite {
                        temp,
                        tuples: out.len() as u64,
                    },
                );
                if self.frags.get(f).sync_mat_io {
                    // Naive synchronous materialization (MA): the batch is
                    // not done until the page write lands.
                    if let Some(done) = charge.device_done {
                        sink_wait = Some(done);
                    }
                }
            }
            FragSink::Output => {
                output = out.len() as u64;
            }
        }
        self.in_buf = input;
        self.out_buf = out;

        let grant = self
            .world
            .cpu
            .acquire(now, self.world.params.instr_time(instr));
        let done_at = [read_wait, sink_wait]
            .into_iter()
            .flatten()
            .fold(grant.finish, SimTime::max);
        self.driver.schedule(done_at, Signal::BatchDone);
        self.inflight = Some(Inflight { frag: f, output });
        true
    }

    /// Run one admitted batch morsel-parallel across the worker pool.
    ///
    /// Returns the modeled chain cost to charge — the makespan of a greedy
    /// earliest-finish assignment of per-morsel costs onto `workers` lanes —
    /// with `out` holding the merged open-end survivors, or `None` when the
    /// batch should take the serial path instead: parallelism not configured,
    /// batch too small to split, nothing to do per tuple, or no memory for
    /// the per-worker scratch slabs (a *silent* fallback — see
    /// [`Engine::reserve_morsel_slab`]).
    ///
    /// Determinism: morsels are carved at fixed offsets, forked
    /// arithmetically from the master chain state, and merged in morsel-index
    /// order; the modeled makespan likewise assigns morsels to lanes in index
    /// order. Neither the answer nor the charged time depends on which
    /// physical worker ran a morsel or who stole what.
    pub(crate) fn run_batch_morsels(
        &mut self,
        f: FragId,
        input: &[Tuple],
        out: &mut Vec<Tuple>,
        now: SimTime,
    ) -> Option<u64> {
        let workers = self.cfg.workers;
        let morsel = self.cfg.morsel_tuples.max(1);
        if workers <= 1 || input.len() <= morsel {
            return None;
        }
        if self.frags.get(f).chain.spec().is_empty() {
            // A pass-through chain is a memcpy; splitting it buys nothing.
            return None;
        }

        // Account the workers' scratch slabs against the query's memory
        // grant: every morsel's input copy plus the estimated output
        // partitions exist concurrently until the merge.
        let est = dqs_relop::estimate_chain(self.frags.get(f).chain.spec(), &self.world.params);
        let est_out = (input.len() as f64 * est.fanout_total).ceil() as u64;
        let slab_bytes = self
            .world
            .params
            .bytes_for_tuples(input.len() as u64 + est_out);
        let slab = self.reserve_morsel_slab(slab_bytes)?;

        // Prefer the driver- or builder-attached pool; otherwise latch the
        // process-global one on first parallel batch.
        let pool = match &self.pool {
            Some(p) => Arc::clone(p),
            None => {
                let p = Arc::clone(WorkerPool::global());
                self.pool = Some(Arc::clone(&p));
                p
            }
        };

        let frag_seed = self.frags.get(f).seed;
        let stats = self.frags.get(f).chain.snapshot_stats(&self.world.arena);
        let params = self.world.params.clone();

        let mut tasks = Vec::with_capacity(input.len().div_ceil(morsel));
        for (i, chunk) in input.chunks(morsel).enumerate() {
            self.emit(
                now,
                EngineEvent::MorselDispatched {
                    frag: f,
                    index: i as u64,
                    tuples: chunk.len() as u64,
                },
            );
            let cursor = self
                .frags
                .get(f)
                .chain
                .fork_morsel((i * morsel) as u64, &stats);
            let chunk = chunk.to_vec();
            let stats = stats.clone();
            let params = params.clone();
            tasks.push(move |ctx: TaskCtx| {
                let mut cursor = cursor;
                let mut part = Vec::new();
                let instr = cursor.run_into(&chunk, &mut part, &stats, &params);
                (part, instr, ctx)
            });
        }
        let results = pool.execute(tasks);

        // Merge in morsel-index order: partitions into the build table (or
        // the open-end output buffer) and per-morsel costs onto the modeled
        // lanes. Greedy earliest-finish in a fixed order keeps the makespan
        // a pure function of the morsel costs.
        out.clear();
        let build = self.frags.get(f).chain.build_target();
        let mut lanes = vec![0u64; workers];
        for (i, (part, instr, ctx)) in results.into_iter().enumerate() {
            if ctx.stolen {
                self.emit(
                    now,
                    EngineEvent::MorselStolen {
                        frag: f,
                        index: i as u64,
                        worker: ctx.worker as u64,
                    },
                );
            }
            let lane = (0..workers).min_by_key(|&j| lanes[j]).expect("workers > 1");
            lanes[lane] += instr + morsel_overhead_instr(frag_seed, i as u64);
            match build {
                Some(ht) => self.world.arena.get_mut(ht).absorb_partition(&part),
                None => out.extend_from_slice(&part),
            }
        }

        // Fast-forward the master chain past the batch the morsels executed
        // on its behalf.
        let emitted = self
            .frags
            .get_mut(f)
            .chain
            .advance_source(input.len() as u64, &stats);
        debug_assert_eq!(
            emitted,
            if build.is_some() { 0 } else { out.len() as u64 },
            "arithmetic fast-forward disagrees with executed morsels"
        );

        self.world.memory.release(slab);
        Some(lanes.into_iter().max().unwrap_or(0))
    }

    // ------------------------------------------------------------------
    // Fragment state helpers
    // ------------------------------------------------------------------

    /// Issue asynchronous read-ahead for every active temp-sourced
    /// fragment, scheduling wake-ups for newly in-flight windows.
    pub(crate) fn arm_all_readahead(&mut self) {
        let now = self.driver.now();
        let temp_frags: Vec<FragId> = self
            .frags
            .iter()
            .filter(|fr| {
                fr.status == FragStatus::Active && matches!(fr.source, FragSource::Temp { .. })
            })
            .map(|fr| fr.id)
            .collect();
        for f in temp_frags {
            if let FragSource::Temp { temp, cursor, .. } = self.frags.get(f).source {
                let world = &mut self.world;
                let (instr, wake) =
                    world.temps[temp.0 as usize].arm_readahead(cursor, now, &mut world.disk);
                if instr > 0 {
                    let t = world.params.instr_time(instr);
                    world.cpu.acquire(now, t);
                }
                if let Some(at) = wake {
                    self.driver.schedule(at.max(now), Signal::TempReady);
                }
            }
        }
    }

    /// Swap a drained-temp source over to its live queue (MF cancelled
    /// hand-off). The retired MF's operators are prepended to the chain —
    /// with their live accumulator state — so tuples that now bypass the
    /// temp still see the same scan predicate with the same deterministic
    /// rounding.
    pub(crate) fn normalize_source(&mut self, f: FragId) {
        let frag = self.frags.get(f);
        if let FragSource::Temp {
            temp,
            cursor,
            then_queue: Some(rel),
        } = frag.source
        {
            let t = self.world.temp(temp);
            if t.is_sealed() && cursor >= t.len() {
                if let Some(mf) = self.frags.get_mut(f).handoff_from.take() {
                    let front = self.frags.take_chain(mf);
                    let back = self.frags.take_chain(f);
                    self.frags.get_mut(f).chain = dqs_relop::PhysChain::concat(front, back);
                }
                self.frags.get_mut(f).source = FragSource::Queue(rel);
            }
        }
    }

    pub(crate) fn available_input(&self, f: FragId) -> u64 {
        match self.frags.get(f).source {
            FragSource::Queue(rel) => self.world.cm.available(rel) as u64,
            FragSource::Temp { temp, cursor, .. } => {
                self.world.temp(temp).available(cursor, self.driver.now())
            }
        }
    }

    /// No more input will ever appear beyond what is currently available.
    pub(crate) fn upstream_finished(&self, f: FragId) -> bool {
        match self.frags.get(f).source {
            FragSource::Queue(rel) => self.world.cm.exhausted(rel),
            FragSource::Temp {
                temp, then_queue, ..
            } => then_queue.is_none() && self.world.temp(temp).is_sealed(),
        }
    }

    pub(crate) fn probes_complete(&self, f: FragId) -> bool {
        self.frags
            .get(f)
            .chain
            .probe_targets()
            .iter()
            .all(|&ht| self.world.arena.get(ht).is_complete())
    }

    pub(crate) fn frag_complete_now(&self, f: FragId) -> bool {
        let frag = self.frags.get(f);
        if frag.status != FragStatus::Active {
            return false;
        }
        match frag.source {
            FragSource::Queue(rel) => self.world.cm.drained(rel),
            FragSource::Temp {
                temp,
                cursor,
                then_queue,
            } => {
                let t = self.world.temp(temp);
                then_queue.is_none() && t.is_sealed() && cursor >= t.len()
            }
        }
    }

    /// Finalize `f` if it has become complete, raising `EndOfQF`.
    pub(crate) fn maybe_finalize(&mut self, f: FragId) {
        self.normalize_source(f);
        if self.frag_complete_now(f) {
            self.finalize(f);
            if self.output_done_at.is_none() {
                self.replan(Interrupt::EndOfQf(f));
            }
        }
    }

    pub(crate) fn finalize(&mut self, f: FragId) {
        let now = self.driver.now();
        self.frags.get_mut(f).status = FragStatus::Done;
        self.emit(now, EngineEvent::InterruptRaised(Interrupt::EndOfQf(f)));
        match self.frags.get(f).sink {
            FragSink::Build(ht) => {
                self.world.arena.get_mut(ht).complete();
            }
            FragSink::Mat(temp) => {
                let world = &mut self.world;
                let charge = world.temps[temp.0 as usize].seal(now, &mut world.disk);
                if charge.cpu_instr > 0 {
                    let t = world.params.instr_time(charge.cpu_instr);
                    world.cpu.acquire(now, t);
                }
            }
            FragSink::Output => {
                let query = self.plan.chains.chain(self.frags.get(f).pc).query;
                self.output_times.push((query, now));
                self.outputs_pending -= 1;
                if self.outputs_pending == 0 {
                    self.output_done_at = Some(now);
                }
            }
        }
        // This fragment was the sole consumer of the tables it probed:
        // drop their contents and release their memory.
        self.release_probe_memory(f);
    }
}
