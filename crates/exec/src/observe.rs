//! Structured engine observability.
//!
//! Every significant runtime transition — arrivals, batches, planning
//! phases, interruptions, degradations, memory decisions, temp I/O — is a
//! typed [`EngineEvent`] delivered to an [`EngineObserver`]. The engine
//! never formats strings on the hot path; rendering happens only inside
//! sinks that asked for it:
//!
//! * [`MetricsObserver`] — always on; folds events into
//!   [`RunMetrics`](crate::metrics::RunMetrics) counters.
//! * [`TextTrace`] — enabled by `EngineConfig::trace`; renders the classic
//!   human-readable trace ([`dqs_sim::Trace`]).
//! * [`JsonLinesSink`] — streams one JSON object per event to any writer
//!   (the CLI's `--trace-json`).
//! * Any user observer passed to
//!   [`Engine::with_observer`](crate::Engine::with_observer). The default
//!   [`NullObserver`] is a static no-op the optimizer erases.
//!
//! Policies emit through the same channel: [`PlanCtx`](crate::PlanCtx)
//! carries an observer handle, so a DQS degrading or cancelling fragments
//! produces the same typed record stream as the DQP itself.

use std::io::Write;

use dqs_plan::PcId;
use dqs_relop::{HtId, RelId};
use dqs_sim::{SimTime, Trace, TraceKind};

use crate::error::RunError;
use crate::frag::{FragId, TempId};
use crate::metrics::MetricsAcc;
use crate::policy::Interrupt;

/// One structured engine event. Borrows plan data (`sp`) instead of
/// cloning it, so constructing an event is allocation-free.
#[derive(Debug, Clone, Copy)]
pub enum EngineEvent<'a> {
    /// A tuple from wrapper `rel` reached the communication manager.
    Arrival {
        /// Sending wrapper.
        rel: RelId,
        /// True when this was the wrapper's last tuple.
        finished: bool,
    },
    /// The DQP dispatched a batch of `tuples` input tuples to `frag`.
    BatchStart {
        /// Fragment being executed.
        frag: FragId,
        /// Input tuples in the batch.
        tuples: u64,
    },
    /// The in-flight batch of `frag` completed.
    BatchDone {
        /// Fragment that ran.
        frag: FragId,
        /// Result tuples the batch delivered to the query output.
        output: u64,
    },
    /// A planning phase produced a new scheduling plan.
    PlanComputed {
        /// The interruption that triggered planning.
        why: Interrupt,
        /// The new scheduling plan, highest priority first.
        sp: &'a [FragId],
    },
    /// An interruption event was raised (§3.2).
    InterruptRaised(Interrupt),
    /// Chain `pc` was degraded (§4.4) into a materialization fragment and
    /// a complement fragment.
    Degraded {
        /// The degraded pipeline chain.
        pc: PcId,
        /// The new materialization fragment.
        mf: FragId,
        /// The new complement fragment.
        cf: FragId,
        /// Temp relation spooling the materialized tuples.
        temp: TempId,
    },
    /// Fragment `from` was split at an operator boundary (§4.2's
    /// memory-overflow technique).
    Split {
        /// The fragment that was split (now superseded).
        from: FragId,
        /// Head half (runs first, materializes).
        head: FragId,
        /// Tail half (consumes the temp).
        tail: FragId,
        /// The intermediate temp relation.
        temp: TempId,
    },
    /// A materialization fragment was cancelled early because its chain
    /// became schedulable; the complement takes over the live queue.
    MatCancelled {
        /// The retired materialization fragment.
        mf: FragId,
        /// The complement fragment inheriting the queue.
        cf: FragId,
    },
    /// Query memory was reserved (or grown) for a hash table.
    MemoryGranted {
        /// The hash table.
        ht: HtId,
        /// Bytes newly reserved.
        bytes: u64,
    },
    /// A memory reservation failed — a `MemoryOverflow` situation.
    MemoryDenied {
        /// The fragment that could not reserve.
        frag: FragId,
        /// Bytes it asked for.
        needed: u64,
        /// Bytes that were free.
        free: u64,
    },
    /// Tuples were appended to a temp relation.
    TempWrite {
        /// The temp relation.
        temp: TempId,
        /// Tuples appended.
        tuples: u64,
    },
    /// Tuples were read back from a temp relation.
    TempRead {
        /// The temp relation.
        temp: TempId,
        /// Tuples read.
        tuples: u64,
    },
    /// Relation `rel`'s scan is being served from the mediator's result
    /// cache: no wrapper is dialed, the recording replays at memory speed.
    CacheHit {
        /// The cached relation.
        rel: RelId,
        /// Tuples the replay will deliver.
        tuples: u64,
        /// Payload bytes served from cache.
        bytes: u64,
    },
    /// Relation `rel` was not servable from the result cache; the scan
    /// goes to its wrapper (and is recorded when a cache is configured).
    CacheMiss {
        /// The uncached relation.
        rel: RelId,
    },
    /// Relation `rel`'s scan opened on this replica endpoint (the
    /// rate-aware selection of `dqs-replica`).
    ReplicaPinned {
        /// The relation whose scan was pinned.
        rel: RelId,
        /// The chosen endpoint address.
        endpoint: &'a str,
    },
    /// Relation `rel`'s scan lost its endpoint mid-stream and resumed on a
    /// peer replica at `resume_from` — the run continues.
    Failover {
        /// The relation whose scan moved.
        rel: RelId,
        /// The endpoint that failed.
        from: &'a str,
        /// The endpoint the scan resumed on.
        to: &'a str,
        /// First tuple index the new endpoint delivers.
        resume_from: u64,
    },
    /// A replica endpoint was put on cooldown after failing. Unlike
    /// [`EngineEvent::Aborted`], the scan may still complete on a peer.
    ReplicaDegraded {
        /// The relation whose source observed the failure.
        rel: RelId,
        /// The endpoint now on cooldown.
        endpoint: &'a str,
        /// The failure that degraded it.
        error: &'a dqs_source::SourceError,
    },
    /// One morsel of an admitted batch was dispatched to the worker pool
    /// (only emitted on the morsel-parallel path, `workers > 1`).
    MorselDispatched {
        /// Fragment whose batch was carved.
        frag: FragId,
        /// Zero-based morsel index within the batch (also the merge rank).
        index: u64,
        /// Source tuples in the morsel.
        tuples: u64,
    },
    /// A dispatched morsel was executed by a worker other than the one it
    /// was queued on — a work-stealing event. Steals change *placement*
    /// only; the deterministic merge order keeps answers bit-identical.
    MorselStolen {
        /// Fragment whose morsel moved.
        frag: FragId,
        /// Morsel index within the batch.
        index: u64,
        /// The worker that stole and ran it.
        worker: u64,
    },
    /// The SPM rate observatory folded a delivery-rate sample for wrapper
    /// `rel` (only emitted under `SpmPolicy`; excluded from the golden
    /// fingerprint, which never runs SPM).
    RateSample {
        /// The observed wrapper.
        rel: RelId,
        /// EWMA delivery rate in tuples/second.
        rate_tps: f64,
        /// Burstiness (coefficient of variation of the rate samples).
        burstiness: f64,
    },
    /// The SPM planner re-permuted the drain order mid-query: observed
    /// rates crossed the hysteresis threshold (only emitted under
    /// `SpmPolicy`).
    RatePermuted {
        /// The new drain order over live wrappers, fastest first.
        order: &'a [RelId],
    },
    /// The DQP found nothing schedulable with data (§3.2 stall).
    Stalled,
    /// The run aborted; this is the final event of the stream.
    Aborted {
        /// Why the run could not complete.
        reason: &'a RunError,
    },
}

/// Receives engine events as they happen, in virtual-time order.
pub trait EngineObserver {
    /// Handle one event occurring at virtual time `at`.
    fn on_event(&mut self, at: SimTime, ev: &EngineEvent<'_>);
}

/// The do-nothing observer; with it, observation compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl EngineObserver for NullObserver {
    #[inline(always)]
    fn on_event(&mut self, _at: SimTime, _ev: &EngineEvent<'_>) {}
}

impl<O: EngineObserver + ?Sized> EngineObserver for &mut O {
    fn on_event(&mut self, at: SimTime, ev: &EngineEvent<'_>) {
        (**self).on_event(at, ev)
    }
}

/// Folds events into the run's metric counters. The engine installs one
/// unconditionally; the counters it cannot see (resource busy times, high
/// waters) are filled in from the world at the end of the run.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    /// The accumulating metrics.
    pub acc: MetricsAcc,
}

impl EngineObserver for MetricsObserver {
    fn on_event(&mut self, at: SimTime, ev: &EngineEvent<'_>) {
        let m = &mut self.acc.m;
        match *ev {
            EngineEvent::BatchStart { .. } => {
                m.batches += 1;
                self.acc.stall_end(at);
            }
            EngineEvent::BatchDone { output, .. } => m.output_tuples += output,
            EngineEvent::PlanComputed { .. } => m.plans += 1,
            EngineEvent::InterruptRaised(why) => match why {
                Interrupt::EndOfQf(_) => m.end_of_qf += 1,
                Interrupt::RateChange => m.rate_changes += 1,
                Interrupt::Timeout => m.timeouts += 1,
                Interrupt::Start | Interrupt::MemoryOverflow { .. } => {}
            },
            // A split is bookkept as a degradation too: both replace one
            // fragment with a (materializing, consuming) pair.
            EngineEvent::Degraded { .. } | EngineEvent::Split { .. } => m.degradations += 1,
            EngineEvent::MemoryDenied { .. } => m.memory_overflows += 1,
            EngineEvent::CacheHit { bytes, .. } => {
                m.cache_hits += 1;
                m.cache_bytes_served += bytes;
            }
            EngineEvent::CacheMiss { .. } => m.cache_misses += 1,
            EngineEvent::Failover { .. } => m.failovers += 1,
            EngineEvent::ReplicaDegraded { .. } => m.replica_retries += 1,
            EngineEvent::MorselDispatched { .. } => m.morsels += 1,
            EngineEvent::MorselStolen { .. } => m.steals += 1,
            EngineEvent::RateSample { .. } => m.rate_samples += 1,
            EngineEvent::RatePermuted { .. } => m.permutations += 1,
            EngineEvent::Stalled => self.acc.stall_begin(at),
            EngineEvent::ReplicaPinned { .. }
            | EngineEvent::Arrival { .. }
            | EngineEvent::MatCancelled { .. }
            | EngineEvent::MemoryGranted { .. }
            | EngineEvent::TempWrite { .. }
            | EngineEvent::TempRead { .. }
            | EngineEvent::Aborted { .. } => {}
        }
    }
}

/// Renders events into the classic human-readable [`Trace`]. This is the
/// only place engine activity is turned into text for the text trace.
#[derive(Debug)]
pub struct TextTrace {
    trace: Trace,
}

impl TextTrace {
    /// A collecting text trace.
    pub fn new() -> TextTrace {
        TextTrace {
            trace: Trace::enabled(),
        }
    }

    /// Take the rendered trace out.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Default for TextTrace {
    fn default() -> Self {
        TextTrace::new()
    }
}

impl EngineObserver for TextTrace {
    fn on_event(&mut self, at: SimTime, ev: &EngineEvent<'_>) {
        let (kind, detail) = match *ev {
            EngineEvent::Arrival { rel, finished } => (
                TraceKind::Arrival,
                format!("rel {} tuple (finished={finished})", rel.0),
            ),
            EngineEvent::BatchStart { frag, tuples } => (
                TraceKind::Batch,
                format!("batch start frag {} ({tuples} tuples)", frag.0),
            ),
            EngineEvent::BatchDone { frag, .. } => {
                (TraceKind::Batch, format!("batch done frag {}", frag.0))
            }
            EngineEvent::PlanComputed { why, sp } => (
                TraceKind::Plan,
                format!(
                    "{why:?} -> sp {:?}",
                    sp.iter().map(|f| f.0).collect::<Vec<_>>()
                ),
            ),
            EngineEvent::InterruptRaised(why) => (
                TraceKind::Interrupt,
                match why {
                    Interrupt::Timeout => "TimeOut".into(),
                    Interrupt::EndOfQf(f) => format!("EndOfQF frag {}", f.0),
                    other => format!("{other:?}"),
                },
            ),
            EngineEvent::Degraded { pc, mf, cf, temp } => (
                TraceKind::Other,
                format!(
                    "degrade pc {} -> mf {} cf {} (temp {})",
                    pc.0, mf.0, cf.0, temp.0
                ),
            ),
            EngineEvent::Split {
                from,
                head,
                tail,
                temp,
            } => (
                TraceKind::Other,
                format!(
                    "split frag {} -> head {} tail {} (temp {})",
                    from.0, head.0, tail.0, temp.0
                ),
            ),
            EngineEvent::MatCancelled { mf, cf } => (
                TraceKind::Other,
                format!("cancel mf {} (cf {} takes the queue)", mf.0, cf.0),
            ),
            EngineEvent::MemoryGranted { ht, bytes } => (
                TraceKind::Other,
                format!("memory grant ht {} ({bytes} bytes)", ht.0),
            ),
            EngineEvent::MemoryDenied { frag, needed, free } => (
                TraceKind::Other,
                format!("memory deny frag {} ({needed} needed, {free} free)", frag.0),
            ),
            EngineEvent::TempWrite { temp, tuples } => (
                TraceKind::Io,
                format!("temp {} write {tuples} tuples", temp.0),
            ),
            EngineEvent::TempRead { temp, tuples } => (
                TraceKind::Io,
                format!("temp {} read {tuples} tuples", temp.0),
            ),
            EngineEvent::CacheHit { rel, tuples, bytes } => (
                TraceKind::Other,
                format!("cache hit rel {} ({tuples} tuples, {bytes} bytes)", rel.0),
            ),
            EngineEvent::CacheMiss { rel } => {
                (TraceKind::Other, format!("cache miss rel {}", rel.0))
            }
            EngineEvent::ReplicaPinned { rel, endpoint } => (
                TraceKind::Other,
                format!("replica pin rel {} -> {endpoint}", rel.0),
            ),
            EngineEvent::Failover {
                rel,
                from,
                to,
                resume_from,
            } => (
                TraceKind::Other,
                format!(
                    "failover rel {} {from} -> {to} (resume at {resume_from})",
                    rel.0
                ),
            ),
            EngineEvent::ReplicaDegraded {
                rel,
                endpoint,
                error,
            } => (
                TraceKind::Other,
                format!("replica degraded rel {} {endpoint}: {error}", rel.0),
            ),
            EngineEvent::MorselDispatched {
                frag,
                index,
                tuples,
            } => (
                TraceKind::Batch,
                format!("morsel {index} of frag {} ({tuples} tuples)", frag.0),
            ),
            EngineEvent::MorselStolen {
                frag,
                index,
                worker,
            } => (
                TraceKind::Batch,
                format!(
                    "morsel {index} of frag {} stolen by worker {worker}",
                    frag.0
                ),
            ),
            EngineEvent::RateSample {
                rel,
                rate_tps,
                burstiness,
            } => (
                TraceKind::Other,
                format!(
                    "rate sample rel {} ({rate_tps:.0} t/s, cv {burstiness:.2})",
                    rel.0
                ),
            ),
            EngineEvent::RatePermuted { order } => (
                TraceKind::Plan,
                format!(
                    "permute drain order {:?}",
                    order.iter().map(|r| r.0).collect::<Vec<_>>()
                ),
            ),
            EngineEvent::Stalled => (TraceKind::Other, "stall".into()),
            EngineEvent::Aborted { reason } => (TraceKind::Other, format!("abort: {reason}")),
        };
        self.trace.emit(at, kind, || detail);
    }
}

/// Streams events as JSON lines (one object per event) to any writer.
///
/// Every line has `"at_us"` (virtual time in microseconds) and `"type"`;
/// the remaining fields are flat and numeric. Written lines are valid JSON
/// parseable independently, so traces can be processed with standard
/// line-oriented tooling.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
    /// First I/O error, if any (subsequent events are dropped).
    error: Option<std::io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Stream events to `out`.
    pub fn new(out: W) -> JsonLinesSink<W> {
        JsonLinesSink { out, error: None }
    }

    /// Finish, flushing and returning the writer (or the first I/O error).
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_line(&mut self, at: SimTime, body: &str) {
        if self.error.is_some() {
            return;
        }
        let us = at.saturating_since(SimTime::ZERO).as_micros_f64();
        if let Err(e) = writeln!(self.out, "{{\"at_us\":{us},{body}}}") {
            self.error = Some(e);
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn interrupt_json(why: Interrupt) -> String {
    match why {
        Interrupt::Start => "\"start\"".into(),
        Interrupt::EndOfQf(f) => format!("{{\"end_of_qf\":{}}}", f.0),
        Interrupt::RateChange => "\"rate_change\"".into(),
        Interrupt::Timeout => "\"timeout\"".into(),
        Interrupt::MemoryOverflow { frag, needed } => {
            format!(
                "{{\"memory_overflow\":{{\"frag\":{},\"needed\":{needed}}}}}",
                frag.0
            )
        }
    }
}

impl<W: Write> EngineObserver for JsonLinesSink<W> {
    fn on_event(&mut self, at: SimTime, ev: &EngineEvent<'_>) {
        let body = match *ev {
            EngineEvent::Arrival { rel, finished } => {
                format!(
                    "\"type\":\"arrival\",\"rel\":{},\"finished\":{finished}",
                    rel.0
                )
            }
            EngineEvent::BatchStart { frag, tuples } => {
                format!(
                    "\"type\":\"batch_start\",\"frag\":{},\"tuples\":{tuples}",
                    frag.0
                )
            }
            EngineEvent::BatchDone { frag, output } => {
                format!(
                    "\"type\":\"batch_done\",\"frag\":{},\"output\":{output}",
                    frag.0
                )
            }
            EngineEvent::PlanComputed { why, sp } => {
                let ids: Vec<String> = sp.iter().map(|f| f.0.to_string()).collect();
                format!(
                    "\"type\":\"plan\",\"why\":{},\"sp\":[{}]",
                    interrupt_json(why),
                    ids.join(",")
                )
            }
            EngineEvent::InterruptRaised(why) => {
                format!("\"type\":\"interrupt\",\"why\":{}", interrupt_json(why))
            }
            EngineEvent::Degraded { pc, mf, cf, temp } => format!(
                "\"type\":\"degrade\",\"pc\":{},\"mf\":{},\"cf\":{},\"temp\":{}",
                pc.0, mf.0, cf.0, temp.0
            ),
            EngineEvent::Split {
                from,
                head,
                tail,
                temp,
            } => format!(
                "\"type\":\"split\",\"from\":{},\"head\":{},\"tail\":{},\"temp\":{}",
                from.0, head.0, tail.0, temp.0
            ),
            EngineEvent::MatCancelled { mf, cf } => {
                format!("\"type\":\"mat_cancel\",\"mf\":{},\"cf\":{}", mf.0, cf.0)
            }
            EngineEvent::MemoryGranted { ht, bytes } => {
                format!("\"type\":\"mem_grant\",\"ht\":{},\"bytes\":{bytes}", ht.0)
            }
            EngineEvent::MemoryDenied { frag, needed, free } => format!(
                "\"type\":\"mem_deny\",\"frag\":{},\"needed\":{needed},\"free\":{free}",
                frag.0
            ),
            EngineEvent::TempWrite { temp, tuples } => {
                format!(
                    "\"type\":\"temp_write\",\"temp\":{},\"tuples\":{tuples}",
                    temp.0
                )
            }
            EngineEvent::TempRead { temp, tuples } => {
                format!(
                    "\"type\":\"temp_read\",\"temp\":{},\"tuples\":{tuples}",
                    temp.0
                )
            }
            EngineEvent::CacheHit { rel, tuples, bytes } => format!(
                "\"type\":\"cache_hit\",\"rel\":{},\"tuples\":{tuples},\"bytes\":{bytes}",
                rel.0
            ),
            EngineEvent::CacheMiss { rel } => {
                format!("\"type\":\"cache_miss\",\"rel\":{}", rel.0)
            }
            EngineEvent::ReplicaPinned { rel, endpoint } => format!(
                "\"type\":\"replica_pin\",\"rel\":{},\"endpoint\":\"{}\"",
                rel.0,
                json_escape(endpoint)
            ),
            EngineEvent::Failover {
                rel,
                from,
                to,
                resume_from,
            } => format!(
                "\"type\":\"failover\",\"rel\":{},\"from\":\"{}\",\"to\":\"{}\",\"resume_from\":{resume_from}",
                rel.0,
                json_escape(from),
                json_escape(to)
            ),
            EngineEvent::ReplicaDegraded {
                rel,
                endpoint,
                error,
            } => format!(
                "\"type\":\"replica_degraded\",\"rel\":{},\"endpoint\":\"{}\",\"error\":\"{}\"",
                rel.0,
                json_escape(endpoint),
                error.kind()
            ),
            EngineEvent::MorselDispatched {
                frag,
                index,
                tuples,
            } => format!(
                "\"type\":\"morsel\",\"frag\":{},\"index\":{index},\"tuples\":{tuples}",
                frag.0
            ),
            EngineEvent::MorselStolen { frag, index, worker } => format!(
                "\"type\":\"morsel_stolen\",\"frag\":{},\"index\":{index},\"worker\":{worker}",
                frag.0
            ),
            EngineEvent::RateSample {
                rel,
                rate_tps,
                burstiness,
            } => format!(
                "\"type\":\"rate_sample\",\"rel\":{},\"tps\":{rate_tps:.3},\"cv\":{burstiness:.4}",
                rel.0
            ),
            EngineEvent::RatePermuted { order } => {
                let ids: Vec<String> = order.iter().map(|r| r.0.to_string()).collect();
                format!("\"type\":\"rate_permuted\",\"order\":[{}]", ids.join(","))
            }
            EngineEvent::Stalled => "\"type\":\"stall\"".to_string(),
            EngineEvent::Aborted { reason } => format!(
                "\"type\":\"abort\",\"kind\":\"{}\",\"reason\":\"{}\"",
                reason.kind(),
                json_escape(&reason.to_string())
            ),
        };
        self.write_line(at, &body);
    }
}

/// The engine's observer stack: metrics (always), the text trace (when
/// configured), and the caller's observer.
#[derive(Debug)]
pub(crate) struct Observers<O: EngineObserver> {
    pub(crate) metrics: MetricsObserver,
    pub(crate) text: Option<TextTrace>,
    pub(crate) user: O,
}

impl<O: EngineObserver> Observers<O> {
    pub(crate) fn new(trace: bool, user: O) -> Observers<O> {
        Observers {
            metrics: MetricsObserver::default(),
            text: trace.then(TextTrace::new),
            user,
        }
    }
}

impl<O: EngineObserver> EngineObserver for Observers<O> {
    fn on_event(&mut self, at: SimTime, ev: &EngineEvent<'_>) {
        self.metrics.on_event(at, ev);
        if let Some(t) = &mut self.text {
            t.on_event(at, ev);
        }
        self.user.on_event(at, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_observer_folds_counters() {
        let mut m = MetricsObserver::default();
        let t = SimTime::ZERO;
        m.on_event(t, &EngineEvent::Stalled);
        m.on_event(
            t,
            &EngineEvent::BatchStart {
                frag: FragId(0),
                tuples: 128,
            },
        );
        m.on_event(
            t,
            &EngineEvent::BatchDone {
                frag: FragId(0),
                output: 42,
            },
        );
        m.on_event(
            t,
            &EngineEvent::InterruptRaised(Interrupt::EndOfQf(FragId(0))),
        );
        m.on_event(t, &EngineEvent::InterruptRaised(Interrupt::RateChange));
        m.on_event(t, &EngineEvent::InterruptRaised(Interrupt::Timeout));
        m.on_event(
            t,
            &EngineEvent::MemoryDenied {
                frag: FragId(1),
                needed: 10,
                free: 5,
            },
        );
        m.on_event(
            t,
            &EngineEvent::Degraded {
                pc: PcId(0),
                mf: FragId(2),
                cf: FragId(3),
                temp: TempId(0),
            },
        );
        m.on_event(
            t,
            &EngineEvent::PlanComputed {
                why: Interrupt::Start,
                sp: &[],
            },
        );
        let rm = m.acc.m;
        assert_eq!(rm.batches, 1);
        assert_eq!(rm.output_tuples, 42);
        assert_eq!(rm.end_of_qf, 1);
        assert_eq!(rm.rate_changes, 1);
        assert_eq!(rm.timeouts, 1);
        assert_eq!(rm.memory_overflows, 1);
        assert_eq!(rm.degradations, 1);
        assert_eq!(rm.plans, 1);
    }

    #[test]
    fn text_trace_renders_classic_lines() {
        let mut t = TextTrace::new();
        t.on_event(
            SimTime::ZERO,
            &EngineEvent::Arrival {
                rel: RelId(3),
                finished: false,
            },
        );
        t.on_event(
            SimTime::ZERO,
            &EngineEvent::InterruptRaised(Interrupt::EndOfQf(FragId(7))),
        );
        let trace = t.into_trace();
        assert_eq!(trace.events()[0].detail, "rel 3 tuple (finished=false)");
        assert_eq!(trace.events()[1].detail, "EndOfQF frag 7");
    }

    #[test]
    fn json_lines_are_parseable_objects() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.on_event(
            SimTime::ZERO,
            &EngineEvent::PlanComputed {
                why: Interrupt::MemoryOverflow {
                    frag: FragId(1),
                    needed: 64,
                },
                sp: &[FragId(2), FragId(1)],
            },
        );
        sink.on_event(
            SimTime::ZERO,
            &EngineEvent::BatchStart {
                frag: FragId(2),
                tuples: 128,
            },
        );
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"at_us\":0"));
        assert!(lines[0].contains("\"sp\":[2,1]"));
        assert!(lines[0].contains("\"memory_overflow\""));
        assert!(lines[1].contains("\"type\":\"batch_start\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }
}
