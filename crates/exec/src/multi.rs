//! Multi-query execution — the paper's §6 future work.
//!
//! "We also plan to study the behavior of our approach in the context of
//! multi-query execution. As soon as we consider such context, we face the
//! classical tradeoff between throughput and response time."
//!
//! Several independent integration queries are packed into one executable
//! *forest* workload: their catalogs are concatenated (each query keeps its
//! own wrappers), their plans become roots of a single multi-root QEP, and
//! the engine runs all of their pipeline chains under one scheduling
//! policy, sharing the mediator CPU, the disk, and the query-memory
//! budget. Per-query response times come back in
//! [`crate::RunMetrics::query_responses`].
//!
//! Under SEQ the forest executes serially (query 1 starts after query 0
//! finishes draining); under the dynamic scheduler the chains of all
//! queries compete by critical degree, which trades individual response
//! time for global throughput — exactly the §6 tension.

use dqs_plan::{Catalog, Qep, QepBuilder, QepNode};
use dqs_relop::RelId;
use dqs_source::DelayModel;

use crate::workload::{EngineConfig, Workload};

/// One independent query to pack into a forest.
#[derive(Debug, Clone)]
pub struct SingleQuery {
    /// The query's own relations.
    pub catalog: Catalog,
    /// Its (single-root) plan.
    pub qep: Qep,
    /// Delay model per relation of `catalog`.
    pub delays: Vec<DelayModel>,
}

impl SingleQuery {
    /// Wrap a workload-shaped query.
    pub fn from_workload(w: &Workload) -> SingleQuery {
        SingleQuery {
            catalog: w.catalog.clone(),
            qep: w.qep.clone(),
            delays: w.delays.clone(),
        }
    }
}

/// Pack `queries` into one multi-root workload sharing `config`'s
/// resources.
///
/// # Panics
/// Panics if `queries` is empty or any query is itself a forest.
pub fn combine(queries: &[SingleQuery], config: EngineConfig) -> Workload {
    assert!(!queries.is_empty(), "combine of zero queries");
    let mut catalog = Catalog::new();
    let mut delays = Vec::new();
    let mut qb = QepBuilder::new();
    let mut roots = Vec::new();

    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            q.qep.query_count(),
            1,
            "query {qi} is already a forest; combine flat queries"
        );
        assert_eq!(
            q.delays.len(),
            q.catalog.len(),
            "query {qi}: one delay model per relation"
        );
        // Concatenate the catalog, remembering the relation offset.
        let rel_offset = catalog.len() as u16;
        for (rel, spec) in q.catalog.iter() {
            catalog.add(format!("q{qi}.{}", spec.name), spec.cardinality);
            delays.push(q.delays[rel.0 as usize].clone());
        }
        // Copy the plan's nodes in order; node ids shift uniformly.
        let node_offset = qb.len() as u32;
        for (_, node) in q.qep.iter() {
            match node {
                QepNode::Scan { rel, selectivity } => {
                    qb.scan(RelId(rel.0 + rel_offset), *selectivity);
                }
                QepNode::HashJoin {
                    build,
                    probe,
                    fanout,
                } => {
                    qb.hash_join(
                        dqs_plan::NodeId(build.0 + node_offset),
                        dqs_plan::NodeId(probe.0 + node_offset),
                        *fanout,
                    );
                }
                QepNode::Mat { input } => {
                    qb.mat(dqs_plan::NodeId(input.0 + node_offset));
                }
            }
        }
        roots.push(dqs_plan::NodeId(q.qep.root().0 + node_offset));
    }

    let qep = qb
        .finish_forest(roots)
        .expect("combining valid queries yields a valid forest");
    Workload {
        catalog,
        qep,
        delays,
        actuals: None,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use crate::strategies::SeqPolicy;
    use dqs_plan::Catalog;
    use dqs_sim::SimDuration;

    fn small_query(card: u64) -> SingleQuery {
        let mut cat = Catalog::new();
        let a = cat.add("A", card);
        let b = cat.add("B", card / 2);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j = qb.hash_join(sa, sb, 1.0);
        let qep = qb.finish(j).unwrap();
        let delays = vec![
            DelayModel::Constant {
                w: SimDuration::from_micros(20)
            };
            2
        ];
        SingleQuery {
            catalog: cat,
            qep,
            delays,
        }
    }

    #[test]
    fn combine_builds_a_valid_forest() {
        let w = combine(
            &[small_query(1_000), small_query(2_000)],
            EngineConfig::default(),
        );
        assert_eq!(w.catalog.len(), 4);
        assert_eq!(w.qep.query_count(), 2);
        assert!(w.qep.validate().is_ok());
        assert_eq!(w.delays.len(), 4);
    }

    #[test]
    fn forest_runs_and_reports_per_query_responses() {
        let w = combine(
            &[small_query(1_000), small_query(2_000)],
            EngineConfig::default(),
        );
        let m = run_workload(&w, SeqPolicy);
        // Outputs: 500 + 1000 probe tuples.
        assert_eq!(m.output_tuples, 500 + 1_000);
        assert_eq!(m.query_responses.len(), 2);
        assert_eq!(m.query_responses[0].0, 0);
        assert_eq!(m.query_responses[1].0, 1);
        // Under SEQ query 0 finishes strictly before query 1.
        assert!(m.query_responses[0].1 < m.query_responses[1].1);
        // The run ends when the last query ends.
        assert_eq!(m.query_responses[1].1, m.response_time);
    }

    #[test]
    #[should_panic(expected = "zero queries")]
    fn empty_combine_panics() {
        let _ = combine(&[], EngineConfig::default());
    }

    #[test]
    fn remapping_is_collision_free() {
        let w = combine(
            &[small_query(1_000), small_query(2_000), small_query(3_000)],
            EngineConfig::default(),
        );
        // Every relation keeps a distinct identity: names are qualified
        // per query and ids are dense and unique.
        let names: std::collections::HashSet<String> = w
            .catalog
            .iter()
            .map(|(_, spec)| spec.name.clone())
            .collect();
        assert_eq!(names.len(), 6, "no relation name collides");
        assert!(names.contains("q0.A") && names.contains("q2.B"));
        // Source queries reused ids A=0, B=1; the forest must not.
        let scanned: Vec<RelId> = w
            .qep
            .iter()
            .filter_map(|(_, n)| match n {
                QepNode::Scan { rel, .. } => Some(*rel),
                _ => None,
            })
            .collect();
        let distinct: std::collections::HashSet<RelId> = scanned.iter().copied().collect();
        assert_eq!(distinct.len(), scanned.len(), "no scan rel id collides");
        assert_eq!(scanned.len(), 6);
        // Cardinalities survived the remap, in input order.
        let cards: Vec<u64> = w.catalog.iter().map(|(_, s)| s.cardinality).collect();
        assert_eq!(cards, vec![1_000, 500, 2_000, 1_000, 3_000, 1_500]);
        assert!(w.qep.validate().is_ok());
    }

    #[test]
    fn per_query_responses_follow_input_order() {
        // Input order is what tags each query, not completion order: make
        // query 0 the big one so SEQ finishes it first anyway (SEQ drains
        // roots in plan order) and sizes differ enough to tell apart.
        let w = combine(
            &[small_query(4_000), small_query(1_000)],
            EngineConfig::default(),
        );
        let m = run_workload(&w, SeqPolicy);
        let ids: Vec<u32> = m.query_responses.iter().map(|&(q, _)| q).collect();
        assert_eq!(ids, vec![0, 1], "tagged by input position");
        assert_eq!(m.output_tuples, 2_000 + 500);
        // SEQ executes the forest serially in input order.
        assert!(m.query_responses[0].1 < m.query_responses[1].1);
    }

    #[test]
    fn seq_forest_matches_back_to_back_structure() {
        let q0 = small_query(1_000);
        let q1 = small_query(2_000);
        let cfg = EngineConfig::default();

        let single = |q: &SingleQuery| {
            let w = Workload {
                catalog: q.catalog.clone(),
                qep: q.qep.clone(),
                delays: q.delays.clone(),
                actuals: None,
                config: cfg.clone(),
            };
            run_workload(&w, SeqPolicy)
        };
        let m0 = single(&q0);
        let m1 = single(&q1);
        let forest = run_workload(&combine(&[q0, q1], cfg), SeqPolicy);

        // The forest produces exactly the union of the individual results.
        assert_eq!(forest.output_tuples, m0.output_tuples + m1.output_tuples);
        assert_eq!(forest.query_responses.len(), 2);

        // Timing is *not* the exact sum: all wrappers stream from t=0 in
        // the forest, so query 1's arrivals overlap query 0's execution
        // (receive costs share the CPU, and query 1's queues pre-fill).
        // What must hold: the forest cannot beat either query alone, and
        // serial SEQ cannot beat the back-to-back sum by more than the
        // retrieval overlap — i.e. it lands between the slowest single
        // query and the full sum.
        let sum = m0.response_time + m1.response_time;
        let slowest = m0.response_time.max(m1.response_time);
        assert!(forest.response_time >= slowest);
        assert!(forest.response_time <= sum);
        // Query 0 heads the serial order, but its batches now compete with
        // query 1's message-receive costs for the one CPU (measured: ~38%
        // slower than solo for this sizing) — it can only get slower, and
        // it still finishes before the forest does.
        let solo = m0.response_time;
        let in_forest = forest.query_responses[0].1;
        assert!(
            in_forest >= solo,
            "sharing the CPU cannot speed query 0 up: solo {solo:?}, in-forest {in_forest:?}"
        );
        assert!(in_forest < forest.response_time);
    }
}
