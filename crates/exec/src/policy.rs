//! The scheduling-policy interface.
//!
//! §3.1 splits planning from execution: the engine (DQP) executes batches
//! following a *scheduling plan* — a totally ordered list of fragments —
//! and raises interruption events; a [`Policy`] (the DQS, possibly backed
//! by a DQO) recomputes the scheduling plan at each interruption.
//!
//! The engine guarantees `plan` is only called between batches (the DQO,
//! DQS and DQP "interact synchronously, i.e., they never run concurrently").

use dqs_plan::{AnnotatedPlan, PcId};
use dqs_sim::{SimDuration, SimTime};

use crate::frag::{FragId, FragStatus, FragTable};
use crate::observe::{EngineEvent, EngineObserver};
use crate::world::World;

/// Why a planning phase was entered (§3.2's interruption events plus the
/// initial call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// Execution is starting.
    Start,
    /// A query fragment completed.
    EndOfQf(FragId),
    /// A wrapper's delivery-rate estimate drifted from the planning mark.
    RateChange,
    /// The DQP stalled longer than the configured timeout.
    Timeout,
    /// A fragment's memory reservation failed (§4.2): the plan must change
    /// before the fragment can run.
    MemoryOverflow {
        /// The fragment that could not reserve.
        frag: FragId,
        /// Bytes it asked for.
        needed: u64,
    },
}

/// Context handed to a policy during a planning phase.
pub struct PlanCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The annotated plan (static estimates).
    pub plan: &'a AnnotatedPlan,
    /// Fragment runtime state; policies may degrade chains through it.
    pub frags: &'a mut FragTable,
    /// The simulated world (rate estimates, memory, disk, hash tables).
    pub world: &'a mut World,
    /// The engine's observer stack: plan mutations (degrade, split, MF
    /// cancellation) are reported through it as structured events.
    pub obs: &'a mut dyn EngineObserver,
}

impl<'a> PlanCtx<'a> {
    /// Degrade chain `pc` (§4.4), allocating its temp relation. Returns
    /// `(mf, cf)`.
    pub fn degrade(&mut self, pc: PcId, include_scan: bool) -> (FragId, FragId) {
        let temp = self.world.alloc_temp();
        let (mf, cf) = self.frags.degrade(pc, include_scan, temp);
        self.obs
            .on_event(self.now, &EngineEvent::Degraded { pc, mf, cf, temp });
        (mf, cf)
    }

    /// Split fragment `fid` at operator boundary `k` (§4.2's memory-
    /// overflow technique), allocating the intermediate temp relation.
    /// Returns `(head, tail)`.
    pub fn split(&mut self, fid: FragId, k: usize) -> (FragId, FragId) {
        let temp = self.world.alloc_temp();
        let (head, tail) = self.frags.split_fragment(fid, k, temp);
        self.obs.on_event(
            self.now,
            &EngineEvent::Split {
                from: fid,
                head,
                tail,
                temp,
            },
        );
        (head, tail)
    }

    /// Stop an MF early because its chain became schedulable: the temp is
    /// sealed, the MF retires, and the CF will continue from the wrapper
    /// queue once it drains the temp.
    ///
    /// # Panics
    /// Panics if `mf` is not an active MF.
    pub fn cancel_mf(&mut self, mf: FragId) {
        use crate::frag::{FragKind, FragSink, FragSource};
        let (pc, rel, temp) = {
            let f = self.frags.get(mf);
            assert_eq!(f.kind, FragKind::Mf, "cancel_mf on non-MF");
            assert_eq!(f.status, FragStatus::Active, "cancel_mf on dead MF");
            let FragSource::Queue(rel) = f.source else {
                unreachable!("MF sources are queues")
            };
            let FragSink::Mat(temp) = f.sink else {
                unreachable!("MF sinks are temps")
            };
            (f.pc, rel, temp)
        };
        // Seal the temp (flushes the buffered tail) and charge the CPU.
        let charge = {
            let now = self.now;
            let world = &mut *self.world;
            world.temps[temp.0 as usize].seal(now, &mut world.disk)
        };
        if charge.cpu_instr > 0 {
            let t = self.world.params.instr_time(charge.cpu_instr);
            self.world.cpu.acquire(self.now, t);
        }
        self.frags.get_mut(mf).status = FragStatus::Done;
        // Hand the live queue over to the CF; once the temp drains, the
        // engine prepends the MF's operators (with their accumulator
        // state) so queue tuples still pass the scan predicate.
        let cf = self
            .frags
            .live_body(pc)
            .expect("degraded chain has a live CF");
        if let FragSource::Temp {
            ref mut then_queue, ..
        } = self.frags.get_mut(cf).source
        {
            *then_queue = Some(rel);
        }
        self.frags.get_mut(cf).handoff_from = Some(mf);
        self.obs
            .on_event(self.now, &EngineEvent::MatCancelled { mf, cf });
    }

    /// Live estimate of chain `p`'s per-tuple waiting time `w_p`: the CM's
    /// EWMA where available, else the platform `w_min` (nothing observed
    /// yet).
    pub fn estimated_gap(&self, p: PcId) -> SimDuration {
        use dqs_plan::ChainSource;
        match self.plan.chains.chain(p).source {
            ChainSource::Wrapper(rel) => self
                .world
                .cm
                .estimated_gap(rel)
                .unwrap_or_else(|| self.world.params.w_min()),
            // Temp-sourced chains read the local disk: their waiting time is
            // the amortized per-tuple I/O.
            ChainSource::Temp(_) => self.world.disk.amortized_tuple_io(),
        }
    }

    /// Estimated tuples chain `p` still has to receive (`n_p` of §4.3,
    /// updated with what already arrived).
    pub fn remaining_tuples(&self, p: PcId) -> u64 {
        use dqs_plan::ChainSource;
        match self.plan.chains.chain(p).source {
            ChainSource::Wrapper(rel) => {
                let est = self.plan.info(p).source_card as u64;
                est.saturating_sub(self.world.cm.received(rel))
            }
            ChainSource::Temp(_) => self.plan.info(p).source_card as u64,
        }
    }

    /// True when every hash table chain `p` probes is complete — the
    /// runtime form of C-schedulability (§4.1: all of `ancestors(p)`
    /// terminated).
    pub fn c_schedulable(&self, p: PcId) -> bool {
        self.plan
            .chains
            .chain(p)
            .probes()
            .iter()
            .all(|&ht| self.world.arena.get(ht).is_complete())
    }
}

/// A scheduling policy: SEQ, MA, or the paper's dynamic scheduler.
pub trait Policy {
    /// Strategy name for reporting.
    fn name(&self) -> &'static str;

    /// Compute a scheduling plan: active fragment ids in priority order.
    /// Fragments not listed are not eligible to run this phase.
    fn plan(&mut self, ctx: &mut PlanCtx<'_>, why: Interrupt) -> Vec<FragId>;
}
