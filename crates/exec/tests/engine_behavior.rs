//! Engine-mechanics tests that exercise specific DQP behaviours through
//! the public API: tracing, the window-protocol emergency lane,
//! synchronous vs write-behind materialization, and the MF-cancellation
//! hand-off.

use dqs_exec::{run_workload, Engine, MaPolicy, SeqPolicy, Workload};
use dqs_plan::{Catalog, QepBuilder};
use dqs_relop::RelId;
use dqs_sim::{SimDuration, TraceKind};
use dqs_source::DelayModel;

fn two_way(card_a: u64, card_b: u64) -> Workload {
    let mut cat = Catalog::new();
    let a = cat.add("A", card_a);
    let b = cat.add("B", card_b);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 1.0);
    let sb = qb.scan(b, 1.0);
    let j = qb.hash_join(sa, sb, 1.0);
    Workload::new(cat, qb.finish(j).unwrap())
}

#[test]
fn trace_records_all_event_kinds() {
    let mut w = two_way(2_000, 2_000);
    w.config.trace = true;
    let (m, trace) = Engine::new(&w, SeqPolicy).try_run_traced().unwrap();
    assert!(trace.is_enabled());
    assert!(!trace.events().is_empty());
    let arrivals = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Arrival)
        .count() as u64;
    assert_eq!(arrivals, 4_000, "one trace record per tuple arrival");
    let plans = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Plan)
        .count() as u64;
    assert_eq!(plans, m.plans, "trace and metrics agree on planning phases");
    // EndOfQF interrupts appear for both chains.
    let interrupts = trace.render(Some(TraceKind::Interrupt));
    assert!(interrupts.contains("EndOfQF"));
}

#[test]
fn tracing_off_by_default_and_costless() {
    let w = two_way(1_000, 1_000);
    let (with_trace, _) = {
        let mut wt = w.clone();
        wt.config.trace = true;
        Engine::new(&wt, SeqPolicy).try_run_traced().unwrap()
    };
    let (without, trace) = Engine::new(&w, SeqPolicy).try_run_traced().unwrap();
    assert!(trace.events().is_empty());
    // Virtual-time results are identical either way.
    assert_eq!(with_trace.response_time, without.response_time);
}

#[test]
fn window_protocol_bounds_queue_memory() {
    // A tiny queue forces constant suspend/resume; the run must still
    // complete with the same answer, just slower end-to-end retrieval.
    let mut small = two_way(5_000, 5_000);
    small.config.queue_capacity = 130;
    small.config.batch_size = 128;
    let m_small = run_workload(&small, SeqPolicy);

    let mut big = two_way(5_000, 5_000);
    big.config.queue_capacity = 100_000;
    let m_big = run_workload(&big, SeqPolicy);

    assert_eq!(m_small.output_tuples, m_big.output_tuples);
    assert!(
        m_small.response_time >= m_big.response_time,
        "tight flow control cannot be faster: {} vs {}",
        m_small.response_time,
        m_big.response_time
    );
}

#[test]
fn ma_sync_writes_cost_more_than_write_behind() {
    // MA's naive synchronous spooling must be slower than the same volume
    // written behind. Compare MA against a hand-built DSE-free proxy: the
    // same workload with MA's sync flag is what MaPolicy sets; asserting
    // the response exceeds SEQ (which writes nothing) plus the pure
    // transfer time of its pages catches the synchronous stalls.
    let w = two_way(30_000, 30_000);
    let seq = run_workload(&w, SeqPolicy);
    let ma = run_workload(&w, MaPolicy::default());
    let pages = ma.pages_written as f64;
    let transfer = pages * 8_192.0 / 6_000_000.0;
    assert!(
        ma.response_secs() > seq.response_secs() + 0.5 * transfer,
        "MA {:.3}s should pay for its synchronous writes over SEQ {:.3}s (+{:.3}s transfer)",
        ma.response_secs(),
        seq.response_secs(),
        transfer
    );
}

#[test]
fn timeout_zero_disables_the_stall_timer() {
    let mut w = two_way(1_000, 1_000).with_delay(
        RelId(0),
        DelayModel::Initial {
            initial: SimDuration::from_millis(500),
            mean: SimDuration::from_micros(20),
        },
    );
    w.config.timeout = SimDuration::ZERO;
    let m = run_workload(&w, SeqPolicy);
    assert_eq!(m.timeouts, 0, "no timer, no TimeOut interruptions");
    assert_eq!(m.output_tuples, 1_000);
}

#[test]
fn stall_time_matches_initial_delay() {
    // With a 1-second initial delay on the build side and SEQ, the engine
    // must account roughly that second as stall time.
    let w = two_way(2_000, 2_000).with_delay(
        RelId(0),
        DelayModel::Initial {
            initial: SimDuration::from_secs(1),
            mean: SimDuration::from_micros(20),
        },
    );
    let m = run_workload(&w, SeqPolicy);
    let stall = m.stall_time.as_secs_f64();
    assert!(
        (0.9..1.3).contains(&stall),
        "stall {stall:.3}s should be about the 1 s initial delay"
    );
}

#[test]
fn cpu_accounting_is_conserved() {
    // CPU busy time must be strictly positive, at most the response time,
    // and must scale roughly linearly with the input volume.
    let m1 = run_workload(&two_way(5_000, 5_000), SeqPolicy);
    let m2 = run_workload(&two_way(10_000, 10_000), SeqPolicy);
    assert!(m1.cpu_busy > SimDuration::ZERO);
    assert!(m1.cpu_busy <= m1.response_time);
    let ratio = m2.cpu_busy.as_secs_f64() / m1.cpu_busy.as_secs_f64();
    assert!(
        (1.8..2.2).contains(&ratio),
        "doubling tuples should double CPU work: {ratio:.3}"
    );
}
