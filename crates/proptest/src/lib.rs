//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a miniature property-testing framework exposing the subset of
//! `proptest`'s API used by the repository's tests: the [`Strategy`] trait
//! (`prop_map`, ranges, tuples, [`Just`], [`arbitrary::any`]),
//! [`collection::vec`], the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] family of macros, [`ProptestConfig`] and
//! [`TestCaseError`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the `Debug` rendering of
//!   the generated inputs; reproduce by re-running (generation is fully
//!   deterministic — seeds derive from the test name and case index, never
//!   from the environment), then minimize by hand.
//! * **No persistence.** `*.proptest-regressions` files are ignored.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic test RNG
// ---------------------------------------------------------------------------

/// The generator driving value production. SplitMix64: tiny, fast, and
/// plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the generator for `(test_name, case_index)` — the *only*
    /// inputs, so every run of a test executes the same cases.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`] to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy.
pub mod arbitrary {
    use super::{Strategy, TestRng};

    /// A type with a default strategy over its whole domain.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Build it.
        fn arbitrary() -> Self::Strategy;
    }

    /// Whole-domain strategy for a primitive.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> { Any(std::marker::PhantomData) }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(std::marker::PhantomData)
        }
    }

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Union of boxed strategies; [`prop_oneof!`] builds one.
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union over `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! of zero arms");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Runner configuration. Only `cases` is honoured; `max_shrink_iters`
/// exists so `ProptestConfig { cases, ..Default::default() }` struct
/// expressions stay source-compatible with upstream (this runner reports
/// the failing inputs directly instead of shrinking).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Execute one property over `cfg.cases` deterministic cases.
///
/// `run_case` receives the per-case RNG; on `Err` the property panics with
/// the case number and message (inputs are formatted by the macro, which
/// sees the generated values).
pub fn run_property(
    name: &str,
    cfg: &ProptestConfig,
    mut run_case: impl FnMut(&mut TestRng) -> Result<(), (String, TestCaseError)>,
) {
    for case in 0..cfg.cases as u64 {
        let mut rng = TestRng::for_case(name, case);
        if let Err((inputs, e)) = run_case(&mut rng) {
            panic!(
                "property `{name}` failed at deterministic case {case}/{total}\n\
                 inputs: {inputs}\n\
                 error: {e}\n\
                 (offline proptest stand-in: no shrinking; the case is \
                 reproducible — rerun this test)",
                total = cfg.cases,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &cfg, |__rng| {
                    let mut __inputs = String::new();
                    $(
                        let __v = $crate::Strategy::generate(&($strat), __rng);
                        __inputs.push_str(&format!("{}{:?}", if __inputs.is_empty() { "" } else { ", " }, __v));
                        let $arg = __v;
                    )*
                    let __body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __body().map_err(|e| (__inputs, e))
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property; failure aborts the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a, b
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// The subset of `proptest::prelude` this workspace uses.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(0u32..100, 1..10);
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn ranges_and_oneof_stay_in_bounds() {
        let s = prop_oneof![(0u64..10).prop_map(|v| v), Just(99u64)];
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1_000 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || v == 99);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..50, 50u32..100), c in any::<u8>()) {
            prop_assert!(a < 50);
            prop_assert!((50..100).contains(&b), "b = {b}");
            prop_assert_eq!(c as u32 as u8, c);
        }
    }

    #[test]
    #[should_panic(expected = "deterministic case")]
    fn failures_panic_with_case_number() {
        crate::run_property(
            "always_fails",
            &ProptestConfig {
                cases: 1,
                ..ProptestConfig::default()
            },
            |_rng| Err(("()".to_string(), TestCaseError::fail("nope"))),
        );
    }
}
