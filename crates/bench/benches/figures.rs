//! Figure-regeneration benchmarks: `cargo bench --bench figures` measures
//! (and in doing so, re-executes) one representative point of every
//! evaluation artifact, so a `cargo bench --workspace` run exercises the
//! complete reproduction path. The full-resolution sweeps are produced by
//! the `repro` binary (`cargo run --release -p dqs-bench --bin repro all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dqs_bench::experiments::{self, slowdown_workload};
use dqs_bench::{run_once, StrategyKind};
use dqs_exec::Workload;
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

fn bench_figure6_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure6_point_a6s");
    g.sample_size(10);
    for strategy in StrategyKind::ALL {
        g.bench_function(strategy.name(), |b| {
            let w = slowdown_workload('A', 6.0);
            b.iter(|| black_box(run_once(&w, strategy)));
        });
    }
    g.finish();
}

fn bench_figure8_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure8_point_40us");
    g.sample_size(10);
    for strategy in [StrategyKind::Seq, StrategyKind::Dse] {
        g.bench_function(strategy.name(), |b| {
            let (base, _) = Workload::fig5();
            let w = base.with_all_delays(DelayModel::Uniform {
                mean: SimDuration::from_micros(40),
            });
            b.iter(|| black_box(run_once(&w, strategy)));
        });
    }
    g.finish();
}

fn bench_static_artifacts(c: &mut Criterion) {
    // Table 1 and Figure 5 are static renders; keep them covered too.
    c.bench_function("table1_render", |b| {
        b.iter(|| black_box(experiments::table1()))
    });
    c.bench_function("figure5_render", |b| {
        b.iter(|| black_box(experiments::figure5()))
    });
}

criterion_group!(
    benches,
    bench_figure6_point,
    bench_figure8_point,
    bench_static_artifacts
);
criterion_main!(benches);
