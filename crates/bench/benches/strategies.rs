//! End-to-end strategy benchmarks: the host-side cost of simulating one
//! full query execution under each strategy, on a scaled-down Figure 5
//! workload (cardinalities ÷ 10) so Criterion can take enough samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dqs_bench::{run_once, StrategyKind};
use dqs_exec::Workload;
use dqs_plan::{Catalog, QepBuilder};
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

/// Figure-5-shaped plan at one tenth the cardinality.
fn fig5_tenth() -> Workload {
    let mut cat = Catalog::new();
    let a = cat.add("A", 15_000);
    let b = cat.add("B", 12_000);
    let c = cat.add("C", 18_000);
    let d = cat.add("D", 1_500);
    let e = cat.add("E", 1_200);
    let f = cat.add("F", 10_000);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 1.0);
    let sb = qb.scan(b, 1.0);
    let j1 = qb.hash_join(sa, sb, 1.0);
    let sf = qb.scan(f, 1.0);
    let j2 = qb.hash_join(j1, sf, 1.0);
    let sd = qb.scan(d, 1.0);
    let se = qb.scan(e, 1.0);
    let j4 = qb.hash_join(sd, se, 1.0);
    let sc = qb.scan(c, 1.0);
    let j5 = qb.hash_join(j4, sc, 0.5);
    let j6 = qb.hash_join(j2, j5, 1.0);
    Workload::new(cat, qb.finish(j6).unwrap())
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_fig5_tenth");
    g.sample_size(20);
    for strategy in StrategyKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &s| {
                let w = fig5_tenth();
                b.iter(|| black_box(run_once(&w, s)));
            },
        );
    }
    g.finish();
}

fn bench_strategies_slowed(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_fig5_tenth_slowed");
    g.sample_size(20);
    for strategy in StrategyKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &s| {
                let w = fig5_tenth().with_delay(
                    dqs_relop::RelId(0),
                    DelayModel::Uniform {
                        mean: SimDuration::from_micros(100),
                    },
                );
                b.iter(|| black_box(run_once(&w, s)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_strategies_slowed);
criterion_main!(benches);
