//! Micro-benchmarks of the substrate components: the event queue, the
//! deterministic fan-out accumulator, hash-table build/probe, and chain
//! batch execution. These guard the simulator's own overhead — §5.1 argues
//! for full implementation over simulation precisely because "it will be
//! very hard to assess the overheads due to context switching"; our engine
//! must keep per-event costs negligible for that argument to carry.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use dqs_relop::{FanoutAccumulator, HashTableArena, OpSpec, PhysChain, RelId, Tuple};
use dqs_sim::{EventQueue, SimDuration, SimParams, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..10_000u32 {
                    q.schedule(
                        SimTime::from_nanos(((i as u64).wrapping_mul(2654435761)) % 1_000_000),
                        i,
                    );
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("accumulate_100k", |b| {
        b.iter(|| {
            let mut acc = FanoutAccumulator::new(1.37);
            let mut total = 0u64;
            for _ in 0..100_000 {
                total += acc.next();
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_hash_table(c: &mut Criterion) {
    let params = SimParams::default();
    let mut g = c.benchmark_group("hash_table");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("build_10k", |b| {
        b.iter(|| {
            let mut arena = HashTableArena::new();
            let ht = arena.alloc();
            let mut chain = PhysChain::compile(&[OpSpec::Build { table: ht }]);
            let tuples: Vec<Tuple> = (0..10_000).map(|i| Tuple::new(i, RelId(0))).collect();
            black_box(chain.run_batch(&tuples, &mut arena, &params))
        })
    });
    g.bench_function("probe_10k_fanout2", |b| {
        let mut arena = HashTableArena::new();
        let ht = arena.alloc();
        for i in 0..1_000 {
            arena.get_mut(ht).insert(Tuple::new(i, RelId(0)));
        }
        arena.get_mut(ht).complete();
        let tuples: Vec<Tuple> = (0..10_000).map(|i| Tuple::new(i, RelId(1))).collect();
        b.iter(|| {
            let mut chain = PhysChain::compile(&[OpSpec::Probe {
                table: ht,
                fanout: 2.0,
            }]);
            black_box(chain.run_batch(&tuples, &mut arena, &params))
        })
    });
    g.finish();
}

fn bench_full_chain(c: &mut Criterion) {
    let params = SimParams::default();
    let mut g = c.benchmark_group("chain");
    g.throughput(Throughput::Elements(128));
    g.bench_function("batch_128_select_probe_build", |b| {
        let mut arena = HashTableArena::new();
        let probed = arena.alloc();
        for i in 0..1_000 {
            arena.get_mut(probed).insert(Tuple::new(i, RelId(0)));
        }
        arena.get_mut(probed).complete();
        let built = arena.alloc();
        let mut chain = PhysChain::compile(&[
            OpSpec::Select { selectivity: 0.8 },
            OpSpec::Probe {
                table: probed,
                fanout: 1.2,
            },
            OpSpec::Build { table: built },
        ]);
        let tuples: Vec<Tuple> = (0..128).map(|i| Tuple::new(i, RelId(1))).collect();
        b.iter(|| black_box(chain.run_batch(&tuples, &mut arena, &params)));
    });
    g.finish();
}

fn bench_delay_models(c: &mut Criterion) {
    use dqs_sim::SeedSplitter;
    use dqs_source::DelayModel;
    let mut g = c.benchmark_group("delay_model");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("uniform_100k_gaps", |b| {
        let model = DelayModel::Uniform {
            mean: SimDuration::from_micros(20),
        };
        b.iter(|| {
            let mut rng = SeedSplitter::new(7).stream("bench");
            let mut acc = SimDuration::ZERO;
            for i in 0..100_000 {
                acc += model.gap(i, &mut rng);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fanout,
    bench_hash_table,
    bench_full_chain,
    bench_delay_models
);
criterion_main!(benches);
