//! Micro-benchmarks of the mediator wire codec: frame encode/decode must
//! stay negligible next to the per-tuple delay models it carries — the
//! §2.1 window protocol on the wire is only faithful if the protocol
//! machinery itself adds no measurable pacing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use dqs_relop::RelId;
use dqs_sim::SimDuration;
use dqs_source::net::{read_frame, Frame};
use dqs_source::DelayModel;

const BATCH: usize = 256;

fn tuple_batch() -> Frame {
    Frame::TupleBatch {
        rel: RelId(3),
        keys: (0..BATCH as u64)
            .map(|i| i.wrapping_mul(2654435761))
            .collect(),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_codec");
    g.throughput(Throughput::Elements(BATCH as u64));
    let frame = tuple_batch();
    g.bench_function("encode_tuple_batch_256", |b| {
        b.iter(|| black_box(frame.encode()))
    });
    let wire = frame.encode();
    g.bench_function("decode_tuple_batch_256", |b| {
        b.iter(|| {
            let f = read_frame(&mut wire.as_slice()).unwrap();
            black_box(f)
        })
    });
    g.finish();
}

fn bench_open_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_codec");
    let open = Frame::Open {
        rel: RelId(0),
        total: 150_000,
        window: 512,
        seed: 42,
        stream: "wrapper:orders".into(),
        delay: DelayModel::Uniform {
            mean: SimDuration::from_micros(100),
        },
        resume_from: 0,
    };
    g.bench_function("open_round_trip", |b| {
        b.iter(|| {
            let wire = open.encode();
            black_box(read_frame(&mut wire.as_slice()).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_open_round_trip);
criterion_main!(benches);
