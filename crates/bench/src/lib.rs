//! # dqs-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) plus
//! the ablation studies listed in `DESIGN.md`. The `repro` binary prints
//! the same rows/series the paper reports; the Criterion benches measure
//! the harness itself.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod fingerprint;
pub mod runner;

pub use runner::{
    run_once, run_once_with_phases, run_repeated, run_repeated_serial, PhaseStat, PhaseStats,
    StrategyKind, SEEDS,
};
