//! Strategy dispatch and repeated-run averaging.

use dqs_core::DsePolicy;
use dqs_exec::{run_workload, MaPolicy, RunMetrics, ScramblingPolicy, SeqPolicy, Workload};
use dqs_sim::stats;

/// The paper repeats each measurement 3 times and averages (§5.1.3); these
/// are the seeds used.
pub const SEEDS: [u64; 3] = [101, 202, 303];

/// Which execution strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Classical iterator model.
    Seq,
    /// Materialize-All of [1].
    Ma,
    /// Query scrambling (phase 1 of [1]/[2]) — the timeout-reactive
    /// related work the paper argues against.
    Scr,
    /// The paper's Dynamic Scheduling Execution.
    Dse,
}

impl StrategyKind {
    /// The paper's §5 comparison set, in presentation order.
    pub const ALL: [StrategyKind; 3] = [StrategyKind::Seq, StrategyKind::Ma, StrategyKind::Dse];

    /// The comparison set extended with the scrambling baseline.
    pub const WITH_SCR: [StrategyKind; 4] = [
        StrategyKind::Seq,
        StrategyKind::Ma,
        StrategyKind::Scr,
        StrategyKind::Dse,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Seq => "SEQ",
            StrategyKind::Ma => "MA",
            StrategyKind::Scr => "SCR",
            StrategyKind::Dse => "DSE",
        }
    }
}

/// Execute `workload` once under `strategy`.
pub fn run_once(workload: &Workload, strategy: StrategyKind) -> RunMetrics {
    match strategy {
        StrategyKind::Seq => run_workload(workload, SeqPolicy),
        StrategyKind::Ma => run_workload(workload, MaPolicy::default()),
        StrategyKind::Scr => run_workload(workload, ScramblingPolicy::new()),
        StrategyKind::Dse => run_workload(workload, DsePolicy::new()),
    }
}

/// Run `workload` under `strategy` for each seed in [`SEEDS`] and return
/// `(mean response seconds, std dev, last metrics)`.
pub fn run_repeated(workload: &Workload, strategy: StrategyKind) -> (f64, f64, RunMetrics) {
    let mut secs = Vec::with_capacity(SEEDS.len());
    let mut last = None;
    for &seed in &SEEDS {
        let w = workload.clone().with_seed(seed);
        let m = run_once(&w, strategy);
        secs.push(m.response_secs());
        last = Some(m);
    }
    (
        stats::mean(&secs),
        stats::stddev(&secs),
        last.expect("at least one seed"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(StrategyKind::Seq.name(), "SEQ");
        assert_eq!(StrategyKind::Ma.name(), "MA");
        assert_eq!(StrategyKind::Dse.name(), "DSE");
        assert_eq!(StrategyKind::ALL.len(), 3);
    }
}
