//! Strategy dispatch, per-phase statistics and repeated-run averaging.

use dqs_core::DsePolicy;
use dqs_exec::{
    run_workload, run_workload_observed, EngineEvent, EngineObserver, Interrupt, MaPolicy,
    RunMetrics, ScramblingPolicy, SeqPolicy, SpmPolicy, TaskCtx, WorkerPool, Workload,
};
use dqs_sim::{stats, SimTime};

/// The paper repeats each measurement 3 times and averages (§5.1.3); these
/// are the seeds used.
pub const SEEDS: [u64; 3] = [101, 202, 303];

/// Which execution strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Classical iterator model.
    Seq,
    /// Materialize-All of \[1\].
    Ma,
    /// Query scrambling (phase 1 of \[1\]/\[2\]) — the timeout-reactive
    /// related work the paper argues against.
    Scr,
    /// The paper's Dynamic Scheduling Execution.
    Dse,
    /// Online source-permutation scheduling (arXiv 1503.08400): drain
    /// order re-permuted from live observed delivery rates.
    Spm,
}

impl StrategyKind {
    /// The paper's §5 comparison set, in presentation order.
    pub const ALL: [StrategyKind; 3] = [StrategyKind::Seq, StrategyKind::Ma, StrategyKind::Dse];

    /// The comparison set extended with the scrambling baseline.
    pub const WITH_SCR: [StrategyKind; 4] = [
        StrategyKind::Seq,
        StrategyKind::Ma,
        StrategyKind::Scr,
        StrategyKind::Dse,
    ];

    /// The full modern comparison set: the paper's strategies plus the
    /// adaptive SPM extension.
    pub const WITH_SPM: [StrategyKind; 5] = [
        StrategyKind::Seq,
        StrategyKind::Ma,
        StrategyKind::Scr,
        StrategyKind::Dse,
        StrategyKind::Spm,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Seq => "SEQ",
            StrategyKind::Ma => "MA",
            StrategyKind::Scr => "SCR",
            StrategyKind::Dse => "DSE",
            StrategyKind::Spm => "SPM",
        }
    }
}

/// Aggregates for one scheduling phase (the stretch of execution between
/// two planning events, §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// The interruption that opened this phase.
    pub why: Interrupt,
    /// Fragments in the scheduling plan the phase ran under.
    pub sp_len: usize,
    /// Virtual time the phase started.
    pub start: SimTime,
    /// Virtual time the phase ended (next planning event, or run end).
    pub end: SimTime,
    /// Batches processed during the phase.
    pub batches: u64,
    /// Input tuples those batches consumed.
    pub tuples_in: u64,
    /// Result tuples delivered to the query output.
    pub output: u64,
    /// Times the DQP entered a stall.
    pub stalls: u64,
    /// Memory reservations denied.
    pub mem_denied: u64,
}

/// [`EngineObserver`] that folds the event stream into one [`PhaseStat`]
/// per scheduling phase — what the bench harness reports per run.
#[derive(Debug, Default)]
pub struct PhaseStats {
    /// Completed phases, in execution order.
    pub phases: Vec<PhaseStat>,
}

impl PhaseStats {
    /// Close the trailing phase at `end` and return all phases.
    pub fn finish(mut self, end: SimTime) -> Vec<PhaseStat> {
        if let Some(p) = self.phases.last_mut() {
            p.end = end;
        }
        self.phases
    }
}

impl EngineObserver for PhaseStats {
    fn on_event(&mut self, at: SimTime, ev: &EngineEvent<'_>) {
        if let EngineEvent::PlanComputed { why, sp } = ev {
            if let Some(prev) = self.phases.last_mut() {
                prev.end = at;
            }
            self.phases.push(PhaseStat {
                why: *why,
                sp_len: sp.len(),
                start: at,
                end: at,
                batches: 0,
                tuples_in: 0,
                output: 0,
                stalls: 0,
                mem_denied: 0,
            });
            return;
        }
        let Some(p) = self.phases.last_mut() else {
            return; // events before the initial plan (arrivals) have no phase
        };
        match ev {
            EngineEvent::BatchStart { tuples, .. } => {
                p.batches += 1;
                p.tuples_in += tuples;
            }
            EngineEvent::BatchDone { output, .. } => p.output += output,
            EngineEvent::Stalled => p.stalls += 1,
            EngineEvent::MemoryDenied { .. } => p.mem_denied += 1,
            _ => {}
        }
    }
}

fn dispatch<O: EngineObserver>(workload: &Workload, strategy: StrategyKind, obs: O) -> RunMetrics {
    match strategy {
        StrategyKind::Seq => run_workload_observed(workload, SeqPolicy, obs),
        StrategyKind::Ma => run_workload_observed(workload, MaPolicy::default(), obs),
        StrategyKind::Scr => run_workload_observed(workload, ScramblingPolicy::new(), obs),
        StrategyKind::Dse => run_workload_observed(workload, DsePolicy::new(), obs),
        StrategyKind::Spm => run_workload_observed(workload, SpmPolicy::new(), obs),
    }
}

/// Execute `workload` once under `strategy`.
pub fn run_once(workload: &Workload, strategy: StrategyKind) -> RunMetrics {
    match strategy {
        StrategyKind::Seq => run_workload(workload, SeqPolicy),
        StrategyKind::Ma => run_workload(workload, MaPolicy::default()),
        StrategyKind::Scr => run_workload(workload, ScramblingPolicy::new()),
        StrategyKind::Dse => run_workload(workload, DsePolicy::new()),
        StrategyKind::Spm => run_workload(workload, SpmPolicy::new()),
    }
}

/// Execute `workload` once under `strategy`, also returning per-phase
/// statistics folded from the structured event stream.
pub fn run_once_with_phases(
    workload: &Workload,
    strategy: StrategyKind,
) -> (RunMetrics, Vec<PhaseStat>) {
    let mut stats = PhaseStats::default();
    let m = dispatch(workload, strategy, &mut stats);
    let end = SimTime::ZERO + m.response_time;
    (m, stats.finish(end))
}

/// Run `workload` under `strategy` for each seed in [`SEEDS`] and return
/// `(mean response seconds, std dev, last metrics)`.
///
/// Seeds run as tasks on the process-wide [`WorkerPool`] — the simulation
/// is a pure function of the workload and the pool gathers results in
/// submission order, so the results are identical to running them
/// back-to-back (asserted by `parallel_seeds_match_serial`). Riding the
/// shared pool instead of ad-hoc scoped threads means bench repetitions
/// and morsel execution draw from the same bounded worker set.
pub fn run_repeated(workload: &Workload, strategy: StrategyKind) -> (f64, f64, RunMetrics) {
    let tasks: Vec<_> = SEEDS
        .iter()
        .map(|&seed| {
            let w = workload.clone().with_seed(seed);
            move |_ctx: TaskCtx| run_once(&w, strategy)
        })
        .collect();
    summarize(WorkerPool::global().execute(tasks))
}

/// Serial reference for [`run_repeated`]; same results, one seed at a time.
pub fn run_repeated_serial(workload: &Workload, strategy: StrategyKind) -> (f64, f64, RunMetrics) {
    let metrics = SEEDS
        .iter()
        .map(|&seed| run_once(&workload.clone().with_seed(seed), strategy))
        .collect();
    summarize(metrics)
}

fn summarize(metrics: Vec<RunMetrics>) -> (f64, f64, RunMetrics) {
    let secs: Vec<f64> = metrics.iter().map(RunMetrics::response_secs).collect();
    (
        stats::mean(&secs),
        stats::stddev(&secs),
        metrics.into_iter().last().expect("at least one seed"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(StrategyKind::Seq.name(), "SEQ");
        assert_eq!(StrategyKind::Ma.name(), "MA");
        assert_eq!(StrategyKind::Dse.name(), "DSE");
        assert_eq!(StrategyKind::ALL.len(), 3);
    }

    #[test]
    fn parallel_seeds_match_serial() {
        let (w, _) = Workload::fig5();
        for strategy in [StrategyKind::Seq, StrategyKind::Dse] {
            let (mean_p, sd_p, last_p) = run_repeated(&w, strategy);
            let (mean_s, sd_s, last_s) = run_repeated_serial(&w, strategy);
            assert_eq!(mean_p.to_bits(), mean_s.to_bits());
            assert_eq!(sd_p.to_bits(), sd_s.to_bits());
            assert_eq!(last_p, last_s);
        }
    }

    #[test]
    fn phase_stats_cover_the_run() {
        let (w, _) = Workload::fig5();
        let (m, phases) = run_once_with_phases(&w, StrategyKind::Dse);
        assert_eq!(phases.len() as u64, m.plans, "one PhaseStat per plan");
        assert_eq!(
            phases.iter().map(|p| p.batches).sum::<u64>(),
            m.batches,
            "every batch lands in exactly one phase"
        );
        assert_eq!(
            phases.iter().map(|p| p.output).sum::<u64>(),
            m.output_tuples
        );
        assert_eq!(phases[0].why, Interrupt::Start);
        // Phases are contiguous and ordered.
        for pair in phases.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(phases.last().unwrap().end, SimTime::ZERO + m.response_time);
    }
}
