//! Run fingerprinting for the cross-driver parity suite.
//!
//! A fingerprint captures *everything* a run reports — every
//! [`RunMetrics`] field rendered into one canonical string, plus an
//! FNV-1a 64 hash over the byte stream the JSON-lines event sink emits.
//! Two engines produce the same fingerprint only if their metrics are
//! bit-identical *and* they emitted the same structured events with the
//! same payloads at the same virtual times.
//!
//! The `parity_gold` binary prints the golden table for the workloads in
//! [`parity_workloads`]; `tests/driver_parity.rs` holds the captured
//! constants and asserts the refactored engine still matches them.

use std::io::Write;

use dqs_core::{lwb, DsePolicy};
use dqs_exec::{
    combine, run_workload_observed, JsonLinesSink, MaPolicy, RunMetrics, ScramblingPolicy,
    SeqPolicy, SingleQuery, SpmPolicy, Workload,
};
use dqs_plan::{Catalog, QepBuilder};
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

use crate::StrategyKind;

/// A [`Write`] sink that folds every byte into an FNV-1a 64 hash —
/// streaming, allocation-free, and stable across platforms.
#[derive(Debug)]
pub struct FnvWriter {
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl FnvWriter {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> FnvWriter {
        FnvWriter { hash: FNV_OFFSET }
    }

    /// The accumulated hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

impl Default for FnvWriter {
    fn default() -> Self {
        FnvWriter::new()
    }
}

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for &b in buf {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Render every [`RunMetrics`] field into one canonical line. Any change
/// to any field — times in exact nanoseconds — changes the string.
pub fn metrics_signature(m: &RunMetrics) -> String {
    let qr: Vec<String> = m
        .query_responses
        .iter()
        .map(|(q, t)| format!("{q}:{}", t.as_nanos()))
        .collect();
    format!(
        "{} seed={} rt={} out={} cpu={} disk={} pw={} pr={} seeks={} stall={} \
         batches={} plans={} eoq={} rc={} to={} mo={} deg={} hw={} ev={} qr=[{}]",
        m.strategy,
        m.seed,
        m.response_time.as_nanos(),
        m.output_tuples,
        m.cpu_busy.as_nanos(),
        m.disk_busy.as_nanos(),
        m.pages_written,
        m.pages_read,
        m.seeks,
        m.stall_time.as_nanos(),
        m.batches,
        m.plans,
        m.end_of_qf,
        m.rate_changes,
        m.timeouts,
        m.memory_overflows,
        m.degradations,
        m.memory_high_water,
        m.events,
        qr.join(","),
    )
}

/// Execute `workload` under `strategy` with a hashing JSON-lines sink
/// attached; returns the canonical metrics line and the event-stream hash.
pub fn fingerprint_run(workload: &Workload, strategy: StrategyKind) -> (String, u64) {
    let mut sink = JsonLinesSink::new(FnvWriter::new());
    let m = match strategy {
        StrategyKind::Seq => run_workload_observed(workload, SeqPolicy, &mut sink),
        StrategyKind::Ma => run_workload_observed(workload, MaPolicy::default(), &mut sink),
        StrategyKind::Scr => run_workload_observed(workload, ScramblingPolicy::new(), &mut sink),
        StrategyKind::Dse => run_workload_observed(workload, DsePolicy::new(), &mut sink),
        StrategyKind::Spm => run_workload_observed(workload, SpmPolicy::new(), &mut sink),
    };
    let hash = sink.finish().expect("hashing sink cannot fail").hash();
    (metrics_signature(&m), hash)
}

/// Canonical line for the analytic LWB of `workload` (the fifth
/// "strategy" of the parity suite — it never executes, so its fingerprint
/// is its exact bound decomposition).
pub fn lwb_signature(workload: &Workload) -> String {
    let l = lwb(workload);
    format!(
        "LWB bound={} cpu={} retr={}",
        l.bound().as_nanos(),
        l.cpu_work.as_nanos(),
        l.max_retrieval.as_nanos()
    )
}

/// A bushy four-relation workload with one slow wrapper and one initial
/// delay longer than the stall timeout — exercises degradation (MF/CF),
/// rate-change interrupts, and the scrambling policy's timeout path.
pub fn mix_workload() -> Workload {
    let mut cat = Catalog::new();
    let a = cat.add("A", 3_000);
    let b = cat.add("B", 2_000);
    let c = cat.add("C", 1_500);
    let d = cat.add("D", 800);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 0.8);
    let sb = qb.scan(b, 1.0);
    let sc = qb.scan(c, 0.5);
    let sd = qb.scan(d, 1.0);
    let j1 = qb.hash_join(sa, sb, 1.5);
    let j2 = qb.hash_join(sc, sd, 2.0);
    let j3 = qb.hash_join(j1, j2, 1.0);
    Workload::new(cat, qb.finish(j3).unwrap())
        .with_delay(
            a,
            DelayModel::Uniform {
                mean: SimDuration::from_micros(300),
            },
        )
        .with_delay(
            c,
            DelayModel::Initial {
                initial: SimDuration::from_secs(3),
                mean: SimDuration::from_micros(20),
            },
        )
}

/// A two-query forest (§6 multi-query packing) so the parity suite also
/// covers multi-root scheduling and per-query response accounting.
pub fn forest_workload() -> Workload {
    let query = |card: u64| {
        let mut cat = Catalog::new();
        let a = cat.add("A", card);
        let b = cat.add("B", card / 2);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j = qb.hash_join(sa, sb, 1.0);
        let w = Workload::new(cat, qb.finish(j).unwrap());
        SingleQuery::from_workload(&w)
    };
    combine(
        &[query(1_200), query(2_400)],
        dqs_exec::EngineConfig::default(),
    )
}

/// The parity matrix's workloads: figure 5, the degradation-heavy mix at
/// three seeds, and a two-query forest.
pub fn parity_workloads() -> Vec<(String, Workload)> {
    let mut v = Vec::new();
    let (fig5, _) = Workload::fig5();
    v.push(("fig5/s42".to_string(), fig5.with_seed(42)));
    for seed in [1u64, 7, 42] {
        v.push((format!("mix/s{seed}"), mix_workload().with_seed(seed)));
    }
    v.push(("forest/s7".to_string(), forest_workload().with_seed(7)));
    v
}
