//! Prints the golden fingerprint table for the cross-driver parity suite.
//!
//! Run this on a known-good engine; paste the output into
//! `tests/driver_parity.rs`. Each row is
//! `(workload, strategy, metrics-signature, event-stream FNV hash)`.

use dqs_bench::fingerprint::{fingerprint_run, lwb_signature, parity_workloads};
use dqs_bench::StrategyKind;

fn main() {
    println!("const GOLDEN: &[(&str, &str, &str, u64)] = &[");
    for (name, w) in parity_workloads() {
        for s in StrategyKind::WITH_SCR {
            let (sig, hash) = fingerprint_run(&w, s);
            println!("    ({name:?}, {:?}, {sig:?}, {hash:#018x}),", s.name());
        }
        println!("    ({name:?}, \"lwb\", {:?}, 0x0),", lwb_signature(&w));
    }
    println!("];");
}
