//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro <command>
//!
//!   table1          Table 1 simulation parameters
//!   figure5         the experiment QEP and its pipeline chains
//!   headline        SEQ/MA/DSE/LWB at w_min (sanity row)
//!   figure6         slow down relation A (Figure 6)
//!   figure7         slow down relation F (Figure 7)
//!   figure6-all     slow down each relation in turn (§5.2)
//!   figure8         raise w_min for all wrappers (Figure 8)
//!   delay-taxonomy  initial / bursty / slow delays (§1.2) under all strategies
//!   memory          shrinking memory budgets (§4.1/§4.2)
//!   multi-query     N concurrent queries: throughput vs response (§6)
//!   cache           wrapper result cache cold vs warm (writes BENCH_cache.json)
//!   failover        kill a replica mid-scan vs clean run (writes BENCH_failover.json)
//!   morsel          worker-pool scaling on a probe-heavy spec (writes BENCH_morsel.json)
//!   spm             online source permutation vs baselines (writes BENCH_spm.json)
//!   refresh         budgeted refresh under a write burst (writes BENCH_refresh.json)
//!   workload        Zipf/Poisson replay + fifo-vs-sjf A/B (writes BENCH_workload.json)
//!   scrambling      query scrambling baseline + timeout sweep (§1.2)
//!   ablate-bmt      benefit-materialization threshold sweep (A1)
//!   ablate-batch    DQP batch-size sweep (A2)
//!   ablate-queue    queue-capacity sweep (A3)
//!   ablate-dse      DSE feature knock-outs (A6)
//!   ablate-rate     RateChange threshold sweep
//!   all             everything above, in order
//! ```

use dqs_bench::experiments as ex;

/// Optional `--csv <path>` after the command writes machine-readable data
/// for the plottable figures.
fn csv_target() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned())
}

fn maybe_write_csv(csv: &Option<String>, data: String) {
    if let Some(path) = csv {
        std::fs::write(path, data).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("csv written to {path}");
    }
}

fn run(cmd: &str) -> bool {
    let csv = csv_target();
    match cmd {
        "table1" => print!("{}", ex::table1()),
        "figure5" => print!("{}", ex::figure5()),
        "headline" => print!("{}", ex::headline()),
        "figure6" => {
            let rows = ex::slowdown_sweep('A');
            print!("{}", ex::render_slowdown('A', &rows));
            maybe_write_csv(&csv, ex::slowdown_csv(&rows));
        }
        "figure7" => {
            let rows = ex::slowdown_sweep('F');
            print!("{}", ex::render_slowdown('F', &rows));
            maybe_write_csv(&csv, ex::slowdown_csv(&rows));
        }
        "figure6-all" => {
            for letter in dqs_plan::Fig5::letters() {
                let rows = ex::slowdown_sweep(letter);
                print!("{}", ex::render_slowdown(letter, &rows));
                println!();
            }
        }
        "figure8" => {
            let rows = ex::figure8();
            print!("{}", ex::render_figure8(&rows));
            maybe_write_csv(&csv, ex::figure8_csv(&rows));
        }
        "delay-taxonomy" => print!("{}", ex::delay_taxonomy()),
        "memory" => print!("{}", ex::memory_pressure()),
        "multi-query" => print!("{}", ex::multi_query()),
        "cache" => {
            let report = ex::cache_experiment();
            print!("{}", ex::render_cache(&report));
            let path = csv.unwrap_or_else(|| "BENCH_cache.json".into());
            std::fs::write(&path, ex::cache_json(&report)).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("json written to {path}");
        }
        "failover" => {
            let report = ex::failover_experiment();
            print!("{}", ex::render_failover(&report));
            let path = csv.unwrap_or_else(|| "BENCH_failover.json".into());
            std::fs::write(&path, ex::failover_json(&report)).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("json written to {path}");
        }
        "morsel" => {
            let report = ex::morsel_experiment();
            print!("{}", ex::render_morsel(&report));
            let path = csv.unwrap_or_else(|| "BENCH_morsel.json".into());
            std::fs::write(&path, ex::morsel_json(&report)).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("json written to {path}");
        }
        "spm" => {
            let report = ex::spm_experiment();
            print!("{}", ex::render_spm(&report));
            let path = csv.unwrap_or_else(|| "BENCH_spm.json".into());
            std::fs::write(&path, ex::spm_json(&report)).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("json written to {path}");
        }
        "refresh" => {
            let report = ex::refresh_experiment();
            print!("{}", ex::render_refresh(&report));
            let path = csv.unwrap_or_else(|| "BENCH_refresh.json".into());
            std::fs::write(&path, ex::refresh_json(&report)).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("json written to {path}");
        }
        "workload" => {
            let report = ex::workload_experiment();
            print!("{}", ex::render_workload(&report));
            let path = csv.unwrap_or_else(|| "BENCH_workload.json".into());
            std::fs::write(&path, ex::workload_json(&report)).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("json written to {path}");
        }
        "scrambling" => print!("{}", ex::scrambling()),
        "ablate-bmt" => print!("{}", ex::ablate_bmt()),
        "ablate-batch" => print!("{}", ex::ablate_batch()),
        "ablate-queue" => print!("{}", ex::ablate_queue()),
        "ablate-dse" => print!("{}", ex::ablate_dse_features()),
        "ablate-rate" => print!("{}", ex::ablate_rate()),
        "all" => {
            for c in [
                "table1",
                "figure5",
                "headline",
                "figure6",
                "figure7",
                "figure6-all",
                "figure8",
                "delay-taxonomy",
                "memory",
                "multi-query",
                "cache",
                "failover",
                "morsel",
                "spm",
                "refresh",
                "workload",
                "scrambling",
                "ablate-bmt",
                "ablate-batch",
                "ablate-queue",
                "ablate-dse",
                "ablate-rate",
            ] {
                println!("===== {c} =====");
                run(c);
                println!();
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "help".into());
    if cmd == "help" || !run(&cmd) {
        eprint!(
            "usage: repro <command>\n\
             commands: table1 figure5 headline figure6 figure7 figure6-all figure8\n\
             \u{20}         delay-taxonomy memory multi-query cache failover morsel spm refresh workload scrambling ablate-bmt\n\
             \u{20}         ablate-batch\n\
             \u{20}         ablate-queue\n\
             \u{20}         ablate-dse ablate-rate all\n"
        );
        std::process::exit(2);
    }
}
