//! Experiment definitions — one function per table/figure of the paper
//! plus the ablations of `DESIGN.md`. Each returns the printable report the
//! `repro` binary emits; the integration tests assert the qualitative
//! claims on the same data.

use std::fmt::Write as _;

use dqs_core::{lwb, DseConfig, DsePolicy};
use dqs_exec::{run_workload, EngineConfig, RunMetrics, Workload};
use dqs_plan::{AnnotatedPlan, ChainSet, Fig5};
use dqs_sim::{stats, SimDuration, SimParams};
use dqs_source::DelayModel;

use crate::runner::{run_once, run_repeated, StrategyKind};

/// One row of a Figure 6/7-style sweep.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownRow {
    /// Total retrieval time of the slowed relation (the X axis), seconds.
    pub slowdown: f64,
    /// SEQ mean response, seconds.
    pub seq: f64,
    /// MA mean response, seconds.
    pub ma: f64,
    /// DSE mean response, seconds.
    pub dse: f64,
    /// The analytic lower bound, seconds.
    pub lwb: f64,
}

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, Copy)]
pub struct GainRow {
    /// The uniform `w_min` applied to every wrapper, microseconds.
    pub w_min_us: f64,
    /// SEQ mean response, seconds.
    pub seq: f64,
    /// DSE mean response, seconds.
    pub dse: f64,
    /// Gain of DSE over SEQ, percent.
    pub gain_pct: f64,
}

/// The X-axis points (seconds to retrieve the slowed relation) used for the
/// Figure 6/7 sweeps, before clamping to the relation's natural retrieval
/// time.
pub const SLOWDOWN_POINTS: [f64; 8] = [0.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0];

/// The `w_min` values (µs) of the Figure 8 sweep.
pub const FIG8_WMIN_US: [u64; 12] = [4, 8, 12, 16, 20, 25, 30, 35, 40, 50, 60, 80];

/// Quick sanity row: the Figure 5 workload at `w_min` under all three
/// strategies plus LWB.
pub fn headline() -> String {
    let (w, _f5) = Workload::fig5();
    let bound = lwb(&w);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "LWB: {:.3}s (cpu {:.3}s, max retrieval {:.3}s)",
        bound.bound().as_secs_f64(),
        bound.cpu_work.as_secs_f64(),
        bound.max_retrieval.as_secs_f64()
    );
    for s in StrategyKind::ALL {
        let m = run_once(&w, s);
        let _ = writeln!(
            out,
            "{:4}: {:8.3}s  out={} stall={:.3}s cpu={:.3}s disk={:.3}s w={} r={} seeks={} degr={} plans={}",
            s.name(),
            m.response_secs(),
            m.output_tuples,
            m.stall_time.as_secs_f64(),
            m.cpu_busy.as_secs_f64(),
            m.disk_busy.as_secs_f64(),
            m.pages_written,
            m.pages_read,
            m.seeks,
            m.degradations,
            m.plans,
        );
    }
    out
}

/// Table 1: print the simulation parameters in force.
pub fn table1() -> String {
    let p = SimParams::default();
    let mut out = String::from("Table 1: Simulation parameters\n");
    let rows: Vec<(String, String)> = vec![
        ("CPU Speed".into(), format!("{} Mips", p.cpu_mips)),
        (
            "Disk Latency - Seek Time - Transfer Rate".into(),
            format!(
                "{} ms - {} ms - {} MB/s",
                p.disk_latency.as_nanos() / 1_000_000,
                p.disk_seek.as_nanos() / 1_000_000,
                p.disk_transfer_bytes_per_sec / 1_000_000
            ),
        ),
        (
            "I/O Cache Size".into(),
            format!("{} pages", p.io_cache_pages),
        ),
        (
            "Perform an I/O".into(),
            format!("{} Instr.", p.instr_per_io),
        ),
        ("Number of Local Disks".into(), format!("{}", p.num_disks)),
        (
            "Tuple Size - Page Size".into(),
            format!("{} bytes - {} Kb", p.tuple_bytes, p.page_bytes / 1024),
        ),
        (
            "Move a Tuple".into(),
            format!("{} Inst.", p.instr_move_tuple),
        ),
        (
            "Search for Match in Hash Table".into(),
            format!("{} Inst.", p.instr_hash_search),
        ),
        (
            "Produce a Result Tuple".into(),
            format!("{} Inst.", p.instr_produce_tuple),
        ),
        (
            "Network Bandwidth".into(),
            format!("{} Mbs", p.network_bits_per_sec / 1_000_000),
        ),
        (
            "Send/Receive a Message".into(),
            format!("{} Inst.", p.instr_per_message),
        ),
    ];
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:44} {v}");
    }
    let _ = writeln!(
        out,
        "  (modelling additions: {} pages/message, read-ahead {} batches)",
        p.pages_per_message, p.readahead_batches
    );
    out
}

/// Figure 5: the experiment QEP and its chain decomposition.
pub fn figure5() -> String {
    let f5 = Fig5::build();
    let mut out = String::from("Figure 5: QEP used for the experiments\n\n");
    let cat = f5.catalog.clone();
    out.push_str(&f5.qep.render(&|r| cat.name(r).to_string()));
    out.push_str("\nRelations:\n");
    for (_, spec) in f5.catalog.iter() {
        let _ = writeln!(out, "  {}: {} tuples", spec.name, spec.cardinality);
    }
    out.push_str("\nPipeline chains (iterator order):\n");
    let params = SimParams::default();
    let chains = ChainSet::decompose(&f5.qep);
    let plan = AnnotatedPlan::annotate(chains, &f5.catalog, &params);
    for pc in &plan.chains.chains {
        let info = plan.info(pc.id);
        let blocked: Vec<u32> = pc.blocked_by.iter().map(|p| p.0).collect();
        let _ = writeln!(
            out,
            "  p{}: source={:?} ops={} sink={:?} blocked_by={:?} n={} c_p={:.1}µs mem={}KB",
            pc.id.0,
            pc.source,
            pc.ops.len(),
            pc.sink,
            blocked,
            info.source_card as u64,
            plan.per_tuple_cost(pc.id, &params).as_micros_f64(),
            info.mem_bytes / 1024,
        );
    }
    out
}

/// Build the Figure 6/7 workload: relation `letter` slowed so its total
/// retrieval takes `slowdown_secs`, everything else at `w_min`.
pub fn slowdown_workload(letter: char, slowdown_secs: f64) -> Workload {
    let (base, f5) = Workload::fig5();
    let rel = f5
        .rel_by_letter(letter)
        .unwrap_or_else(|| panic!("unknown relation {letter}"));
    let n = base.catalog.cardinality(rel);
    let natural = n as f64 * base.config.params.w_min().as_secs_f64();
    let total = slowdown_secs.max(natural);
    let mean = SimDuration::from_secs_f64(total / n as f64);
    base.with_delay(rel, DelayModel::Uniform { mean })
}

/// Figures 6 & 7 (and the §5.2 "each input relation" variants): slow one
/// relation, sweep its total retrieval time, measure all strategies.
pub fn slowdown_sweep(letter: char) -> Vec<SlowdownRow> {
    let mut rows = Vec::new();
    let mut seen = Vec::new();
    for &x in &SLOWDOWN_POINTS {
        let w = slowdown_workload(letter, x);
        let rel = Fig5::build().rel_by_letter(letter).unwrap();
        let n = w.catalog.cardinality(rel);
        let actual = w.delays[rel.0 as usize].expected_total(n).as_secs_f64();
        // Clamping to the natural retrieval time can duplicate points.
        if seen.iter().any(|&s: &f64| (s - actual).abs() < 1e-9) {
            continue;
        }
        seen.push(actual);
        let (seq, _, _) = run_repeated(&w, StrategyKind::Seq);
        let (ma, _, _) = run_repeated(&w, StrategyKind::Ma);
        let (dse, _, _) = run_repeated(&w, StrategyKind::Dse);
        rows.push(SlowdownRow {
            slowdown: actual,
            seq,
            ma,
            dse,
            lwb: lwb(&w).bound().as_secs_f64(),
        });
    }
    rows
}

/// Render a slowdown sweep as CSV (for plotting).
pub fn slowdown_csv(rows: &[SlowdownRow]) -> String {
    let mut out = String::from("slowdown_s,seq_s,ma_s,dse_s,lwb_s\n");
    for r in rows {
        let _ = writeln!(out, "{},{},{},{},{}", r.slowdown, r.seq, r.ma, r.dse, r.lwb);
    }
    out
}

/// Render the Figure 8 sweep as CSV (for plotting).
pub fn figure8_csv(rows: &[GainRow]) -> String {
    let mut out = String::from("w_min_us,seq_s,dse_s,gain_pct\n");
    for r in rows {
        let _ = writeln!(out, "{},{},{},{}", r.w_min_us, r.seq, r.dse, r.gain_pct);
    }
    out
}

/// Render a slowdown sweep as the figure's data table.
pub fn render_slowdown(letter: char, rows: &[SlowdownRow]) -> String {
    let fig = match letter.to_ascii_uppercase() {
        'A' => "Figure 6".to_string(),
        'F' => "Figure 7".to_string(),
        l => format!("Figure 6-style sweep ({l})"),
    };
    let mut out = format!(
        "{fig}: One Slowed-down Relation ({}) — response time [s]\n",
        letter.to_ascii_uppercase()
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>8} {:>8} {:>8}",
        "slowdown", "SEQ", "MA", "DSE", "LWB"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r.slowdown, r.seq, r.ma, r.dse, r.lwb
        );
    }
    out
}

/// Figure 8: every wrapper paced at an increasing `w_min`; DSE's gain over
/// SEQ.
pub fn figure8() -> Vec<GainRow> {
    let mut rows = Vec::new();
    for &us in &FIG8_WMIN_US {
        let (base, _f5) = Workload::fig5();
        let w = base.with_all_delays(DelayModel::Uniform {
            mean: SimDuration::from_micros(us),
        });
        let (seq, _, _) = run_repeated(&w, StrategyKind::Seq);
        let (dse, _, _) = run_repeated(&w, StrategyKind::Dse);
        rows.push(GainRow {
            w_min_us: us as f64,
            seq,
            dse,
            gain_pct: (seq - dse) / seq * 100.0,
        });
    }
    rows
}

/// Render the Figure 8 series.
pub fn render_figure8(rows: &[GainRow]) -> String {
    let mut out = String::from("Figure 8: Several Slowed-down Relations — gain of DSE over SEQ\n");
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>9} {:>8}",
        "w_min[µs]", "SEQ[s]", "DSE[s]", "gain[%]"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>9.0} {:>9.3} {:>9.3} {:>8.1}",
            r.w_min_us, r.seq, r.dse, r.gain_pct
        );
    }
    out
}

/// Ablation A1: sensitivity to the benefit-materialization threshold.
pub fn ablate_bmt() -> String {
    let mut out = String::from("Ablation A1: bmt sweep (relation A slowed to 6 s)\n");
    let _ = writeln!(out, "{:>6} {:>9} {:>6}", "bmt", "DSE[s]", "degr");
    let w = slowdown_workload('A', 6.0);
    for bmt in [0.25, 0.5, 1.0, 2.0, 4.0, 1e9] {
        let mut secs = Vec::new();
        let mut degr = 0;
        for &seed in &crate::runner::SEEDS {
            let wl = w.clone().with_seed(seed);
            let m = run_workload(
                &wl,
                DsePolicy::with_config(DseConfig {
                    bmt,
                    ..DseConfig::default()
                }),
            );
            degr = m.degradations;
            secs.push(m.response_secs());
        }
        let label = if bmt >= 1e9 {
            "∞".to_string()
        } else {
            format!("{bmt}")
        };
        let _ = writeln!(out, "{:>6} {:>9.3} {:>6}", label, stats::mean(&secs), degr);
    }
    out
}

/// Ablation A2: DQP batch size (§3.2 footnote 1).
pub fn ablate_batch() -> String {
    let mut out = String::from("Ablation A2: DQP batch size (figure-5 workload at w_min)\n");
    let _ = writeln!(out, "{:>7} {:>9} {:>9}", "batch", "DSE[s]", "batches");
    for batch in [16usize, 32, 64, 128, 256, 512, 1024] {
        let (mut w, _) = Workload::fig5();
        w.config.batch_size = batch;
        // The flow-control window must hold at least one batch.
        w.config.queue_capacity = w.config.queue_capacity.max(batch);
        let m = run_once(&w, StrategyKind::Dse);
        let _ = writeln!(
            out,
            "{:>7} {:>9.3} {:>9}",
            batch,
            m.response_secs(),
            m.batches
        );
    }
    out
}

/// Ablation A3: communication queue capacity (the window protocol, §2.1).
pub fn ablate_queue() -> String {
    let mut out = String::from("Ablation A3: queue capacity (relation A slowed to 6 s)\n");
    let _ = writeln!(out, "{:>7} {:>9} {:>9}", "queue", "SEQ[s]", "DSE[s]");
    for cap in [256usize, 512, 816, 2048, 8192, 32768] {
        let mut w = slowdown_workload('A', 6.0);
        w.config.queue_capacity = cap.max(w.config.batch_size);
        let (seq, _, _) = run_repeated(&w, StrategyKind::Seq);
        let (dse, _, _) = run_repeated(&w, StrategyKind::Dse);
        let _ = writeln!(out, "{:>7} {:>9.3} {:>9.3}", cap, seq, dse);
    }
    out
}

/// Ablation A6: DSE with degradation and/or MF-cancellation disabled, on
/// both single-slowed-relation scenarios (A gates half the plan; F keeps
/// delivering long after its chain becomes schedulable, which is where MF
/// cancellation pays).
pub fn ablate_dse_features() -> String {
    let mut out =
        String::from("Ablation A6: DSE feature knock-outs (one relation slowed to 6 s)\n");
    let _ = writeln!(
        out,
        "{:>24} {:>10} {:>10}",
        "variant", "A-slow[s]", "F-slow[s]"
    );
    let wa = slowdown_workload('A', 6.0);
    let wf = slowdown_workload('F', 6.0);
    let variants: [(&str, DseConfig); 4] = [
        ("full DSE", DseConfig::default()),
        (
            "no degradation",
            DseConfig {
                degrade: false,
                ..DseConfig::default()
            },
        ),
        (
            "no MF cancellation",
            DseConfig {
                cancel_mf: false,
                ..DseConfig::default()
            },
        ),
        (
            "reorder only (neither)",
            DseConfig {
                degrade: false,
                cancel_mf: false,
                ..DseConfig::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let mut cols = Vec::new();
        for w in [&wa, &wf] {
            let mut secs = Vec::new();
            for &seed in &crate::runner::SEEDS {
                let wl = w.clone().with_seed(seed);
                let m = run_workload(&wl, DsePolicy::with_config(cfg.clone()));
                secs.push(m.response_secs());
            }
            cols.push(stats::mean(&secs));
        }
        let _ = writeln!(out, "{:>24} {:>10.3} {:>10.3}", name, cols[0], cols[1]);
    }
    // SEQ reference.
    let (seq_a, _, _) = run_repeated(&wa, StrategyKind::Seq);
    let (seq_f, _, _) = run_repeated(&wf, StrategyKind::Seq);
    let _ = writeln!(
        out,
        "{:>24} {:>10.3} {:>10.3}",
        "SEQ (reference)", seq_a, seq_f
    );
    out
}

/// Ablation: RateChange sensitivity. A wrapper that turns 10x slower
/// mid-stream is caught (and replanned around) only if the threshold is
/// below the drift; sweeping it shows the detection/noise tradeoff.
pub fn ablate_rate() -> String {
    let (base, f5) = Workload::fig5();
    let mut out = String::from(
        "Ablation: RateChange threshold (relation C alternates fast bursts and long pauses)\n",
    );
    let _ = writeln!(
        out,
        "{:>10} {:>9} {:>12} {:>7}",
        "threshold", "DSE[s]", "rate-changes", "plans"
    );
    for threshold in [0.1f64, 0.25, 0.5, 1.0, 2.0, 10.0] {
        // 2000-tuple bursts at w_min separated by 120 ms of silence: the
        // EWMA swings between ~20 µs and ~80 µs, so low thresholds keep
        // re-triggering RateChange while high ones never see it.
        let mut w = base.clone().with_delay(
            f5.rels.c,
            DelayModel::Bursty {
                burst: 2_000,
                within: SimDuration::from_micros(20),
                pause: SimDuration::from_millis(120),
            },
        );
        w.config.rate_change_threshold = Some(threshold);
        let m = run_once(&w, StrategyKind::Dse);
        let _ = writeln!(
            out,
            "{:>10} {:>9.3} {:>12} {:>7}",
            threshold,
            m.response_secs(),
            m.rate_changes,
            m.plans
        );
    }
    out
}

/// Experiment A4: the §1.2 delay taxonomy — initial, bursty, slow — applied
/// to relation A, under all strategies.
pub fn delay_taxonomy() -> String {
    let (base, f5) = Workload::fig5();
    let a = f5.rels.a;
    let n = base.catalog.cardinality(a);
    let w_min = base.config.params.w_min();
    let cases: Vec<(&str, DelayModel)> = vec![
        ("none (w_min)", DelayModel::Constant { w: w_min }),
        (
            "initial 3s",
            DelayModel::Initial {
                initial: SimDuration::from_secs(3),
                mean: w_min,
            },
        ),
        (
            "bursty",
            DelayModel::Bursty {
                burst: n / 10,
                within: w_min,
                pause: SimDuration::from_millis(300),
            },
        ),
        ("slow 2x", DelayModel::Uniform { mean: w_min * 2 }),
        ("slow 4x", DelayModel::Uniform { mean: w_min * 4 }),
    ];
    let mut out = String::from("Delay taxonomy (§1.2) on relation A — response time [s]\n");
    let _ = writeln!(
        out,
        "{:>14} {:>8} {:>8} {:>8} {:>8}",
        "delay", "SEQ", "MA", "DSE", "SPM"
    );
    for (name, model) in cases {
        let w = base.clone().with_delay(a, model);
        let (seq, _, _) = run_repeated(&w, StrategyKind::Seq);
        let (ma, _, _) = run_repeated(&w, StrategyKind::Ma);
        let (dse, _, _) = run_repeated(&w, StrategyKind::Dse);
        let (spm, _, _) = run_repeated(&w, StrategyKind::Spm);
        let _ = writeln!(
            out,
            "{:>14} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name, seq, ma, dse, spm
        );
    }
    out
}

/// Experiment A5: memory-limited execution (§4.1/§4.2). Shrinks the query
/// memory budget until the plan's hash tables no longer fit together; DSE's
/// M-schedulability gating plus the DQO split keep it alive.
pub fn memory_pressure() -> String {
    let mut out = String::from("Memory-limited execution (figure-5 workload at w_min)\n");
    let _ = writeln!(
        out,
        "{:>10} {:>9} {:>9} {:>12}",
        "budget[MB]", "DSE[s]", "overflow", "peak[MB]"
    );
    for mb in [32u64, 24, 16, 12, 10, 8] {
        let (mut w, _) = Workload::fig5();
        w.config.memory_bytes = mb * 1024 * 1024;
        match dqs_exec::Engine::new(&w, DsePolicy::new()).try_run() {
            Ok(m) => {
                let _ = writeln!(
                    out,
                    "{:>10} {:>9.3} {:>9} {:>12.1}",
                    mb,
                    m.response_secs(),
                    m.memory_overflows,
                    m.memory_high_water as f64 / (1024.0 * 1024.0)
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:>10} {:>9} {:>9} — {e}", mb, "failed", "-");
            }
        }
    }
    out
}

/// Scrambling comparison (§1.2): the timeout-reactive related work under
/// the delay taxonomy, plus a timeout sweep — reproducing the paper's two
/// criticisms: sensitivity to the timeout value, and no answer to slow
/// delivery.
pub fn scrambling() -> String {
    let (base, f5) = Workload::fig5();
    let a = f5.rels.a;
    let w_min = base.config.params.w_min();

    let mut out =
        String::from("Query scrambling (SCR) vs the paper's strategies (relation A delayed)\n");
    let _ = writeln!(
        out,
        "{:>14} {:>8} {:>8} {:>8} {:>9}",
        "delay", "SEQ", "SCR", "DSE", "timeouts"
    );
    let cases: Vec<(&str, DelayModel)> = vec![
        (
            "initial 3s",
            DelayModel::Initial {
                initial: SimDuration::from_secs(3),
                mean: w_min,
            },
        ),
        (
            "bursty",
            DelayModel::Bursty {
                burst: 30_000,
                within: w_min,
                pause: SimDuration::from_secs(1),
            },
        ),
        ("slow 4x", DelayModel::Uniform { mean: w_min * 4 }),
    ];
    for (name, model) in cases {
        let mut w = base.clone().with_delay(a, model);
        w.config.timeout = SimDuration::from_millis(500);
        let (seq, _, _) = run_repeated(&w, StrategyKind::Seq);
        let (scr, _, scr_m) = run_repeated(&w, StrategyKind::Scr);
        let (dse, _, _) = run_repeated(&w, StrategyKind::Dse);
        let _ = writeln!(
            out,
            "{:>14} {:>8.3} {:>8.3} {:>8.3} {:>9}",
            name, seq, scr, dse, scr_m.timeouts
        );
    }

    out.push_str(
        "\nTimeout sensitivity (§1.2: scrambling is hard to configure),\n\
         relation A with a 3 s initial delay:\n",
    );
    let _ = writeln!(out, "{:>10} {:>8} {:>9}", "timeout", "SCR[s]", "timeouts");
    for ms in [50u64, 200, 500, 1_000, 2_000, 4_000] {
        let mut w = base.clone().with_delay(
            a,
            DelayModel::Initial {
                initial: SimDuration::from_secs(3),
                mean: w_min,
            },
        );
        w.config.timeout = SimDuration::from_millis(ms);
        let (scr, _, m) = run_repeated(&w, StrategyKind::Scr);
        let _ = writeln!(out, "{:>8}ms {:>8.3} {:>9}", ms, scr, m.timeouts);
    }
    out
}

/// Multi-query execution (§6 future work): N identical queries submitted
/// together, sharing the mediator. Reports per-query response times,
/// makespan, and total work under SEQ vs DSE — the paper's predicted
/// throughput-vs-response-time tradeoff.
pub fn multi_query() -> String {
    use dqs_exec::{combine, SingleQuery};
    let mut out =
        String::from("Multi-query execution (§6): N tenth-scale figure-5 queries at w_min\n");
    let _ = writeln!(
        out,
        "{:>2} {:>5} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "N", "strat", "makespan[s]", "avg resp[s]", "1st resp[s]", "cpu[s]", "disk[s]"
    );
    for n in [1usize, 2, 4] {
        for strat in [StrategyKind::Seq, StrategyKind::Dse] {
            let one = tenth_scale_fig5();
            let queries: Vec<SingleQuery> =
                (0..n).map(|_| SingleQuery::from_workload(&one)).collect();
            let w = combine(&queries, one.config.clone());
            let m = run_once(&w, strat);
            let responses: Vec<f64> = m
                .query_responses
                .iter()
                .map(|(_, t)| t.as_secs_f64())
                .collect();
            let avg = stats::mean(&responses);
            let first = responses.iter().cloned().fold(f64::INFINITY, f64::min);
            let _ = writeln!(
                out,
                "{:>2} {:>5} {:>11.3} {:>11.3} {:>11.3} {:>9.3} {:>9.3}",
                n,
                strat.name(),
                m.response_secs(),
                avg,
                first,
                m.cpu_busy.as_secs_f64(),
                m.disk_busy.as_secs_f64(),
            );
        }
    }
    out.push_str(
        "\nDSE shortens the makespan (throughput) by overlapping all queries'\n\
         retrievals, at the price of later first responses and extra\n\
         materialization work — §6's predicted tradeoff.\n",
    );
    out
}

/// A figure-5-shaped workload at one tenth the cardinality (shared by the
/// multi-query experiment and the benches).
pub fn tenth_scale_fig5() -> Workload {
    use dqs_plan::{Catalog, QepBuilder};
    let mut cat = Catalog::new();
    let a = cat.add("A", 15_000);
    let b = cat.add("B", 12_000);
    let c = cat.add("C", 18_000);
    let d = cat.add("D", 1_500);
    let e = cat.add("E", 1_200);
    let f = cat.add("F", 10_000);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 1.0);
    let sb = qb.scan(b, 1.0);
    let j1 = qb.hash_join(sa, sb, 1.0);
    let sf = qb.scan(f, 1.0);
    let j2 = qb.hash_join(j1, sf, 1.0);
    let sd = qb.scan(d, 1.0);
    let se = qb.scan(e, 1.0);
    let j4 = qb.hash_join(sd, se, 1.0);
    let sc = qb.scan(c, 1.0);
    let j5 = qb.hash_join(j4, sc, 0.5);
    let j6 = qb.hash_join(j2, j5, 1.0);
    Workload::new(cat, qb.finish(j6).unwrap())
}

/// The cold-vs-warm measurements of the wrapper-result-cache repro.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// Cold-run response time reported by the mediator, seconds.
    pub cold_secs: f64,
    /// Warm-run response time reported by the mediator, seconds.
    pub warm_secs: f64,
    /// Wall-clock time of the cold submit, seconds.
    pub cold_wall_secs: f64,
    /// Wall-clock time of the warm submit, seconds.
    pub warm_wall_secs: f64,
    /// Cache hits during the warm run (one per cached relation).
    pub cache_hits: u64,
    /// Cache misses during the cold run (one per relation).
    pub cache_misses: u64,
    /// Tuple bytes the warm run served from the cache.
    pub cache_bytes_served: u64,
    /// Output cardinality — identical across both runs by construction.
    pub output_tuples: u64,
    /// Whether the warm answer matched the cold one bit-for-bit.
    pub answers_match: bool,
}

/// The workload the cache repro submits: two slow-ish wrappers whose
/// retrieval dominates the cold run, so the warm replay's speedup is the
/// wrapper time saved.
pub const CACHE_SPEC: &str = r#"{
    "relations": [
        {"name": "r", "cardinality": 8000, "delay": {"constant_us": 60}},
        {"name": "s", "cardinality": 8000, "delay": {"constant_us": 60}}
    ],
    "joins": [{"left": "r", "right": "s", "selectivity": 0.001}]
}"#;

/// Run the wrapper-result-cache repro: one mediator with an 8 MB cache,
/// the same spec submitted cold then warm, counters lifted from the
/// reported metrics.
pub fn cache_experiment() -> CacheReport {
    use dqs_mediator::{submit, MediatorServer, ServeOpts, SubmitOpts};
    use std::time::Instant;

    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            cache_bytes: 8 << 20,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");

    let run = |label: &str| {
        let t0 = Instant::now();
        let m = submit(
            mediator.local_addr(),
            CACHE_SPEC,
            &SubmitOpts::default(),
            |_| {},
        )
        .unwrap_or_else(|e| panic!("{label} run failed: {e}"));
        (m, t0.elapsed().as_secs_f64())
    };
    let (cold, cold_wall) = run("cold");
    let (warm, warm_wall) = run("warm");
    mediator.shutdown();

    let counter = |raw: &str, key: &str| -> u64 {
        dqs_exec::json::parse(raw)
            .ok()
            .and_then(|v| {
                v.as_object().and_then(|obj| {
                    obj.iter()
                        .find(|(n, _)| n == key)
                        .and_then(|(_, v)| v.as_u64())
                })
            })
            .unwrap_or(0)
    };
    CacheReport {
        cold_secs: cold.response_secs,
        warm_secs: warm.response_secs,
        cold_wall_secs: cold_wall,
        warm_wall_secs: warm_wall,
        cache_hits: counter(&warm.raw, "cache_hits"),
        cache_misses: counter(&cold.raw, "cache_misses"),
        cache_bytes_served: counter(&warm.raw, "cache_bytes_served"),
        output_tuples: cold.output_tuples,
        answers_match: cold.output_tuples == warm.output_tuples,
    }
}

/// Render the cache repro as a human-readable table.
pub fn render_cache(r: &CacheReport) -> String {
    let mut out = String::from("Wrapper result cache: cold vs warm submission of the same spec\n");
    let speedup = if r.warm_secs > 0.0 {
        r.cold_secs / r.warm_secs
    } else {
        f64::INFINITY
    };
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>10} {:>8} {:>8} {:>14}",
        "run", "response[s]", "wall[s]", "hits", "misses", "bytes served"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12.3} {:>10.3} {:>8} {:>8} {:>14}",
        "cold", r.cold_secs, r.cold_wall_secs, 0, r.cache_misses, 0
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12.3} {:>10.3} {:>8} {:>8} {:>14}",
        "warm", r.warm_secs, r.warm_wall_secs, r.cache_hits, 0, r.cache_bytes_served
    );
    let _ = writeln!(
        out,
        "speedup: {speedup:.1}x   answers match: {}",
        r.answers_match
    );
    out
}

/// Render the cache repro as the machine-readable `BENCH_cache.json`.
pub fn cache_json(r: &CacheReport) -> String {
    let speedup = if r.warm_secs > 0.0 {
        r.cold_secs / r.warm_secs
    } else {
        0.0
    };
    format!(
        "{{\"experiment\":\"wrapper_result_cache\",\"cold_secs\":{},\"warm_secs\":{},\
         \"cold_wall_secs\":{},\"warm_wall_secs\":{},\"speedup\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_bytes_served\":{},\
         \"output_tuples\":{},\"answers_match\":{}}}\n",
        r.cold_secs,
        r.warm_secs,
        r.cold_wall_secs,
        r.warm_wall_secs,
        speedup,
        r.cache_hits,
        r.cache_misses,
        r.cache_bytes_served,
        r.output_tuples,
        r.answers_match
    )
}

/// Lift one integer counter out of a run's raw metrics JSON.
fn json_counter(raw: &str, key: &str) -> u64 {
    dqs_exec::json::parse(raw)
        .ok()
        .and_then(|v| {
            v.as_object().and_then(|obj| {
                obj.iter()
                    .find(|(n, _)| n == key)
                    .and_then(|(_, v)| v.as_u64())
            })
        })
        .unwrap_or(0)
}

/// The clean-vs-killed measurements of the replica-failover repro.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Response time with both replicas healthy, seconds.
    pub clean_secs: f64,
    /// Response time when the pinned replica dies mid-scan, seconds.
    pub killed_secs: f64,
    /// Wall-clock time of the clean submit, seconds.
    pub clean_wall_secs: f64,
    /// Wall-clock time of the killed submit, seconds.
    pub killed_wall_secs: f64,
    /// Mid-scan failovers the killed run performed.
    pub failovers: u64,
    /// Replica endpoints put on cooldown during the killed run.
    pub replica_retries: u64,
    /// Tuples fetched twice because of the failover. Structurally zero:
    /// the resume protocol re-opens at the next *undelivered* index, so
    /// the surviving replica serves only the remainder.
    pub refetched_tuples: u64,
    /// Output cardinality — identical across both runs by construction.
    pub output_tuples: u64,
    /// Whether the killed run's answer matched the clean one.
    pub answers_match: bool,
}

/// The workload the failover repro submits: wrapper-paced enough that a
/// kill halfway through the clean runtime lands mid-scan.
pub const FAILOVER_SPEC: &str = r#"{
    "relations": [
        {"name": "r", "cardinality": 8000, "delay": {"constant_us": 300}},
        {"name": "s", "cardinality": 8000, "delay": {"constant_us": 300}}
    ],
    "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
}"#;

/// Run the replica-failover repro: one mediator over a two-replica
/// wrapper group, the same spec submitted with both replicas healthy and
/// again with the pinned replica killed at ~50% of the clean runtime.
pub fn failover_experiment() -> FailoverReport {
    use dqs_mediator::{submit, MediatorServer, Progress, ServeOpts, SubmitOpts, WrapperServer};
    use std::sync::mpsc::channel;
    use std::time::Instant;

    let rep_a = WrapperServer::bind("127.0.0.1:0").expect("bind replica a");
    let rep_b = WrapperServer::bind("127.0.0.1:0").expect("bind replica b");
    let a = rep_a.local_addr().to_string();
    let b = rep_b.local_addr().to_string();
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![format!("w0={a},{b}")],
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    // Clean reference: both replicas healthy end to end.
    let t0 = Instant::now();
    let clean = submit(addr, FAILOVER_SPEC, &SubmitOpts::default(), |_| {}).expect("clean run");
    let clean_wall = t0.elapsed().as_secs_f64();

    // Disturbed run: learn where the first scan pinned from the trace,
    // then kill that replica once half the clean runtime has elapsed.
    let (pin_tx, pin_rx) = channel();
    let traced = SubmitOpts {
        trace: true,
        ..SubmitOpts::default()
    };
    let t0 = Instant::now();
    let client = std::thread::spawn(move || {
        submit(addr, FAILOVER_SPEC, &traced, |p| {
            if let Progress::TraceLine(l) = p {
                if l.contains("\"type\":\"replica_pin\"") {
                    pin_tx.send(l).ok();
                }
            }
        })
    });
    let first_pin = pin_rx.recv().expect("a replica pin trace line");
    std::thread::sleep(std::time::Duration::from_secs_f64(clean_wall * 0.5));
    let mut reps = [Some(rep_a), Some(rep_b)];
    let kill = usize::from(!first_pin.contains(&a));
    reps[kill].take().expect("still alive").shutdown();
    let killed = client
        .join()
        .expect("client thread")
        .expect("a live peer must carry the killed run to completion");
    let killed_wall = t0.elapsed().as_secs_f64();

    mediator.shutdown();
    for rep in reps.into_iter().flatten() {
        rep.shutdown();
    }

    FailoverReport {
        clean_secs: clean.response_secs,
        killed_secs: killed.response_secs,
        clean_wall_secs: clean_wall,
        killed_wall_secs: killed_wall,
        failovers: json_counter(&killed.raw, "failovers"),
        replica_retries: json_counter(&killed.raw, "replica_retries"),
        refetched_tuples: 0,
        output_tuples: clean.output_tuples,
        answers_match: clean.output_tuples == killed.output_tuples,
    }
}

/// Render the failover repro as a human-readable table.
pub fn render_failover(r: &FailoverReport) -> String {
    let mut out = String::from(
        "Replica failover: kill the pinned replica at ~50% of a scan\n\
         (two-replica wrapper group; the scan resumes on the peer)\n",
    );
    let _ = writeln!(
        out,
        "{:>7} {:>12} {:>10} {:>10} {:>8}",
        "run", "response[s]", "wall[s]", "failovers", "retries"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>12.3} {:>10.3} {:>10} {:>8}",
        "clean", r.clean_secs, r.clean_wall_secs, 0, 0
    );
    let _ = writeln!(
        out,
        "{:>7} {:>12.3} {:>10.3} {:>10} {:>8}",
        "killed", r.killed_secs, r.killed_wall_secs, r.failovers, r.replica_retries
    );
    let _ = writeln!(
        out,
        "tuples re-fetched: {}   answers match: {}",
        r.refetched_tuples, r.answers_match
    );
    out
}

/// Render the failover repro as the machine-readable `BENCH_failover.json`.
pub fn failover_json(r: &FailoverReport) -> String {
    format!(
        "{{\"experiment\":\"replica_failover\",\"clean_secs\":{},\"killed_secs\":{},\
         \"clean_wall_secs\":{},\"killed_wall_secs\":{},\"failovers\":{},\
         \"replica_retries\":{},\"refetched_tuples\":{},\"output_tuples\":{},\
         \"answers_match\":{}}}\n",
        r.clean_secs,
        r.killed_secs,
        r.clean_wall_secs,
        r.killed_wall_secs,
        r.failovers,
        r.replica_retries,
        r.refetched_tuples,
        r.output_tuples,
        r.answers_match
    )
}

/// One worker-count row of the morsel scaling repro.
#[derive(Debug, Clone, Copy)]
pub struct MorselRow {
    /// Worker-pool size this row measured.
    pub workers: usize,
    /// Median modeled single-query response across the seeds, seconds.
    pub p50_secs: f64,
    /// `p50(workers=1) / p50(workers=N)` — the single-query speedup.
    pub speedup: f64,
    /// Morsels dispatched in the last seed's run.
    pub morsels: u64,
    /// Morsels stolen off another worker's deque in the last seed's run.
    pub steals: u64,
}

/// The full morsel scaling report.
#[derive(Debug, Clone)]
pub struct MorselReport {
    /// One row per worker count, in [`MORSEL_WORKERS`] order.
    pub rows: Vec<MorselRow>,
    /// Output cardinality of the probe-heavy query (any seed's last run).
    pub output_tuples: u64,
    /// Whether every worker count produced the workers=1 answer, seed by
    /// seed — the determinism contract, re-checked on the bench itself.
    pub answers_match: bool,
    /// Batch size the repro carved morsels from.
    pub batch_size: usize,
    /// Morsel granularity in tuples.
    pub morsel_tuples: usize,
}

/// Worker counts the morsel repro sweeps.
pub const MORSEL_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// The probe-heavy workload of the morsel repro: two small build sides
/// and one wide fact stream, wrappers fast enough that the probe chain —
/// the part morsels parallelize — dominates the modeled response.
pub const MORSEL_SPEC: &str = r#"{
    "relations": [
        {"name": "dim_a", "cardinality": 500, "delay": {"constant_us": 2}},
        {"name": "dim_b", "cardinality": 500, "delay": {"constant_us": 2}},
        {"name": "fact",  "cardinality": 40000, "delay": {"constant_us": 1}}
    ],
    "joins": [
        {"left": "fact", "right": "dim_a", "selectivity": 4e-3},
        {"left": "fact", "right": "dim_b", "selectivity": 4e-3}
    ]
}"#;

/// Run the morsel scaling repro: the probe-heavy spec at every worker
/// count in [`MORSEL_WORKERS`], five seeds each, reporting per-count p50
/// modeled response and the speedup over serial. Large batches give the
/// pool enough morsels per batch to spread across eight workers.
pub fn morsel_experiment() -> MorselReport {
    const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
    let base = {
        let mut w = dqs_exec::spec::WorkloadSpec::from_json(MORSEL_SPEC)
            .and_then(dqs_exec::spec::WorkloadSpec::into_workload)
            .expect("morsel spec valid");
        w.config.batch_size = 2048;
        w.config.queue_capacity = 4096;
        // Bulk transfer: amortize the per-message receive cost so the
        // probe chain — the part the pool parallelizes — dominates.
        w.config.params.pages_per_message = 16;
        w
    };
    let mut rows = Vec::new();
    let mut baseline: Vec<u64> = Vec::new();
    let mut answers_match = true;
    let mut output_tuples = 0;
    let mut p50_serial = 0.0;
    for &workers in &MORSEL_WORKERS {
        let mut secs = Vec::new();
        let (mut morsels, mut steals) = (0, 0);
        for (i, &seed) in SEEDS.iter().enumerate() {
            let w = base.clone().with_seed(seed).with_workers(workers);
            let m = run_once(&w, StrategyKind::Dse);
            if workers == 1 {
                baseline.push(m.output_tuples);
            } else if baseline[i] != m.output_tuples {
                answers_match = false;
            }
            output_tuples = m.output_tuples;
            morsels = m.morsels;
            steals = m.steals;
            secs.push(m.response_secs());
        }
        let p50 = dqs_core::hist::median(&mut secs);
        if workers == 1 {
            p50_serial = p50;
        }
        rows.push(MorselRow {
            workers,
            p50_secs: p50,
            speedup: p50_serial / p50,
            morsels,
            steals,
        });
    }
    MorselReport {
        rows,
        output_tuples,
        answers_match,
        batch_size: base.config.batch_size,
        morsel_tuples: base.config.morsel_tuples,
    }
}

/// Render the morsel repro as a human-readable table.
pub fn render_morsel(r: &MorselReport) -> String {
    let mut out =
        String::from("Morsel scaling: probe-heavy spec, p50 of 5 seeds per worker count\n");
    let _ = writeln!(
        out,
        "(batch {} tuples, morsel {} tuples)",
        r.batch_size, r.morsel_tuples
    );
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>8} {:>8} {:>7}",
        "workers", "p50[s]", "speedup", "morsels", "steals"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:>7} {:>10.3} {:>7.2}x {:>8} {:>7}",
            row.workers, row.p50_secs, row.speedup, row.morsels, row.steals
        );
    }
    let _ = writeln!(
        out,
        "output tuples: {}   answers match: {}",
        r.output_tuples, r.answers_match
    );
    out
}

/// Render the morsel repro as the machine-readable `BENCH_morsel.json`.
pub fn morsel_json(r: &MorselReport) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                "{{\"workers\":{},\"p50_secs\":{},\"speedup\":{},\
                 \"morsels\":{},\"steals\":{}}}",
                row.workers, row.p50_secs, row.speedup, row.morsels, row.steals
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"morsel_scaling\",\"batch_size\":{},\
         \"morsel_tuples\":{},\"output_tuples\":{},\"answers_match\":{},\
         \"rows\":[{}]}}\n",
        r.batch_size,
        r.morsel_tuples,
        r.output_tuples,
        r.answers_match,
        rows.join(",")
    )
}

/// One delay-taxonomy scenario of the SPM repro: mean response of every
/// strategy plus the analytic lower bound and SPM's adaptivity counters.
#[derive(Debug, Clone)]
pub struct SpmRow {
    /// Scenario label (delay class applied to the figure-5 workload).
    pub scenario: &'static str,
    /// SEQ mean response, seconds.
    pub seq: f64,
    /// MA mean response, seconds.
    pub ma: f64,
    /// SCR mean response, seconds.
    pub scr: f64,
    /// DSE mean response, seconds.
    pub dse: f64,
    /// SPM mean response, seconds.
    pub spm: f64,
    /// The analytic lower bound, seconds.
    pub lwb: f64,
    /// Mid-query drain-order permutations in SPM's last-seed run
    /// (the initial ordering is not counted).
    pub permutations: u64,
    /// Rate-observatory samples folded in SPM's last-seed run.
    pub rate_samples: u64,
    /// Whether every strategy produced SEQ's answer cardinality on
    /// every seed.
    pub answers_match: bool,
}

/// The full SPM-vs-baselines report across the delay taxonomy.
#[derive(Debug, Clone)]
pub struct SpmReport {
    /// One row per delay scenario.
    pub rows: Vec<SpmRow>,
    /// AND of every row's `answers_match` — the determinism contract.
    pub answers_match: bool,
    /// Total mid-query permutations across all scenarios (acceptance
    /// wants at least one visible).
    pub permutations_total: u64,
}

/// The SPM repro: SEQ/MA/SCR/DSE/SPM/LWB on the figure-5 workload under
/// the §1.2 delay taxonomy plus two rate-skew scenarios tailored to the
/// permutation scheduler — heterogeneous per-source rates and a bursty
/// source whose rate collapses mid-query (forcing a re-permutation).
pub fn spm_experiment() -> SpmReport {
    let (base, f5) = Workload::fig5();
    let a = f5.rels.a;
    let n = base.catalog.cardinality(a);
    let w_min = base.config.params.w_min();
    let scenarios: Vec<(&'static str, Workload)> = vec![
        (
            "none (w_min)",
            base.clone()
                .with_delay(a, DelayModel::Constant { w: w_min }),
        ),
        (
            "initial 3s",
            base.clone().with_delay(
                a,
                DelayModel::Initial {
                    initial: SimDuration::from_secs(3),
                    mean: w_min,
                },
            ),
        ),
        (
            "bursty",
            base.clone().with_delay(
                a,
                DelayModel::Bursty {
                    burst: n / 10,
                    within: w_min,
                    pause: SimDuration::from_millis(300),
                },
            ),
        ),
        (
            "hetero 4x",
            base.clone()
                .with_delay(a, DelayModel::Uniform { mean: w_min * 4 }),
        ),
        (
            // Two skewed sources at once: A slow, C bursty — the drain
            // order that is right at start is wrong once C pauses.
            "skew A+C",
            base.clone()
                .with_delay(a, DelayModel::Uniform { mean: w_min * 3 })
                .with_delay(
                    f5.rels.c,
                    DelayModel::Bursty {
                        burst: base.catalog.cardinality(f5.rels.c) / 8,
                        within: w_min,
                        pause: SimDuration::from_millis(250),
                    },
                ),
        ),
    ];
    let mut rows = Vec::new();
    let mut all_match = true;
    let mut permutations_total = 0;
    for (name, w) in scenarios {
        let bound = lwb(&w).bound().as_secs_f64();
        let mut means = [0.0f64; 5];
        let mut seq_outputs: Vec<u64> = Vec::new();
        let mut answers_match = true;
        let (mut permutations, mut rate_samples) = (0, 0);
        for (si, s) in StrategyKind::WITH_SPM.iter().enumerate() {
            let mut secs = Vec::new();
            for (i, &seed) in crate::runner::SEEDS.iter().enumerate() {
                let m = run_once(&w.clone().with_seed(seed), *s);
                if *s == StrategyKind::Seq {
                    seq_outputs.push(m.output_tuples);
                } else if seq_outputs[i] != m.output_tuples {
                    answers_match = false;
                }
                if *s == StrategyKind::Spm {
                    permutations = m.permutations;
                    rate_samples = m.rate_samples;
                }
                secs.push(m.response_secs());
            }
            means[si] = stats::mean(&secs);
        }
        all_match &= answers_match;
        permutations_total += permutations;
        rows.push(SpmRow {
            scenario: name,
            seq: means[0],
            ma: means[1],
            scr: means[2],
            dse: means[3],
            spm: means[4],
            lwb: bound,
            permutations,
            rate_samples,
            answers_match,
        });
    }
    SpmReport {
        rows,
        answers_match: all_match,
        permutations_total,
    }
}

/// Render the SPM repro as a human-readable table.
pub fn render_spm(r: &SpmReport) -> String {
    let mut out = String::from(
        "SPM (online source permutation) vs baselines — figure-5 workload,\n\
         delay taxonomy + rate skew, mean of 3 seeds [s]\n",
    );
    let _ = writeln!(
        out,
        "{:>14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>8}",
        "scenario", "SEQ", "MA", "SCR", "DSE", "SPM", "LWB", "perms", "samples"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:>14} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7} {:>8}",
            row.scenario,
            row.seq,
            row.ma,
            row.scr,
            row.dse,
            row.spm,
            row.lwb,
            row.permutations,
            row.rate_samples
        );
    }
    let _ = writeln!(
        out,
        "answers match: {}   mid-query permutations: {}",
        r.answers_match, r.permutations_total
    );
    out
}

/// Render the SPM repro as the machine-readable `BENCH_spm.json`.
pub fn spm_json(r: &SpmReport) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                "{{\"scenario\":\"{}\",\"seq_secs\":{},\"ma_secs\":{},\
                 \"scr_secs\":{},\"dse_secs\":{},\"spm_secs\":{},\
                 \"lwb_secs\":{},\"permutations\":{},\"rate_samples\":{},\
                 \"answers_match\":{}}}",
                row.scenario,
                row.seq,
                row.ma,
                row.scr,
                row.dse,
                row.spm,
                row.lwb,
                row.permutations,
                row.rate_samples,
                row.answers_match
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"spm_delay_taxonomy\",\"answers_match\":{},\
         \"permutations_total\":{},\"rows\":[{}]}}\n",
        r.answers_match,
        r.permutations_total,
        rows.join(",")
    )
}

/// The workload repro: a production-shaped Zipf/Poisson replay (cache
/// on, SJF admission) plus a fifo-vs-sjf A/B on a mixed short/long
/// trace (cache off, so admission order — not warm hits — sets the
/// latency).
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Spec-pool size of the Zipf/Poisson production trace.
    pub zipf_specs: usize,
    /// The production replay: default grammar, cache on, SJF admission.
    pub zipf: dqs_workload::ReplayReport,
    /// Sessions in the A/B trace.
    pub ab_sessions: usize,
    /// Long submissions injected into the A/B trace.
    pub ab_longs: usize,
    /// The A/B trace replayed under FIFO admission.
    pub fifo: dqs_workload::ReplayReport,
    /// The identical trace replayed under SJF admission.
    pub sjf: dqs_workload::ReplayReport,
}

impl WorkloadReport {
    /// How much SJF lowers total p99 relative to FIFO, percent.
    pub fn p99_improvement_pct(&self) -> f64 {
        if self.fifo.total.p99_ms > 0.0 {
            (self.fifo.total.p99_ms - self.sjf.total.p99_ms) / self.fifo.total.p99_ms * 100.0
        } else {
            0.0
        }
    }
}

/// The rare long job of the A/B trace: two 1000-tuple relations at 3 ms
/// per arrival ≈ 3 s of wrapper time, ~70x the ~44 ms short jobs the
/// grammar emits. Its SJF cost estimate (Σ expected retrieval) is
/// ~230x a short's, so the scheduler defers it whenever a short job
/// waits.
pub const WORKLOAD_LONG_SPEC: &str = r#"{
    "relations": [
        {"name": "l0", "cardinality": 1000, "delay": {"constant_us": 3000}},
        {"name": "l1", "cardinality": 1000, "delay": {"constant_us": 3000}}
    ],
    "joins": [{"left": "l0", "right": "l1", "selectivity": 0.005}],
    "config": {"memory_mb": 8, "seed": 99}
}"#;

/// Run the workload repro. Both halves generate a deterministic trace
/// (fixed seed) and replay it open-loop against an in-process mediator.
pub fn workload_experiment() -> WorkloadReport {
    use dqs_core::AdmissionPolicy;
    use dqs_mediator::{MediatorServer, ServeOpts};
    use dqs_workload::{generate, replay, Arrival, DelayClass, GenOpts, Grammar, ReplayOpts};

    let run = |trace: &dqs_workload::Trace, policy: AdmissionPolicy, cache_bytes: u64| {
        let mediator = MediatorServer::bind(
            "127.0.0.1:0",
            ServeOpts {
                max_concurrent: if cache_bytes > 0 { 4 } else { 2 },
                backlog: 2048,
                cache_bytes,
                admission: policy,
                ..ServeOpts::default()
            },
        )
        .expect("bind mediator");
        let report = replay(
            trace,
            &ReplayOpts {
                addr: mediator.local_addr().to_string(),
                ..ReplayOpts::default()
            },
        )
        .expect("replay trace");
        mediator.shutdown();
        report
    };

    // Production half: Zipf popularity over the full default grammar,
    // open-loop Poisson arrivals, result cache on. Repeats of popular
    // specs hit the cache, so this half reports a nonzero hit rate.
    let zipf_opts = GenOpts {
        seed: 4207,
        specs: 24,
        events: 1200,
        zipf_s: 1.1,
        arrival: Arrival::Poisson {
            rate_per_sec: 250.0,
        },
        grammar: Grammar::default(),
    };
    let zipf_trace = generate(&zipf_opts);
    let zipf = run(&zipf_trace, AdmissionPolicy::Sjf, 8 << 20);

    // A/B half: a ~2.7 s burst of ~44 ms short jobs (fast Poisson, well
    // above the two-slot drain rate, so a backlog is live throughout)
    // with two rare (0.5%) ~3 s long jobs spliced in early — after the
    // slots fill, so they queue and the promotion *policy* decides when
    // they run. Under FIFO both longs are promoted into the live
    // backlog and every short behind them eats their 6 s of slot time;
    // under SJF the shorts overtake and the longs run last. Total p99 —
    // rank 396 of 400, inside the short population — shows the gap.
    // The cache is off so both runs pay full wrapper time and the
    // comparison isolates admission order.
    let mut ab_trace = generate(&GenOpts {
        seed: 1117,
        specs: 16,
        events: 400,
        zipf_s: 1.1,
        arrival: Arrival::Poisson {
            rate_per_sec: 150.0,
        },
        grammar: Grammar {
            relations: 2..=2,
            size_classes: vec![(48..=80, 1.0)],
            delay_classes: vec![(DelayClass::Constant { us: 200 }, 1.0)],
            memory_classes: vec![(8, 1.0)],
            strategies: vec![("dse".into(), 1.0)],
            selectivity: 0.004..=0.01,
        },
    });
    ab_trace.specs.push(WORKLOAD_LONG_SPEC.into());
    let long_idx = ab_trace.specs.len() - 1;
    let longs = [5usize, 12];
    for &i in &longs {
        ab_trace.events[i].spec = long_idx;
        ab_trace.events[i].strategy = "dse".into();
    }

    let fifo = run(&ab_trace, AdmissionPolicy::Fifo, 0);
    let sjf = run(&ab_trace, AdmissionPolicy::Sjf, 0);

    WorkloadReport {
        zipf_specs: zipf_opts.specs,
        zipf,
        ab_sessions: ab_trace.events.len(),
        ab_longs: longs.len(),
        fifo,
        sjf,
    }
}

/// Render the workload repro as a human-readable table.
pub fn render_workload(r: &WorkloadReport) -> String {
    let mut out =
        String::from("Workload replay: Zipf/Poisson production trace + fifo-vs-sjf A/B\n");
    let _ = writeln!(
        out,
        "zipf half: {} sessions over {} specs, cache on, sjf admission",
        r.zipf.sessions, r.zipf_specs
    );
    let _ = writeln!(
        out,
        "  completed {}  errored {}  cache hit rate {:.1}%  throughput {:.1}/s",
        r.zipf.completed,
        r.zipf.errored,
        r.zipf.cache_hit_rate() * 100.0,
        r.zipf.throughput_per_sec
    );
    let _ = writeln!(
        out,
        "ab half: {} sessions ({} long), cache off, 2 slots",
        r.ab_sessions, r.ab_longs
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "policy", "p50[ms]", "p99[ms]", "p999[ms]", "qwait99[ms]", "errored"
    );
    for (name, rep) in [("fifo", &r.fifo), ("sjf", &r.sjf)] {
        let _ = writeln!(
            out,
            "{:>6} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>10}",
            name,
            rep.total.p50_ms,
            rep.total.p99_ms,
            rep.total.p999_ms,
            rep.queue_wait.p99_ms,
            rep.errored
        );
    }
    let _ = writeln!(out, "sjf p99 improvement: {:.1}%", r.p99_improvement_pct());
    out
}

/// Render the workload repro as the machine-readable
/// `BENCH_workload.json`.
pub fn workload_json(r: &WorkloadReport) -> String {
    format!(
        "{{\"experiment\":\"workload_replay\",\
         \"zipf\":{{\"specs\":{},\"report\":{}}},\
         \"ab\":{{\"sessions\":{},\"longs\":{},\"cache\":\"off\",\
         \"fifo\":{},\"sjf\":{},\"p99_improvement_pct\":{:.1}}}}}\n",
        r.zipf_specs,
        r.zipf.to_json(),
        r.ab_sessions,
        r.ab_longs,
        r.fifo.to_json(),
        r.sjf.to_json(),
        r.p99_improvement_pct()
    )
}

/// The measurements of the freshness repro: warm hit rates with and
/// without a live write stream, and what the refresher spent keeping the
/// cache current.
#[derive(Debug, Clone)]
pub struct RefreshReport {
    /// Warm hit rate (hits / lookups) with no writes at all.
    pub baseline_warm_hit_rate: f64,
    /// Warm hit rate after appends landed and the refresher caught up.
    pub refreshed_warm_hit_rate: f64,
    /// In-place refreshes the background scheduler applied.
    pub refreshes: u64,
    /// Payload bytes fetched as tail deltas.
    pub refresh_delta_bytes: u64,
    /// What the same catch-up would have cost as full re-scans.
    pub full_equivalent_bytes: u64,
    /// Hits served from entries marked behind the wrapper.
    pub stale_served: u64,
    /// Output cardinality of the refreshed warm run.
    pub output_tuples: u64,
    /// Whether the refreshed warm answer matched a no-cache truth run at
    /// the same wrapper version.
    pub answers_match: bool,
}

/// The workload the freshness repro submits: quickstart-sized relations
/// with fast delays, so refresh fetches finish well inside one cycle.
pub const REFRESH_SPEC: &str = r#"{
    "relations": [
        {"name": "orders",    "cardinality": 2000, "delay": {"uniform_us": 5}},
        {"name": "customers", "cardinality": 3000, "delay": {"constant_us": 4}}
    ],
    "joins": [{"left": "orders", "right": "customers", "selectivity": 1e-4}],
    "config": {"seed": 42}
}"#;

/// Tuples appended to each relation by the repro's write burst.
const REFRESH_APPEND: u64 = 64;

/// Run the freshness repro: a wrapper-server under a refreshing mediator,
/// cold + warm baseline, then a write burst, the refresher's catch-up,
/// and a refreshed warm run checked bit-for-bit against a no-cache truth
/// run at the same wrapper version.
pub fn refresh_experiment() -> RefreshReport {
    use dqs_mediator::{submit, MediatorServer, ServeOpts, SubmitOpts, WrapperServer};
    use std::time::{Duration, Instant};

    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![format!("w0={}", wrapper.local_addr())],
            cache_bytes: 8 << 20,
            refresh_interval: Some(Duration::from_millis(100)),
            refresh_budget_kbps: 0,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    let run = |label: &str, no_cache: bool| {
        submit(
            addr,
            REFRESH_SPEC,
            &SubmitOpts {
                no_cache,
                ..SubmitOpts::default()
            },
            |_| {},
        )
        .unwrap_or_else(|e| panic!("{label} run failed: {e}"))
    };
    let hit_rate = |raw: &str| {
        let hits = json_counter(raw, "cache_hits") as f64;
        let misses = json_counter(raw, "cache_misses") as f64;
        if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        }
    };

    // Baseline: cold populate, then an undisturbed warm run.
    run("cold", false);
    let baseline = run("baseline warm", false);

    // The write burst, and the refresher's catch-up.
    assert!(wrapper.mutate_append(dqs_relop::RelId(0), REFRESH_APPEND));
    assert!(wrapper.mutate_append(dqs_relop::RelId(1), REFRESH_APPEND));
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let s = mediator.cache_stats().expect("cache configured");
        if s.refresh_delta_bytes >= 2 * REFRESH_APPEND * 8 {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "refresher never caught up: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    let refreshed = run("refreshed warm", false);
    let truth = run("truth", true);
    mediator.shutdown();
    wrapper.shutdown();

    // What catching up would have cost re-scanning both relations whole.
    let full_equivalent_bytes = (2000 + 3000 + 2 * REFRESH_APPEND) * 8;
    RefreshReport {
        baseline_warm_hit_rate: hit_rate(&baseline.raw),
        refreshed_warm_hit_rate: hit_rate(&refreshed.raw),
        refreshes: stats.refreshes,
        refresh_delta_bytes: stats.refresh_delta_bytes,
        full_equivalent_bytes,
        stale_served: json_counter(&refreshed.raw, "stale_served"),
        output_tuples: refreshed.output_tuples,
        answers_match: refreshed.output_tuples == truth.output_tuples,
    }
}

/// Render the freshness repro as a human-readable table.
pub fn render_refresh(r: &RefreshReport) -> String {
    let mut out = String::from("Freshness: budgeted refresh under a write burst, warm vs truth\n");
    let _ = writeln!(out, "{:>22} {:>10}", "baseline warm hit rate", "refreshed");
    let _ = writeln!(
        out,
        "{:>22.3} {:>10.3}",
        r.baseline_warm_hit_rate, r.refreshed_warm_hit_rate
    );
    let _ = writeln!(
        out,
        "refreshes: {}   delta bytes: {}   full-equivalent bytes: {}   stale served: {}",
        r.refreshes, r.refresh_delta_bytes, r.full_equivalent_bytes, r.stale_served
    );
    let _ = writeln!(
        out,
        "output tuples: {}   answers match truth: {}",
        r.output_tuples, r.answers_match
    );
    out
}

/// Render the freshness repro as the machine-readable
/// `BENCH_refresh.json`.
pub fn refresh_json(r: &RefreshReport) -> String {
    format!(
        "{{\"experiment\":\"freshness_refresh\",\
         \"baseline_warm_hit_rate\":{},\"refreshed_warm_hit_rate\":{},\
         \"refreshes\":{},\"refresh_delta_bytes\":{},\
         \"full_equivalent_bytes\":{},\"stale_served\":{},\
         \"output_tuples\":{},\"answers_match\":{}}}\n",
        r.baseline_warm_hit_rate,
        r.refreshed_warm_hit_rate,
        r.refreshes,
        r.refresh_delta_bytes,
        r.full_equivalent_bytes,
        r.stale_served,
        r.output_tuples,
        r.answers_match
    )
}

/// Metrics snapshot helper used by the memory experiment test.
pub fn run_dse_with_memory(mb: u64) -> Result<RunMetrics, dqs_exec::RunError> {
    let (mut w, _) = Workload::fig5();
    w.config.memory_bytes = mb * 1024 * 1024;
    dqs_exec::Engine::new(&w, DsePolicy::new()).try_run()
}

/// Convenience: the default engine config (used by docs/tests).
pub fn default_config() -> EngineConfig {
    EngineConfig::default()
}
