//! # dqs-refresh — the sans-io freshness core
//!
//! The mediator's result cache (see `dqs-cache`) keeps completed wrapper
//! scans warm, but "warm" drifts from "true" the moment a wrapper takes
//! a write. This crate decides — with no sockets, no clocks, no threads —
//! what a background refresher should do about it each cycle:
//!
//! 1. **Classify** ([`classify`]): given the version and length a cached
//!    entry was captured at and the wrapper's current stat (mirrored from
//!    `dqs_source::net::RelStat` by [`classify`]'s caller), is the entry
//!    current, merely
//!    behind on its version counter, extendable by an insert-only tail
//!    delta (`resume_from = cached_len` on the wire), or invalidated by
//!    a rewrite that only a full re-scan can repair?
//! 2. **Rank** ([`RefreshPlanner::plan`]): order stale entries by
//!    staleness-benefit — observed hit rate × age × estimated re-scan
//!    cost (the `DelayModel::expected_total` arithmetic the admission
//!    layer already uses) — so the refresh budget goes to the entries
//!    whose staleness hurts most.
//! 3. **Budget**: spend a per-cycle payload-byte allowance
//!    (`--refresh-budget-kbps × --refresh-interval-ms`) strictly in rank
//!    order; entries the budget cannot cover are deferred, which the
//!    mediator surfaces by marking them stale so hits on them count as
//!    `stale_served`.
//!
//! The mediator's refresher thread (in `dqs-mediator`) supplies cache
//! snapshots, wrapper stats and scan provenance, executes the plan over
//! real sockets, and emits the `refresh_plan` / `refresh_apply` /
//! `refresh_delta` trace lines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Duration;

use dqs_cache::EntrySnapshot;
use dqs_relop::RelId;
use dqs_source::net::RelStat;
use dqs_source::DelayModel;

/// Everything the mediator must remember about a cold scan to re-open it
/// later without a session: which replica group serves it, and the exact
/// open parameters that reproduce the stream bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanProvenance {
    /// Index of the replica group (logical wrapper) in the mediator's
    /// configured set.
    pub group: usize,
    /// The scanned relation.
    pub rel: RelId,
    /// Flow-control window the scan used.
    pub window: u32,
    /// Master seed of the delay stream.
    pub seed: u64,
    /// Seed-splitter stream label.
    pub stream: String,
    /// Delivery pacing — a refresh is a real scan and pays the modelled
    /// delay, which is exactly why deltas beat full re-scans.
    pub delay: DelayModel,
}

/// What [`classify`] concluded about one cached entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Versions match: the entry is current, nothing to do.
    Current,
    /// The content is provably identical (insert-only history, equal
    /// totals) but the entry's version counter is behind; bump it
    /// without moving data.
    Confirm,
    /// Insert-only growth: fetch `[from, to)` and append it.
    Delta {
        /// First index to fetch (`= cached_len`).
        from: u64,
        /// One past the last index (`= stat.total`).
        to: u64,
    },
    /// The prefix is suspect (rewrite, or a shrink): re-fetch everything.
    Full {
        /// The wrapper's current total.
        total: u64,
    },
}

/// Decide how a cached entry captured at `(version, len)` relates to the
/// wrapper's reported `stat`.
///
/// The insert-only fast path requires both that no rewrite happened
/// since capture (`stat.rewrite_version <= version`) and that the data
/// did not shrink; anything else conservatively costs a full re-scan.
pub fn classify(version: u64, len: u64, stat: &RelStat) -> Freshness {
    if stat.version == version {
        Freshness::Current
    } else if stat.rewrite_version <= version && stat.total >= len {
        if stat.total == len {
            Freshness::Confirm
        } else {
            Freshness::Delta {
                from: len,
                to: stat.total,
            }
        }
    } else {
        Freshness::Full { total: stat.total }
    }
}

/// One cached entry joined with the wrapper state the refresher observed
/// for it — the planner's unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The cache's view of the entry.
    pub snapshot: EntrySnapshot,
    /// The wrapper's current change-tracking state for its relation.
    pub stat: RelStat,
    /// Estimated cost of a full cold re-scan, in microseconds — the work
    /// keeping this entry warm saves (`DelayModel::expected_total`).
    pub rescan_cost_us: f64,
}

/// Estimated cost, in microseconds, of re-scanning `total` tuples under
/// `delay` — the same `expected_total` arithmetic admission costing uses.
pub fn rescan_cost_us(delay: &DelayModel, total: u64) -> f64 {
    delay.expected_total(total).as_micros_f64()
}

/// What the planner decided for one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshAction {
    /// Bump the entry's version; no wrapper traffic.
    Confirm,
    /// Fetch `[from, to)` at `resume_from = from` and append it.
    Delta {
        /// First index to fetch.
        from: u64,
        /// One past the last index.
        to: u64,
    },
    /// Fetch `[0, total)` and replace the payload.
    Full {
        /// The wrapper's current total.
        total: u64,
    },
    /// Stale, but this cycle's budget could not cover it: mark it so
    /// hits count as `stale_served` until a later cycle affords it.
    Defer,
}

/// One planned refresh, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshDecision {
    /// Index into the candidate slice handed to [`RefreshPlanner::plan`].
    pub index: usize,
    /// What to do.
    pub action: RefreshAction,
    /// The staleness-benefit score that ranked it.
    pub benefit: f64,
    /// Payload bytes the action will fetch (0 for confirm/defer).
    pub bytes: u64,
}

/// The budgeted, benefit-ranked refresh scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshPlanner {
    /// Payload bytes spendable per cycle; `None` = unlimited.
    pub budget_bytes: Option<u64>,
}

impl RefreshPlanner {
    /// A planner spending at most `kbps` KiB/s of refresh traffic,
    /// amortized over cycles of `interval`. `kbps == 0` means unlimited.
    pub fn from_rate(kbps: u64, interval: Duration) -> RefreshPlanner {
        RefreshPlanner {
            budget_bytes: (kbps > 0).then(|| kbps * 1024 * interval.as_millis() as u64 / 1000),
        }
    }

    /// The staleness-benefit of refreshing `c`: observed hit rate × age ×
    /// estimated re-scan cost. The `+1` floors keep a never-hit or
    /// just-captured entry rankable instead of zeroed out.
    pub fn benefit(c: &Candidate) -> f64 {
        (c.snapshot.hits + 1) as f64 * (c.snapshot.age_ms + 1) as f64 * c.rescan_cost_us.max(1.0)
    }

    /// Plan one refresh cycle: classify every candidate, rank the stale
    /// ones by [`RefreshPlanner::benefit`], and spend the byte budget
    /// strictly in rank order. Returns decisions in execution order —
    /// free confirmations first, then funded refreshes by descending
    /// benefit, then deferrals. Entries already current yield no
    /// decision at all.
    pub fn plan(&self, candidates: &[Candidate]) -> Vec<RefreshDecision> {
        let mut confirms = Vec::new();
        let mut costed: Vec<RefreshDecision> = Vec::new();
        for (index, c) in candidates.iter().enumerate() {
            let benefit = Self::benefit(c);
            match classify(c.snapshot.version, c.snapshot.len, &c.stat) {
                Freshness::Current => {}
                Freshness::Confirm => confirms.push(RefreshDecision {
                    index,
                    action: RefreshAction::Confirm,
                    benefit,
                    bytes: 0,
                }),
                Freshness::Delta { from, to } => costed.push(RefreshDecision {
                    index,
                    action: RefreshAction::Delta { from, to },
                    benefit,
                    bytes: (to - from) * 8,
                }),
                Freshness::Full { total } => costed.push(RefreshDecision {
                    index,
                    action: RefreshAction::Full { total },
                    benefit,
                    bytes: total * 8,
                }),
            }
        }
        costed.sort_by(|a, b| {
            b.benefit
                .partial_cmp(&a.benefit)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        let mut remaining = self.budget_bytes;
        for d in &mut costed {
            match remaining {
                None => {}
                Some(left) if d.bytes <= left => remaining = Some(left - d.bytes),
                Some(_) => {
                    d.action = RefreshAction::Defer;
                    d.bytes = 0;
                }
            }
        }
        confirms.extend(costed);
        confirms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_cache::CacheKey;
    use dqs_sim::SimDuration;

    fn stat(version: u64, total: u64, rewrite_version: u64) -> RelStat {
        RelStat {
            rel: RelId(1),
            version,
            total,
            rewrite_version,
        }
    }

    fn candidate(version: u64, len: u64, hits: u64, age_ms: u64, s: RelStat) -> Candidate {
        Candidate {
            snapshot: EntrySnapshot {
                key: CacheKey::for_scan("w0", s.rel, len, 42, "wrapper:t"),
                len,
                version,
                hits,
                age_ms,
                stale: false,
            },
            stat: s,
            rescan_cost_us: rescan_cost_us(
                &DelayModel::Uniform {
                    mean: SimDuration::from_micros(20),
                },
                s.total,
            ),
        }
    }

    #[test]
    fn classification_matrix() {
        // Same version: current, regardless of the rest.
        assert_eq!(classify(3, 100, &stat(3, 100, 2)), Freshness::Current);
        // Insert-only growth: tail delta.
        assert_eq!(
            classify(3, 100, &stat(5, 140, 0)),
            Freshness::Delta { from: 100, to: 140 }
        );
        // Version advanced, total unchanged, no rewrite: confirm only.
        assert_eq!(classify(0, 100, &stat(2, 100, 0)), Freshness::Confirm);
        // Rewrite after capture: full re-scan even if the total grew.
        assert_eq!(
            classify(3, 100, &stat(6, 140, 5)),
            Freshness::Full { total: 140 }
        );
        // Rewrite before capture does not poison later deltas.
        assert_eq!(
            classify(7, 100, &stat(9, 120, 4)),
            Freshness::Delta { from: 100, to: 120 }
        );
        // Shrink without a rewrite mark: conservatively full.
        assert_eq!(
            classify(3, 100, &stat(4, 60, 0)),
            Freshness::Full { total: 60 }
        );
        // A pre-versioning entry (version 0) against an insert-only
        // history extends cleanly.
        assert_eq!(
            classify(0, 100, &stat(4, 130, 0)),
            Freshness::Delta { from: 100, to: 130 }
        );
    }

    #[test]
    fn rescan_cost_uses_expected_total() {
        let d = DelayModel::Uniform {
            mean: SimDuration::from_micros(20),
        };
        assert_eq!(rescan_cost_us(&d, 1000), 20_000.0);
    }

    #[test]
    fn plan_ranks_by_benefit_and_spends_in_order() {
        // Three stale entries; the hot old one must outrank the rest.
        let cands = vec![
            candidate(1, 100, 0, 10, stat(2, 150, 0)),
            candidate(1, 100, 50, 5_000, stat(2, 150, 0)),
            candidate(1, 100, 5, 1_000, stat(2, 150, 0)),
        ];
        let plan = RefreshPlanner { budget_bytes: None }.plan(&cands);
        let order: Vec<usize> = plan.iter().map(|d| d.index).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert!(plan
            .iter()
            .all(|d| d.action == RefreshAction::Delta { from: 100, to: 150 }));
        assert!(plan.iter().all(|d| d.bytes == 400));
    }

    #[test]
    fn budget_defers_strictly_after_rank_exhaustion() {
        let cands = vec![
            candidate(1, 100, 0, 10, stat(2, 150, 0)),
            candidate(1, 100, 50, 5_000, stat(2, 150, 0)),
        ];
        // One delta costs 400 payload bytes; budget affords exactly one.
        let plan = RefreshPlanner {
            budget_bytes: Some(500),
        }
        .plan(&cands);
        assert_eq!(plan[0].index, 1, "highest benefit funded first");
        assert!(matches!(plan[0].action, RefreshAction::Delta { .. }));
        assert_eq!(plan[1].action, RefreshAction::Defer);
        assert_eq!(plan[1].bytes, 0);
    }

    #[test]
    fn zero_budget_defers_everything_costed_but_confirms_ride_free() {
        let cands = vec![
            candidate(1, 100, 0, 10, stat(2, 150, 0)),
            candidate(1, 100, 0, 10, stat(3, 100, 0)),
            candidate(4, 100, 0, 10, stat(4, 100, 0)),
        ];
        let plan = RefreshPlanner {
            budget_bytes: Some(0),
        }
        .plan(&cands);
        assert_eq!(plan.len(), 2, "the current entry yields no decision");
        assert_eq!(
            (plan[0].index, plan[0].action),
            (1, RefreshAction::Confirm),
            "confirmations cost nothing and come first"
        );
        assert_eq!((plan[1].index, plan[1].action), (0, RefreshAction::Defer));
    }

    #[test]
    fn rewrites_plan_full_rescans() {
        let cands = vec![candidate(2, 100, 1, 10, stat(5, 120, 4))];
        let plan = RefreshPlanner { budget_bytes: None }.plan(&cands);
        assert_eq!(plan[0].action, RefreshAction::Full { total: 120 });
        assert_eq!(plan[0].bytes, 960);
    }

    #[test]
    fn from_rate_arithmetic() {
        // 64 KiB/s over 500 ms cycles = 32 KiB per cycle.
        let p = RefreshPlanner::from_rate(64, Duration::from_millis(500));
        assert_eq!(p.budget_bytes, Some(32 * 1024));
        assert_eq!(
            RefreshPlanner::from_rate(0, Duration::from_millis(500)).budget_bytes,
            None,
            "0 kbps = unlimited"
        );
    }
}
