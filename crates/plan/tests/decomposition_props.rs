//! Property tests over the pipeline-chain decomposition: for arbitrary
//! generated bushy plans, the §2.2/§4.1 structural invariants must hold.

use std::collections::BTreeSet;

use dqs_plan::{generate, AnnotatedPlan, ChainSet, ChainSink, ChainSource, GeneratorConfig, PcId};
use dqs_relop::{HtId, OpSpec};
use dqs_sim::{SeedSplitter, SimParams};
use proptest::prelude::*;

fn arb_chainset() -> impl Strategy<Value = (ChainSet, AnnotatedPlan)> {
    (2usize..10, 0u64..50_000).prop_map(|(relations, seed)| {
        let mut rng = SeedSplitter::new(seed).stream("decomp-props");
        let q = generate(
            &GeneratorConfig {
                relations,
                ..GeneratorConfig::default()
            },
            &mut rng,
        );
        let chains = ChainSet::decompose(&q.qep);
        let plan = AnnotatedPlan::annotate(chains.clone(), &q.catalog, &SimParams::default());
        (chains, plan)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Maximality: one chain per scan leaf / mat output; no two chains can
    /// merge (each ends at a blocking edge or the root).
    #[test]
    fn one_chain_per_source((chains, _plan) in arb_chainset()) {
        let wrapper_sources = chains
            .chains
            .iter()
            .filter(|c| matches!(c.source, ChainSource::Wrapper(_)))
            .count();
        prop_assert_eq!(wrapper_sources + chains.mat_count as usize, chains.len());
    }

    /// Every hash table is built by exactly one chain and probed by exactly
    /// one chain (plans are trees).
    #[test]
    fn hash_tables_built_once_probed_once((chains, _plan) in arb_chainset()) {
        for h in 0..chains.ht_count {
            let ht = HtId(h);
            let builders = chains
                .chains
                .iter()
                .filter(|c| c.sink == ChainSink::Build(ht))
                .count();
            let probers = chains
                .chains
                .iter()
                .filter(|c| c.probes().contains(&ht))
                .count();
            prop_assert_eq!(builders, 1, "ht {} builders", h);
            prop_assert_eq!(probers, 1, "ht {} probers", h);
            prop_assert_eq!(chains.builder_of(ht), chains
                .chains
                .iter()
                .find(|c| c.sink == ChainSink::Build(ht))
                .unwrap()
                .id);
        }
    }

    /// Exactly one output chain, and every chain is among its ancestors —
    /// the result depends on all of them.
    #[test]
    fn single_output_depends_on_everything((chains, _plan) in arb_chainset()) {
        let outputs: Vec<PcId> = chains
            .chains
            .iter()
            .filter(|c| c.sink == ChainSink::Output)
            .map(|c| c.id)
            .collect();
        prop_assert_eq!(outputs.len(), 1);
        let out = outputs[0];
        let mut expected: BTreeSet<PcId> =
            chains.chains.iter().map(|c| c.id).collect();
        expected.remove(&out);
        prop_assert_eq!(chains.ancestors_star(out), expected);
    }

    /// The iterator order respects dependencies: a chain's ancestors all
    /// carry smaller ids.
    #[test]
    fn sequential_order_topological((chains, _plan) in arb_chainset()) {
        for c in &chains.chains {
            for anc in chains.ancestors_star(c.id) {
                prop_assert!(anc.0 < c.id.0, "{anc:?} before {:?}", c.id);
            }
        }
    }

    /// Direct blockers come from the probe targets (plus the temp writer).
    #[test]
    fn blocked_by_matches_probes((chains, _plan) in arb_chainset()) {
        for c in &chains.chains {
            let mut expect: BTreeSet<PcId> =
                c.probes().iter().map(|&h| chains.builder_of(h)).collect();
            if let ChainSource::Temp(m) = c.source {
                expect.insert(chains.writer_of(m));
            }
            prop_assert_eq!(
                c.blocked_by.iter().copied().collect::<BTreeSet<_>>(),
                expect
            );
        }
    }

    /// Operator conservation: every QEP join appears as exactly one Probe
    /// and one Build across all chains; scans appear as Selects.
    #[test]
    fn operators_partition_across_chains((chains, _plan) in arb_chainset()) {
        let mut probes = 0usize;
        let mut builds = 0usize;
        let mut selects = 0usize;
        for c in &chains.chains {
            for op in &c.ops {
                match op {
                    OpSpec::Probe { .. } => probes += 1,
                    OpSpec::Build { .. } => builds += 1,
                    OpSpec::Select { .. } => selects += 1,
                }
            }
        }
        prop_assert_eq!(probes, chains.ht_count as usize);
        prop_assert_eq!(builds, chains.ht_count as usize);
        // One select per wrapper scan.
        let scans = chains
            .chains
            .iter()
            .filter(|c| matches!(c.source, ChainSource::Wrapper(_)))
            .count();
        prop_assert_eq!(selects, scans);
    }

    /// Annotation sanity: memory is exactly build input × tuple size, and
    /// build-terminated chains emit nothing downstream.
    #[test]
    fn annotations_consistent((chains, plan) in arb_chainset()) {
        let params = SimParams::default();
        for c in &chains.chains {
            let info = plan.info(c.id);
            prop_assert!(info.source_card >= 0.0);
            match c.sink {
                ChainSink::Build(_) => {
                    prop_assert_eq!(info.output_card, 0.0);
                    prop_assert_eq!(
                        info.mem_bytes,
                        (info.build_input_card.ceil() as u64) * params.tuple_bytes as u64
                    );
                }
                _ => prop_assert_eq!(info.mem_bytes, 0),
            }
        }
    }
}
