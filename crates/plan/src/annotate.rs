//! Annotated plans.
//!
//! §3.3: the DQS consumes an *annotated* query execution plan containing
//! (i) the QEP with its blocking/pipelinable edges, (ii) per-operator memory
//! requirements `mem(op)`, and (iii) estimated operator result sizes. This
//! module derives those annotations for every pipeline chain from the
//! catalog's cardinalities, the chains' selectivities/fan-outs and the
//! Table 1 cost model.

use dqs_relop::{estimate_chain, OpSpec};
use dqs_sim::{SimDuration, SimParams};

use crate::chains::{ChainSet, ChainSink, ChainSource, PcId};
use crate::spec::Catalog;

/// Static per-chain estimates used by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainInfo {
    /// Estimated tuples entering the chain (`n_p` of §4.3 at the start of
    /// execution).
    pub source_card: f64,
    /// Average CPU instructions per source tuple (the basis of `c_p`).
    pub instr_per_tuple: f64,
    /// Chain output tuples per source tuple (0 for build-terminated chains).
    pub fanout_total: f64,
    /// Estimated tuples leaving the open end (query output or temp size).
    pub output_card: f64,
    /// Estimated tuples inserted into the hash table this chain builds
    /// (0 if the chain builds none).
    pub build_input_card: f64,
    /// `mem(p)`: bytes of query memory the chain needs — the size of the
    /// hash table it builds at the Table 1 tuple size (§4.1's
    /// M-schedulability input).
    pub mem_bytes: u64,
}

/// A chain decomposition plus its per-chain annotations.
#[derive(Debug, Clone)]
pub struct AnnotatedPlan {
    /// The decomposition.
    pub chains: ChainSet,
    /// Parallel to `chains.chains`.
    pub info: Vec<ChainInfo>,
}

impl AnnotatedPlan {
    /// Annotate `chains` using cardinalities from `catalog` and costs from
    /// `params`.
    pub fn annotate(chains: ChainSet, catalog: &Catalog, params: &SimParams) -> Self {
        let mut info: Vec<ChainInfo> = Vec::with_capacity(chains.len());
        // Output cardinality of each temp relation, filled as MF chains are
        // visited (writers precede readers in chain id order).
        let mut mat_output: Vec<f64> = vec![0.0; chains.mat_count as usize];

        for pc in &chains.chains {
            let source_card = match pc.source {
                ChainSource::Wrapper(rel) => catalog.cardinality(rel) as f64,
                ChainSource::Temp(m) => mat_output[m.0 as usize],
            };
            let est = estimate_chain(&pc.ops, params);
            let output_card = source_card * est.fanout_total;
            // Tuples reaching a terminal Build = source card × fan-out of
            // everything before the Build op.
            let build_input_card = if matches!(pc.sink, ChainSink::Build(_)) {
                let prefix: &[OpSpec] = &pc.ops[..pc.ops.len() - 1];
                source_card * estimate_chain(prefix, params).fanout_total
            } else {
                0.0
            };
            if let ChainSink::Mat(m) = pc.sink {
                mat_output[m.0 as usize] = output_card;
            }
            let mem_bytes = (build_input_card.ceil() as u64) * params.tuple_bytes as u64;
            info.push(ChainInfo {
                source_card,
                instr_per_tuple: est.instr_per_tuple(),
                fanout_total: est.fanout_total,
                output_card,
                build_input_card,
                mem_bytes,
            });
        }
        AnnotatedPlan { chains, info }
    }

    /// Annotation of chain `p`.
    pub fn info(&self, p: PcId) -> &ChainInfo {
        &self.info[p.0 as usize]
    }

    /// `c_p`: average processing time of one source tuple of chain `p`
    /// (§4.3), from the instruction estimate and the CPU speed.
    pub fn per_tuple_cost(&self, p: PcId, params: &SimParams) -> SimDuration {
        let instr = self.info(p).instr_per_tuple;
        SimDuration::from_nanos((instr * 1_000.0 / params.cpu_mips as f64).round() as u64)
    }

    /// Expected source tuple count `n_p` for chain `p`.
    pub fn expected_tuples(&self, p: PcId) -> u64 {
        self.info(p).source_card.round() as u64
    }

    /// Total estimated CPU time to process every chain (a component of the
    /// analytic lower bound LWB, §5.1.2).
    pub fn total_cpu_estimate(&self, params: &SimParams) -> SimDuration {
        let total_instr: f64 = self
            .info
            .iter()
            .map(|i| i.source_card * i.instr_per_tuple)
            .sum();
        SimDuration::from_nanos((total_instr * 1_000.0 / params.cpu_mips as f64).round() as u64)
    }

    /// Sum of all hash-table memory the plan needs if everything were
    /// resident simultaneously (worst case for M-schedulability).
    pub fn total_ht_bytes(&self) -> u64 {
        self.info.iter().map(|i| i.mem_bytes).sum()
    }
}

/// Convenience extension: `estimate_chain` returns instructions via a field
/// name that reads poorly at call sites; alias it.
trait EstExt {
    fn instr_per_tuple(&self) -> f64;
}
impl EstExt for dqs_relop::ChainCostEstimate {
    fn instr_per_tuple(&self) -> f64 {
        self.instr_per_source_tuple
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qep::QepBuilder;

    fn setup() -> (Catalog, AnnotatedPlan, SimParams) {
        let params = SimParams::default();
        let mut cat = Catalog::new();
        let a = cat.add("A", 1_000);
        let b = cat.add("B", 2_000);
        let c = cat.add("C", 4_000);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 0.5);
        let j1 = qb.hash_join(sa, sb, 2.0);
        let sc = qb.scan(c, 1.0);
        let j2 = qb.hash_join(j1, sc, 1.0);
        let qep = qb.finish(j2).unwrap();
        let chains = ChainSet::decompose(&qep);
        let plan = AnnotatedPlan::annotate(chains, &cat, &params);
        (cat, plan, params)
    }

    #[test]
    fn source_cards_come_from_catalog() {
        let (_c, plan, _p) = setup();
        assert_eq!(plan.info(PcId(0)).source_card, 1_000.0);
        assert_eq!(plan.info(PcId(1)).source_card, 2_000.0);
        assert_eq!(plan.info(PcId(2)).source_card, 4_000.0);
    }

    #[test]
    fn build_memory_uses_tuple_size() {
        let (_c, plan, _p) = setup();
        // p0 builds HT0 from all 1000 A tuples: 1000 × 40 B.
        assert_eq!(plan.info(PcId(0)).mem_bytes, 40_000);
        // p1: 2000 × 0.5 (scan sel) × 2.0 (join fanout) = 2000 into HT1.
        assert_eq!(plan.info(PcId(1)).build_input_card, 2_000.0);
        assert_eq!(plan.info(PcId(1)).mem_bytes, 80_000);
        // p2 is the output chain: no build memory.
        assert_eq!(plan.info(PcId(2)).mem_bytes, 0);
    }

    #[test]
    fn output_chain_estimates_result_size() {
        let (_c, plan, _p) = setup();
        // p2: 4000 × fanout 1.0 = 4000 result tuples.
        assert_eq!(plan.info(PcId(2)).output_card, 4_000.0);
        assert_eq!(plan.info(PcId(0)).output_card, 0.0, "build sink emits none");
    }

    #[test]
    fn per_tuple_cost_matches_cost_model() {
        let (_c, plan, params) = setup();
        // p0: Select(1.0)=100 + Build=100 → 200 instr = 2 µs at 100 MIPS.
        assert_eq!(
            plan.per_tuple_cost(PcId(0), &params),
            SimDuration::from_micros(2)
        );
    }

    #[test]
    fn mat_chain_annotations_flow_through_temp() {
        let params = SimParams::default();
        let mut cat = Catalog::new();
        let a = cat.add("A", 1_000);
        let b = cat.add("B", 10);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 0.5);
        let m = qb.mat(sa);
        let sb = qb.scan(b, 1.0);
        let j = qb.hash_join(sb, m, 3.0);
        let qep = qb.finish(j).unwrap();
        let plan = AnnotatedPlan::annotate(ChainSet::decompose(&qep), &cat, &params);
        // MF chain (id 1): 1000 × 0.5 = 500 tuples into the temp.
        assert_eq!(plan.info(PcId(1)).output_card, 500.0);
        // CF chain (id 2) reads those 500 and probes with fanout 3.
        assert_eq!(plan.info(PcId(2)).source_card, 500.0);
        assert_eq!(plan.info(PcId(2)).output_card, 1_500.0);
    }

    #[test]
    fn totals_aggregate_chains() {
        let (_c, plan, params) = setup();
        assert_eq!(plan.total_ht_bytes(), 40_000 + 80_000);
        assert!(plan.total_cpu_estimate(&params) > SimDuration::ZERO);
        assert_eq!(plan.expected_tuples(PcId(2)), 4_000);
    }
}
