//! # dqs-plan — query plans and pipeline chains
//!
//! The plan layer of the DQS reproduction:
//!
//! * [`spec::Catalog`] — mediator-side relation estimates;
//! * [`qep`] — bushy query execution plans with blocking (hash-join build,
//!   `Mat`) and pipelinable (probe) edges, §2.2;
//! * [`chains`] — maximal pipeline-chain decomposition, the dependency
//!   (ancestor) relation, and the sequential iterator order, §2.2/§4.1;
//! * [`annotate`] — the annotated plan the scheduler consumes: `mem(op)`,
//!   result-size estimates and per-tuple cost `c_p`, §3.3;
//! * [`generator`] — random bushy queries ("the algorithm of \[14\]", §5.1.1);
//! * [`optimizer`] — the classical dynamic-programming optimizer, §5.1.1;
//! * [`experiment`] — the reconstructed Figure 5 experiment plan.
//!
//! ```
//! use dqs_plan::{Catalog, ChainSet, QepBuilder};
//!
//! // R ⋈ S with R building the hash table.
//! let mut catalog = Catalog::new();
//! let r = catalog.add("R", 1_000);
//! let s = catalog.add("S", 5_000);
//! let mut qb = QepBuilder::new();
//! let scan_r = qb.scan(r, 1.0);
//! let scan_s = qb.scan(s, 1.0);
//! let join = qb.hash_join(scan_r, scan_s, 1.0);
//! let qep = qb.finish(join).unwrap();
//!
//! // Two maximal pipeline chains: build R, then probe with S.
//! let chains = ChainSet::decompose(&qep);
//! assert_eq!(chains.len(), 2);
//! assert!(chains.chain(dqs_plan::PcId(1))
//!     .blocked_by
//!     .contains(&dqs_plan::PcId(0)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotate;
pub mod chains;
pub mod experiment;
pub mod generator;
pub mod optimizer;
pub mod qep;
pub mod spec;

pub use annotate::{AnnotatedPlan, ChainInfo};
pub use chains::{ChainSet, ChainSink, ChainSource, MatId, PcId, PipelineChain};
pub use experiment::Fig5;
pub use generator::{generate, GeneratedQuery, GeneratorConfig};
pub use optimizer::{optimize, JoinGraph, OptimizeError};
pub use qep::{NodeId, Qep, QepBuilder, QepError, QepNode};
pub use spec::{Catalog, RelationSpec};
