//! The paper's experiment plan (Figure 5).
//!
//! §5.1.1 describes the query: "a five-way join, with 4 medium size (i.e.,
//! 100K-200K tuples) input relations and 2 small ones (i.e., 10K-20K
//! tuples)", delivered by six distinct wrappers A–F, optimized into a bushy
//! QEP by a classical dynamic-programming optimizer.
//!
//! The figure itself is not legible in the available scan, so the plan is
//! reconstructed from every textual constraint of §5.2:
//!
//! * "while p_A is not terminated, we cannot schedule p_B and p_F" —
//!   p_A blocks p_B which blocks p_F;
//! * "p_B and p_F ... represent approximately one half of the query
//!   execution" — B and F are medium relations;
//! * "This problem does not happen with p_C, which does not block any other
//!   PC" — p_C is the top output chain;
//! * figures 6/7 slow down A and F, so both are base relations.
//!
//! Resulting shape (build side listed first):
//!
//! ```text
//! J6( build = J2( build = J1(build=A, probe=B), probe = F ),
//!     probe = J5( build = J4(build=D, probe=E), probe = C ) )
//! ```
//!
//! which decomposes into the six chains
//! `p_A, p_B, p_F, p_D, p_E, p_C` (in iterator order) with
//! `p_A → p_B → p_F` and `p_D → p_E` dependency chains and `p_C` blocked by
//! `p_E` and `p_F` but blocking nothing.

use dqs_relop::RelId;

use crate::chains::PcId;
use crate::qep::{Qep, QepBuilder};
use crate::spec::Catalog;

/// Relation ids of the experiment, in catalog order A..F.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Rels {
    /// Medium, 150 K tuples; builds HT(J1).
    pub a: RelId,
    /// Medium, 120 K tuples; probes HT(J1), builds HT(J2).
    pub b: RelId,
    /// Medium, 180 K tuples; the top probe chain.
    pub c: RelId,
    /// Small, 15 K tuples; builds HT(J4).
    pub d: RelId,
    /// Small, 12 K tuples; probes HT(J4), builds HT(J5).
    pub e: RelId,
    /// Medium, 100 K tuples; probes HT(J2), builds HT(J6).
    pub f: RelId,
}

/// The experiment workload: catalog, plan, and chain name mapping.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Relation cardinality estimates (estimates are exact here: the
    /// experiment's wrappers deliver exactly these counts).
    pub catalog: Catalog,
    /// The bushy QEP of Figure 5.
    pub qep: Qep,
    /// Relation ids.
    pub rels: Fig5Rels,
}

/// Chain ids of the Figure 5 decomposition, in iterator order.
pub mod pc {
    use super::PcId;
    /// scan A → build HT(J1).
    pub const P_A: PcId = PcId(0);
    /// scan B → probe HT(J1) → build HT(J2).
    pub const P_B: PcId = PcId(1);
    /// scan F → probe HT(J2) → build HT(J6).
    pub const P_F: PcId = PcId(2);
    /// scan D → build HT(J4).
    pub const P_D: PcId = PcId(3);
    /// scan E → probe HT(J4) → build HT(J5).
    pub const P_E: PcId = PcId(4);
    /// scan C → probe HT(J5) → probe HT(J6) → output.
    pub const P_C: PcId = PcId(5);
}

/// Cardinalities used by the reproduction (within the paper's stated
/// ranges).
pub const CARD_A: u64 = 150_000;
/// Cardinality of B.
pub const CARD_B: u64 = 120_000;
/// Cardinality of C.
pub const CARD_C: u64 = 180_000;
/// Cardinality of D.
pub const CARD_D: u64 = 15_000;
/// Cardinality of E.
pub const CARD_E: u64 = 12_000;
/// Cardinality of F.
pub const CARD_F: u64 = 100_000;

impl Fig5 {
    /// Build the experiment workload.
    pub fn build() -> Fig5 {
        let mut catalog = Catalog::new();
        let a = catalog.add("A", CARD_A);
        let b = catalog.add("B", CARD_B);
        let c = catalog.add("C", CARD_C);
        let d = catalog.add("D", CARD_D);
        let e = catalog.add("E", CARD_E);
        let f = catalog.add("F", CARD_F);

        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j1 = qb.hash_join(sa, sb, 1.0);
        let sf = qb.scan(f, 1.0);
        let j2 = qb.hash_join(j1, sf, 1.0);
        let sd = qb.scan(d, 1.0);
        let se = qb.scan(e, 1.0);
        let j4 = qb.hash_join(sd, se, 1.0);
        let sc = qb.scan(c, 1.0);
        let j5 = qb.hash_join(j4, sc, 0.5);
        let j6 = qb.hash_join(j2, j5, 1.0);
        let qep = qb.finish(j6).expect("figure 5 plan is valid");

        Fig5 {
            catalog,
            qep,
            rels: Fig5Rels { a, b, c, d, e, f },
        }
    }

    /// Relation id by paper letter (case-insensitive); `None` if unknown.
    pub fn rel_by_letter(&self, letter: char) -> Option<RelId> {
        match letter.to_ascii_uppercase() {
            'A' => Some(self.rels.a),
            'B' => Some(self.rels.b),
            'C' => Some(self.rels.c),
            'D' => Some(self.rels.d),
            'E' => Some(self.rels.e),
            'F' => Some(self.rels.f),
            _ => None,
        }
    }

    /// All relation letters in catalog order.
    pub fn letters() -> [char; 6] {
        ['A', 'B', 'C', 'D', 'E', 'F']
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::AnnotatedPlan;
    use crate::chains::{ChainSet, ChainSink, ChainSource};
    use dqs_sim::SimParams;

    #[test]
    fn six_relations_five_joins() {
        let f5 = Fig5::build();
        assert_eq!(f5.catalog.len(), 6);
        assert_eq!(f5.qep.join_count(), 5);
        // 4 medium (100K-200K), 2 small (10K-20K), per §5.1.1.
        let mut medium = 0;
        let mut small = 0;
        for (_, r) in f5.catalog.iter() {
            if (100_000..=200_000).contains(&r.cardinality) {
                medium += 1;
            } else if (10_000..=20_000).contains(&r.cardinality) {
                small += 1;
            }
        }
        assert_eq!((medium, small), (4, 2));
    }

    #[test]
    fn decomposition_matches_narrative() {
        let f5 = Fig5::build();
        let set = ChainSet::decompose(&f5.qep);
        assert_eq!(set.len(), 6);

        // Iterator order: A, B, F, D, E, C.
        let sources: Vec<ChainSource> = set.chains.iter().map(|c| c.source).collect();
        assert_eq!(
            sources,
            vec![
                ChainSource::Wrapper(f5.rels.a),
                ChainSource::Wrapper(f5.rels.b),
                ChainSource::Wrapper(f5.rels.f),
                ChainSource::Wrapper(f5.rels.d),
                ChainSource::Wrapper(f5.rels.e),
                ChainSource::Wrapper(f5.rels.c),
            ]
        );

        // p_A blocks p_B blocks p_F (transitively p_A blocks p_F).
        assert!(set.ancestors_star(pc::P_F).contains(&pc::P_A));
        assert!(set.ancestors_star(pc::P_B).contains(&pc::P_A));
        // p_C blocks nothing.
        assert!(set.descendants_star(pc::P_C).is_empty());
        // p_C is the output chain blocked by p_E and p_F directly.
        assert_eq!(set.chain(pc::P_C).sink, ChainSink::Output);
        assert_eq!(set.chain(pc::P_C).blocked_by, vec![pc::P_F, pc::P_E]);
    }

    #[test]
    fn pb_pf_are_roughly_half_the_execution() {
        // §5.2: p_B and p_F "represent approximately one half of the query
        // execution" (measured in CPU work here).
        let f5 = Fig5::build();
        let params = SimParams::default();
        let plan = AnnotatedPlan::annotate(ChainSet::decompose(&f5.qep), &f5.catalog, &params);
        let work = |p: PcId| plan.info(p).source_card * plan.info(p).instr_per_tuple;
        let total: f64 = (0..6).map(|i| work(PcId(i))).sum();
        let bf = work(pc::P_B) + work(pc::P_F);
        let share = bf / total;
        assert!(
            (0.3..=0.6).contains(&share),
            "p_B+p_F share {share} should be about one half"
        );
    }

    #[test]
    fn memory_fits_default_budget() {
        let f5 = Fig5::build();
        let params = SimParams::default();
        let plan = AnnotatedPlan::annotate(ChainSet::decompose(&f5.qep), &f5.catalog, &params);
        let total = plan.total_ht_bytes();
        // All hash tables together stay under 32 MB (§5: experiments assume
        // "the existence of sufficient memory").
        assert!(total < 32 * 1024 * 1024, "{total} bytes");
        assert!(
            total > 10 * 1024 * 1024,
            "plan should be non-trivial: {total}"
        );
    }

    #[test]
    fn rel_by_letter_roundtrips() {
        let f5 = Fig5::build();
        for l in Fig5::letters() {
            let rel = f5.rel_by_letter(l).unwrap();
            assert_eq!(f5.catalog.name(rel), l.to_string());
        }
        assert!(f5.rel_by_letter('z').is_none());
        assert_eq!(f5.rel_by_letter('a'), Some(f5.rels.a));
    }
}
