//! Random query generation.
//!
//! §5.1.1: "The query was generated using the algorithm of \[14\]" — Swami &
//! Iyer-style random bushy join-tree generation. Given a relation count and
//! parameter ranges, the generator draws cardinalities, a random bushy tree
//! shape, and per-join fan-outs, producing a catalog plus QEP that the
//! scheduler and all three strategies can execute. §5.1.1 again: "Other
//! queries, differing by their complexity, size and shape, were tested in
//! the same manner" — the property-based tests run the engine over this
//! generator's output.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::qep::{NodeId, Qep, QepBuilder};
use crate::spec::Catalog;

/// Parameter ranges for random queries.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of base relations (>= 2).
    pub relations: usize,
    /// Cardinality range for each relation.
    pub cardinality: (u64, u64),
    /// Scan selectivity range.
    pub scan_selectivity: (f64, f64),
    /// Per-probe-tuple join fan-out range.
    pub join_fanout: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            relations: 6,
            cardinality: (10_000, 200_000),
            scan_selectivity: (0.5, 1.0),
            join_fanout: (0.5, 1.5),
        }
    }
}

/// A randomly generated workload.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Relation catalog.
    pub catalog: Catalog,
    /// Bushy QEP.
    pub qep: Qep,
}

/// Generate a random bushy query.
///
/// The shape is drawn by repeatedly joining two random roots of the current
/// forest — the classical recipe for uniform-ish bushy trees. The build side
/// of each join is the subtree with the smaller estimated cardinality, as a
/// cost-based optimizer would choose.
pub fn generate(config: &GeneratorConfig, rng: &mut ChaCha8Rng) -> GeneratedQuery {
    assert!(config.relations >= 2, "need at least two relations");
    let mut catalog = Catalog::new();
    let mut qb = QepBuilder::new();
    // Forest of (root node, estimated cardinality).
    let mut forest: Vec<(NodeId, f64)> = Vec::new();

    for i in 0..config.relations {
        let card = rng.gen_range(config.cardinality.0..=config.cardinality.1);
        let rel = catalog.add(format!("R{i}"), card);
        let sel = rng.gen_range(config.scan_selectivity.0..=config.scan_selectivity.1);
        let node = qb.scan(rel, sel);
        forest.push((node, card as f64 * sel));
    }

    while forest.len() > 1 {
        let i = rng.gen_range(0..forest.len());
        let (left, left_card) = forest.swap_remove(i);
        let j = rng.gen_range(0..forest.len());
        let (right, right_card) = forest.swap_remove(j);
        // Smaller side builds the hash table.
        let (build, build_card, probe, probe_card) = if left_card <= right_card {
            (left, left_card, right, right_card)
        } else {
            (right, right_card, left, left_card)
        };
        let fanout = rng.gen_range(config.join_fanout.0..=config.join_fanout.1);
        let node = qb.hash_join(build, probe, fanout);
        let _ = build_card;
        forest.push((node, probe_card * fanout));
    }

    let root = forest[0].0;
    let qep = qb
        .finish(root)
        .expect("generated plan is structurally valid");
    GeneratedQuery { catalog, qep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::ChainSet;
    use dqs_sim::SeedSplitter;

    fn rng(seed: u64) -> ChaCha8Rng {
        SeedSplitter::new(seed).stream("query-generator")
    }

    #[test]
    fn generates_requested_relation_count() {
        let q = generate(&GeneratorConfig::default(), &mut rng(1));
        assert_eq!(q.catalog.len(), 6);
        assert_eq!(q.qep.join_count(), 5);
        assert!(q.qep.validate().is_ok());
    }

    #[test]
    fn same_seed_same_query() {
        let a = generate(&GeneratorConfig::default(), &mut rng(7));
        let b = generate(&GeneratorConfig::default(), &mut rng(7));
        assert_eq!(a.qep, b.qep);
        assert_eq!(a.catalog, b.catalog);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::default(), &mut rng(1));
        let b = generate(&GeneratorConfig::default(), &mut rng(2));
        assert!(a.qep != b.qep || a.catalog != b.catalog);
    }

    #[test]
    fn cardinalities_respect_range() {
        let cfg = GeneratorConfig {
            relations: 10,
            cardinality: (100, 200),
            ..GeneratorConfig::default()
        };
        let q = generate(&cfg, &mut rng(3));
        for (_, r) in q.catalog.iter() {
            assert!((100..=200).contains(&r.cardinality));
        }
    }

    #[test]
    fn every_generated_plan_decomposes() {
        for seed in 0..50 {
            for n in 2..=10 {
                let cfg = GeneratorConfig {
                    relations: n,
                    ..GeneratorConfig::default()
                };
                let q = generate(&cfg, &mut rng(seed));
                let set = ChainSet::decompose(&q.qep);
                assert_eq!(set.len(), n, "one chain per relation (no Mat nodes)");
                // Exactly one output chain, blocked-by ids all smaller.
                let outputs = set
                    .chains
                    .iter()
                    .filter(|c| matches!(c.sink, crate::chains::ChainSink::Output))
                    .count();
                assert_eq!(outputs, 1);
                for c in &set.chains {
                    for d in &c.blocked_by {
                        assert!(d.0 < c.id.0, "iterator order respects dependencies");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_relation() {
        let cfg = GeneratorConfig {
            relations: 1,
            ..GeneratorConfig::default()
        };
        let _ = generate(&cfg, &mut rng(0));
    }
}
