//! Pipeline-chain decomposition.
//!
//! §2.2: "A QEP can be decomposed into a set of maximum pipeline chains. A
//! pipeline chain (PC) is the maximal set of physical operators linked by
//! pipelinable edges. Blocking edges induce dependency constraints between
//! PCs."
//!
//! Each chain starts at a *source* — a wrapper scan or the temp relation
//! written by a `Mat` node — and follows pipelinable edges upward through the
//! probe sides of hash joins until it hits a blocking edge: the build side of
//! a join (sink: hash table), a `Mat` node (sink: temp relation), or the plan
//! root (sink: query output).
//!
//! Chains are numbered in the classical iterator activation order (build
//! subtree before probe subtree, §2.3), so the sequential strategy SEQ is
//! exactly "execute chains in id order".

use std::collections::BTreeSet;

use dqs_relop::{HtId, OpSpec, RelId};

use crate::qep::{NodeId, Qep, QepNode};

/// Identifier of a pipeline chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PcId(pub u32);

/// Identifier of a materialization temp relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatId(pub u32);

/// Where a chain's input tuples come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainSource {
    /// The communication queue of a remote wrapper.
    Wrapper(RelId),
    /// A temp relation produced by a `Mat` sink.
    Temp(MatId),
}

/// Where a chain's output goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainSink {
    /// Into a hash table (the blocking build edge of a join).
    Build(HtId),
    /// Into a temp relation (an explicit `Mat`).
    Mat(MatId),
    /// The query result.
    Output,
}

/// One maximal pipeline chain.
#[derive(Debug, Clone)]
pub struct PipelineChain {
    /// Chain id == position in [`ChainSet::chains`].
    pub id: PcId,
    /// Which query of the forest this chain belongs to (0 for single-query
    /// plans).
    pub query: u32,
    /// Input source.
    pub source: ChainSource,
    /// Operator specs in pipeline order; if the sink is `Build`, the last
    /// spec is the corresponding `OpSpec::Build`.
    pub ops: Vec<OpSpec>,
    /// Output sink.
    pub sink: ChainSink,
    /// Direct ancestors: chains connected to this one by one blocking edge
    /// (they must complete before this chain may run). Sorted, deduplicated.
    pub blocked_by: Vec<PcId>,
}

impl PipelineChain {
    /// Hash tables probed by this chain.
    pub fn probes(&self) -> Vec<HtId> {
        self.ops
            .iter()
            .filter_map(|o| match o {
                OpSpec::Probe { table, .. } => Some(*table),
                _ => None,
            })
            .collect()
    }
}

/// The full decomposition of one QEP.
#[derive(Debug, Clone)]
pub struct ChainSet {
    /// Chains in iterator (sequential) order.
    pub chains: Vec<PipelineChain>,
    /// Number of hash tables (one per join).
    pub ht_count: u32,
    /// Number of temp relations (one per `Mat` node).
    pub mat_count: u32,
    /// For each hash table, the chain that builds it.
    ht_builder: Vec<PcId>,
    /// For each temp relation, the chain that writes it.
    mat_builder: Vec<PcId>,
}

#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)] // the Of suffix reads as intended
enum Role {
    BuildOf(NodeId),
    ProbeOf(NodeId),
    InputOf(NodeId),
}

impl ChainSet {
    /// Decompose `qep` into maximal pipeline chains.
    pub fn decompose(qep: &Qep) -> ChainSet {
        // Parent role of every node.
        let mut parent: Vec<Option<Role>> = vec![None; qep.len()];
        // Hash-table / temp ids per node index.
        let mut ht_of: Vec<Option<HtId>> = vec![None; qep.len()];
        let mut mat_of: Vec<Option<MatId>> = vec![None; qep.len()];
        let mut ht_count = 0u32;
        let mut mat_count = 0u32;
        for (id, node) in qep.iter() {
            match node {
                QepNode::HashJoin { build, probe, .. } => {
                    parent[build.0 as usize] = Some(Role::BuildOf(id));
                    parent[probe.0 as usize] = Some(Role::ProbeOf(id));
                    ht_of[id.0 as usize] = Some(HtId(ht_count));
                    ht_count += 1;
                }
                QepNode::Mat { input } => {
                    parent[input.0 as usize] = Some(Role::InputOf(id));
                    mat_of[id.0 as usize] = Some(MatId(mat_count));
                    mat_count += 1;
                }
                QepNode::Scan { .. } => {}
            }
        }

        let mut set = ChainSet {
            chains: Vec::new(),
            ht_count,
            mat_count,
            ht_builder: vec![PcId(u32::MAX); ht_count as usize],
            mat_builder: vec![PcId(u32::MAX); mat_count as usize],
        };

        // DFS in iterator order, starting chains at scans and Mat outputs.
        fn visit(
            qep: &Qep,
            id: NodeId,
            parent: &[Option<Role>],
            ht_of: &[Option<HtId>],
            mat_of: &[Option<MatId>],
            set: &mut ChainSet,
        ) {
            match qep.node(id) {
                QepNode::Scan { rel, selectivity } => {
                    let mut ops = vec![OpSpec::Select {
                        selectivity: *selectivity,
                    }];
                    start_chain(
                        qep,
                        id,
                        ChainSource::Wrapper(*rel),
                        &mut ops,
                        parent,
                        ht_of,
                        mat_of,
                        set,
                    );
                }
                QepNode::HashJoin { build, probe, .. } => {
                    visit(qep, *build, parent, ht_of, mat_of, set);
                    visit(qep, *probe, parent, ht_of, mat_of, set);
                }
                QepNode::Mat { input } => {
                    visit(qep, *input, parent, ht_of, mat_of, set);
                    // The complement chain reads the finished temp relation.
                    let m = mat_of[id.0 as usize].expect("mat id assigned");
                    let mut ops = Vec::new();
                    start_chain(
                        qep,
                        id,
                        ChainSource::Temp(m),
                        &mut ops,
                        parent,
                        ht_of,
                        mat_of,
                        set,
                    );
                }
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn start_chain(
            qep: &Qep,
            from: NodeId,
            source: ChainSource,
            ops: &mut Vec<OpSpec>,
            parent: &[Option<Role>],
            ht_of: &[Option<HtId>],
            mat_of: &[Option<MatId>],
            set: &mut ChainSet,
        ) {
            let mut cur = from;
            let sink = loop {
                match parent[cur.0 as usize] {
                    None => break ChainSink::Output,
                    Some(Role::BuildOf(join)) => {
                        let ht = ht_of[join.0 as usize].expect("join has ht");
                        ops.push(OpSpec::Build { table: ht });
                        break ChainSink::Build(ht);
                    }
                    Some(Role::ProbeOf(join)) => {
                        let ht = ht_of[join.0 as usize].expect("join has ht");
                        let fanout = match qep.node(join) {
                            QepNode::HashJoin { fanout, .. } => *fanout,
                            _ => unreachable!("probe parent must be a join"),
                        };
                        ops.push(OpSpec::Probe { table: ht, fanout });
                        cur = join;
                    }
                    Some(Role::InputOf(mat)) => {
                        let m = mat_of[mat.0 as usize].expect("mat has id");
                        break ChainSink::Mat(m);
                    }
                }
            };
            let id = PcId(set.chains.len() as u32);
            match sink {
                ChainSink::Build(h) => set.ht_builder[h.0 as usize] = id,
                ChainSink::Mat(m) => set.mat_builder[m.0 as usize] = id,
                ChainSink::Output => {}
            }
            set.chains.push(PipelineChain {
                id,
                query: 0,
                source,
                ops: std::mem::take(ops),
                sink,
                blocked_by: Vec::new(),
            });
        }

        for (q, &root) in qep.roots().iter().enumerate() {
            let first = set.chains.len();
            visit(qep, root, &parent, &ht_of, &mat_of, &mut set);
            for c in &mut set.chains[first..] {
                c.query = q as u32;
            }
        }

        // Direct dependency constraints: probing a table blocks on its
        // builder; reading a temp blocks on its writer.
        for i in 0..set.chains.len() {
            let mut deps = BTreeSet::new();
            for ht in set.chains[i].probes() {
                deps.insert(set.ht_builder[ht.0 as usize]);
            }
            if let ChainSource::Temp(m) = set.chains[i].source {
                deps.insert(set.mat_builder[m.0 as usize]);
            }
            set.chains[i].blocked_by = deps.into_iter().collect();
        }
        set
    }

    /// The chain that builds hash table `ht`.
    pub fn builder_of(&self, ht: HtId) -> PcId {
        self.ht_builder[ht.0 as usize]
    }

    /// The chain that writes temp relation `m`.
    pub fn writer_of(&self, m: MatId) -> PcId {
        self.mat_builder[m.0 as usize]
    }

    /// Chain lookup.
    pub fn chain(&self, id: PcId) -> &PipelineChain {
        &self.chains[id.0 as usize]
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when the set is empty (never for a decomposed plan).
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// `ancestors*(p)`: the transitive closure of the blocking relation
    /// (§4.1), i.e. every chain that must finish before `p` may run.
    pub fn ancestors_star(&self, p: PcId) -> BTreeSet<PcId> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<PcId> = self.chain(p).blocked_by.clone();
        while let Some(q) = stack.pop() {
            if out.insert(q) {
                stack.extend(self.chain(q).blocked_by.iter().copied());
            }
        }
        out
    }

    /// Chains that transitively depend on `p` (used to reason about how much
    /// work a slow chain gates — §5.2's "p_B and p_F represent approximately
    /// one half of the query execution").
    pub fn descendants_star(&self, p: PcId) -> BTreeSet<PcId> {
        let mut out = BTreeSet::new();
        for c in &self.chains {
            if self.ancestors_star(c.id).contains(&p) {
                out.insert(c.id);
            }
        }
        out
    }

    /// The sequential (iterator model) execution order — chain ids ascending.
    pub fn sequential_order(&self) -> Vec<PcId> {
        (0..self.chains.len() as u32).map(PcId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qep::QepBuilder;

    /// Figure 3-like plan: W_A ⋈ W_B where the result joins W_C.
    fn three_way() -> Qep {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.0);
        let w_b = b.scan(RelId(1), 1.0);
        let j1 = b.hash_join(a, w_b, 1.0);
        let c = b.scan(RelId(2), 1.0);
        let j2 = b.hash_join(j1, c, 1.0);
        b.finish(j2).unwrap()
    }

    #[test]
    fn three_way_decomposes_into_three_chains() {
        let set = ChainSet::decompose(&three_way());
        assert_eq!(set.len(), 3);
        assert_eq!(set.ht_count, 2);
        assert_eq!(set.mat_count, 0);

        // p0 = scan A -> build HT0
        let p0 = set.chain(PcId(0));
        assert_eq!(p0.source, ChainSource::Wrapper(RelId(0)));
        assert_eq!(p0.sink, ChainSink::Build(HtId(0)));
        assert!(p0.blocked_by.is_empty());

        // p1 = scan B -> probe HT0 -> build HT1, blocked by p0
        let p1 = set.chain(PcId(1));
        assert_eq!(p1.source, ChainSource::Wrapper(RelId(1)));
        assert_eq!(p1.sink, ChainSink::Build(HtId(1)));
        assert_eq!(p1.blocked_by, vec![PcId(0)]);
        assert_eq!(p1.probes(), vec![HtId(0)]);

        // p2 = scan C -> probe HT1 -> output, blocked by p1
        let p2 = set.chain(PcId(2));
        assert_eq!(p2.sink, ChainSink::Output);
        assert_eq!(p2.blocked_by, vec![PcId(1)]);
    }

    #[test]
    fn ancestors_star_is_transitive() {
        let set = ChainSet::decompose(&three_way());
        let anc = set.ancestors_star(PcId(2));
        assert_eq!(anc.into_iter().collect::<Vec<_>>(), vec![PcId(0), PcId(1)]);
        assert!(set.ancestors_star(PcId(0)).is_empty());
    }

    #[test]
    fn descendants_star_inverts_ancestors() {
        let set = ChainSet::decompose(&three_way());
        let desc = set.descendants_star(PcId(0));
        assert_eq!(desc.into_iter().collect::<Vec<_>>(), vec![PcId(1), PcId(2)]);
    }

    #[test]
    fn mat_splits_a_chain_in_two() {
        // scan A -> Mat -> probe(HT of scan B) ... i.e. plan:
        // J(build=scan B, probe=Mat(scan A)).
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.0);
        let m = b.mat(a);
        let w_b = b.scan(RelId(1), 1.0);
        let j = b.hash_join(w_b, m, 1.0);
        let qep = b.finish(j).unwrap();

        let set = ChainSet::decompose(&qep);
        assert_eq!(set.len(), 3);
        assert_eq!(set.mat_count, 1);

        // Iterator order: build side (scan B) first, then the Mat input
        // chain, then the temp-sourced complement chain.
        let p0 = set.chain(PcId(0));
        assert_eq!(p0.source, ChainSource::Wrapper(RelId(1)));
        assert_eq!(p0.sink, ChainSink::Build(HtId(0)));

        let mf = set.chain(PcId(1));
        assert_eq!(mf.source, ChainSource::Wrapper(RelId(0)));
        assert_eq!(mf.sink, ChainSink::Mat(MatId(0)));
        assert!(mf.blocked_by.is_empty(), "MF has no ancestors (§4.4)");

        let cf = set.chain(PcId(2));
        assert_eq!(cf.source, ChainSource::Temp(MatId(0)));
        assert_eq!(cf.sink, ChainSink::Output);
        assert_eq!(cf.blocked_by, vec![PcId(0), PcId(1)]);
        assert_eq!(set.writer_of(MatId(0)), PcId(1));
    }

    #[test]
    fn builder_of_maps_tables_to_chains() {
        let set = ChainSet::decompose(&three_way());
        assert_eq!(set.builder_of(HtId(0)), PcId(0));
        assert_eq!(set.builder_of(HtId(1)), PcId(1));
    }

    #[test]
    fn chain_ops_carry_scan_selectivity() {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 0.25);
        let c = b.scan(RelId(1), 1.0);
        let j = b.hash_join(a, c, 2.0);
        let qep = b.finish(j).unwrap();
        let set = ChainSet::decompose(&qep);
        assert_eq!(
            set.chain(PcId(0)).ops[0],
            OpSpec::Select { selectivity: 0.25 }
        );
        // Probe chain carries the join fanout.
        assert!(set
            .chain(PcId(1))
            .ops
            .iter()
            .any(|o| matches!(o, OpSpec::Probe { fanout, .. } if *fanout == 2.0)));
    }

    #[test]
    fn sequential_order_is_ascending_ids() {
        let set = ChainSet::decompose(&three_way());
        assert_eq!(set.sequential_order(), vec![PcId(0), PcId(1), PcId(2)]);
    }
}
