//! Catalog: what the mediator knows about the remote relations.
//!
//! §3.3: the annotated QEP carries estimated operator result sizes and
//! memory needs; these derive from per-relation cardinality estimates and
//! per-join selectivities. The catalog is the mediator-side estimate — the
//! sources are autonomous, so runtime cardinalities may differ (the paper's
//! "inaccuracy of estimates" problem, handled by the DQO hooks).

use dqs_relop::RelId;

/// Mediator-side description of one remote relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSpec {
    /// Human-readable name ("A", "B", ... in the paper's experiments).
    pub name: String,
    /// Estimated cardinality (tuples).
    pub cardinality: u64,
}

/// The set of relations a query integrates, indexed by [`RelId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    relations: Vec<RelationSpec>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation; returns its id.
    pub fn add(&mut self, name: impl Into<String>, cardinality: u64) -> RelId {
        self.relations.push(RelationSpec {
            name: name.into(),
            cardinality,
        });
        RelId(self.relations.len() as u16 - 1)
    }

    /// Lookup by id.
    pub fn relation(&self, id: RelId) -> &RelationSpec {
        &self.relations[id.0 as usize]
    }

    /// Cardinality of `id`.
    pub fn cardinality(&self, id: RelId) -> u64 {
        self.relation(id).cardinality
    }

    /// Name of `id`.
    pub fn name(&self, id: RelId) -> &str {
        &self.relation(id).name
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if no relations registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate `(RelId, &RelationSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSpec)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u16), r))
    }

    /// Total tuples across all relations (the retrieval volume).
    pub fn total_tuples(&self) -> u64 {
        self.relations.iter().map(|r| r.cardinality).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assigns_sequential_ids() {
        let mut c = Catalog::new();
        let a = c.add("A", 100);
        let b = c.add("B", 200);
        assert_eq!(a, RelId(0));
        assert_eq!(b, RelId(1));
        assert_eq!(c.name(a), "A");
        assert_eq!(c.cardinality(b), 200);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_tuples(), 300);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut c = Catalog::new();
        c.add("X", 1);
        c.add("Y", 2);
        let names: Vec<&str> = c.iter().map(|(_, r)| r.name.as_str()).collect();
        assert_eq!(names, vec!["X", "Y"]);
    }
}
