//! Classical dynamic-programming optimizer.
//!
//! §5.1.1: the experiment query was "optimized in a classical dynamic
//! programming query optimizer". This module implements a textbook DP over
//! connected subsets of the join graph, enumerating *bushy* trees (§2.2:
//! "bushy plans ... offer the best opportunities to minimize the size of
//! intermediate results") with the sum of intermediate result cardinalities
//! as the cost function. Build sides are the smaller input, as for the
//! simulated asymmetric hash join.
//!
//! The optimizer runs at compile time in the paper's architecture; the
//! dynamic QEP optimizer (DQO) may invoke it again for re-optimization, a
//! hook `dqs-core` exposes but (like the paper, which defers to "phase 2 of
//! scrambling") does not exercise in the experiments.

use std::collections::HashMap;

use dqs_relop::RelId;

use crate::qep::{NodeId, Qep, QepBuilder};
use crate::spec::Catalog;

/// An undirected join graph over the catalog's relations.
#[derive(Debug, Clone, Default)]
pub struct JoinGraph {
    /// `((i, j), selectivity)` with `i < j`, relation indices into the
    /// catalog. Join selectivity is the classical `|R ⋈ S| / (|R|·|S|)`.
    edges: HashMap<(u16, u16), f64>,
}

impl JoinGraph {
    /// Empty graph.
    pub fn new() -> Self {
        JoinGraph::default()
    }

    /// Add (or overwrite) a join predicate between `a` and `b`.
    pub fn join(&mut self, a: RelId, b: RelId, selectivity: f64) {
        assert!(a != b, "self-join edges are not supported");
        assert!(
            selectivity > 0.0 && selectivity.is_finite(),
            "bad selectivity {selectivity}"
        );
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.edges.insert(key, selectivity);
    }

    /// Selectivity between two relation indices, if an edge exists.
    fn edge(&self, a: u16, b: u16) -> Option<f64> {
        self.edges.get(&(a.min(b), a.max(b))).copied()
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no predicates exist.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Errors from optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// More relations than the DP can enumerate (bitset width).
    TooManyRelations {
        /// Count supplied.
        got: usize,
        /// Supported maximum.
        max: usize,
    },
    /// The join graph does not connect all relations (cross products are
    /// rejected rather than silently planned).
    Disconnected,
    /// Fewer than two relations.
    TooFew,
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::TooManyRelations { got, max } => {
                write!(f, "{got} relations exceed the DP limit of {max}")
            }
            OptimizeError::Disconnected => write!(f, "join graph is disconnected"),
            OptimizeError::TooFew => write!(f, "need at least two relations"),
        }
    }
}

impl std::error::Error for OptimizeError {}

const MAX_RELS: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Best {
    cost: f64,
    card: f64,
    split: Option<(u32, u32)>, // (left subset, right subset)
}

/// Optimize `graph` over `catalog` into a bushy QEP.
///
/// Cost = Σ intermediate result cardinalities. Ties break toward the
/// lexicographically smaller split, so plans are deterministic.
pub fn optimize(catalog: &Catalog, graph: &JoinGraph) -> Result<Qep, OptimizeError> {
    let n = catalog.len();
    if n < 2 {
        return Err(OptimizeError::TooFew);
    }
    if n > MAX_RELS {
        return Err(OptimizeError::TooManyRelations {
            got: n,
            max: MAX_RELS,
        });
    }
    let full: u32 = (1u32 << n) - 1;
    let cards: Vec<f64> = (0..n)
        .map(|i| catalog.cardinality(RelId(i as u16)) as f64)
        .collect();

    let mut best: Vec<Option<Best>> = vec![None; (full + 1) as usize];
    for (i, &c) in cards.iter().enumerate() {
        best[1usize << i] = Some(Best {
            cost: 0.0,
            card: c,
            split: None,
        });
    }

    // Enumerate subsets in increasing popcount order via plain increasing
    // value order (any strict subset of S is numerically smaller than S).
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        // Enumerate proper nonempty subsets l of s; take each unordered
        // split once (l < complement).
        let mut l = (s - 1) & s;
        let mut found: Option<Best> = None;
        while l > 0 {
            let r = s & !l;
            if l < r {
                if let (Some(bl), Some(br)) = (best[l as usize], best[r as usize]) {
                    if let Some(sel) = cross_selectivity(graph, l, r) {
                        let card = bl.card * br.card * sel;
                        let cost = bl.cost + br.cost + card;
                        let better = match found {
                            None => true,
                            Some(f) => cost < f.cost,
                        };
                        if better {
                            found = Some(Best {
                                cost,
                                card,
                                split: Some((l, r)),
                            });
                        }
                    }
                }
            }
            l = (l - 1) & s;
        }
        best[s as usize] = found;
    }

    let Some(root_best) = best[full as usize] else {
        return Err(OptimizeError::Disconnected);
    };
    let _ = root_best;

    // Materialize the plan bottom-up.
    let mut qb = QepBuilder::new();
    let root = emit(&mut qb, &best, full);
    Ok(qb.finish(root).expect("DP plan is structurally valid"))
}

/// Product of selectivities of edges crossing the (l, r) cut; `None` if no
/// edge crosses (cross product — rejected).
fn cross_selectivity(graph: &JoinGraph, l: u32, r: u32) -> Option<f64> {
    let mut sel = 1.0;
    let mut any = false;
    let mut li = l;
    while li != 0 {
        let i = li.trailing_zeros() as u16;
        li &= li - 1;
        let mut rj = r;
        while rj != 0 {
            let j = rj.trailing_zeros() as u16;
            rj &= rj - 1;
            if let Some(s) = graph.edge(i, j) {
                sel *= s;
                any = true;
            }
        }
    }
    any.then_some(sel)
}

fn emit(qb: &mut QepBuilder, best: &[Option<Best>], s: u32) -> NodeId {
    let b = best[s as usize].expect("emit on unplanned subset");
    match b.split {
        None => {
            let i = s.trailing_zeros() as u16;
            qb.scan(RelId(i), 1.0)
        }
        Some((l, r)) => {
            let bl = best[l as usize].unwrap();
            let br = best[r as usize].unwrap();
            // Smaller side builds (asymmetric hash join, §2.2).
            let (bs, bcard, ps, pcard) = if bl.card <= br.card {
                (l, bl.card, r, br.card)
            } else {
                (r, br.card, l, bl.card)
            };
            let _ = bcard;
            let build = emit(qb, best, bs);
            let probe = emit(qb, best, ps);
            // Per-probe-tuple fan-out reproduces the joint cardinality.
            let fanout = if pcard > 0.0 { b.card / pcard } else { 0.0 };
            qb.hash_join(build, probe, fanout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::AnnotatedPlan;
    use crate::chains::ChainSet;
    use dqs_sim::SimParams;

    fn chain_catalog(cards: &[u64]) -> (Catalog, JoinGraph) {
        let mut cat = Catalog::new();
        let ids: Vec<RelId> = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| cat.add(format!("R{i}"), c))
            .collect();
        let mut g = JoinGraph::new();
        for w in ids.windows(2) {
            g.join(w[0], w[1], 1e-5);
        }
        (cat, g)
    }

    #[test]
    fn two_way_join_builds_smaller_side() {
        let (cat, g) = chain_catalog(&[1_000, 50]);
        let qep = optimize(&cat, &g).unwrap();
        assert_eq!(qep.join_count(), 1);
        let set = ChainSet::decompose(&qep);
        // Build chain (id 0) must be the 50-tuple relation.
        let plan = AnnotatedPlan::annotate(set, &cat, &SimParams::default());
        assert_eq!(plan.info(crate::chains::PcId(0)).source_card, 50.0);
    }

    #[test]
    fn plan_cardinalities_match_selectivity_model() {
        let mut cat = Catalog::new();
        let a = cat.add("A", 1_000);
        let b = cat.add("B", 2_000);
        let mut g = JoinGraph::new();
        g.join(a, b, 1e-3); // |A ⋈ B| = 1000·2000·1e-3 = 2000
        let qep = optimize(&cat, &g).unwrap();
        let plan = AnnotatedPlan::annotate(ChainSet::decompose(&qep), &cat, &SimParams::default());
        // The probe (output) chain's output must be 2000 tuples.
        let out = plan
            .info
            .iter()
            .map(|i| i.output_card)
            .fold(0.0f64, f64::max);
        assert!((out - 2_000.0).abs() < 1.0, "{out}");
    }

    #[test]
    fn star_query_avoids_large_intermediates() {
        // Hub H joins three dimensions; the DP should join the most
        // selective (smallest-result) pairs first.
        let mut cat = Catalog::new();
        let h = cat.add("H", 100_000);
        let d1 = cat.add("D1", 10);
        let d2 = cat.add("D2", 10_000);
        let d3 = cat.add("D3", 100);
        let mut g = JoinGraph::new();
        g.join(h, d1, 1e-4);
        g.join(h, d2, 1e-4);
        g.join(h, d3, 1e-4);
        let qep = optimize(&cat, &g).unwrap();
        assert!(qep.validate().is_ok());
        assert_eq!(qep.join_count(), 3);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut cat = Catalog::new();
        let a = cat.add("A", 10);
        let b = cat.add("B", 10);
        let c = cat.add("C", 10);
        let mut g = JoinGraph::new();
        g.join(a, b, 0.1);
        let _ = c;
        assert_eq!(optimize(&cat, &g), Err(OptimizeError::Disconnected));
    }

    #[test]
    fn single_relation_rejected() {
        let mut cat = Catalog::new();
        cat.add("A", 10);
        assert_eq!(
            optimize(&cat, &JoinGraph::new()),
            Err(OptimizeError::TooFew)
        );
    }

    #[test]
    fn too_many_relations_rejected() {
        let mut cat = Catalog::new();
        let ids: Vec<RelId> = (0..17).map(|i| cat.add(format!("R{i}"), 10)).collect();
        let mut g = JoinGraph::new();
        for w in ids.windows(2) {
            g.join(w[0], w[1], 0.1);
        }
        assert!(matches!(
            optimize(&cat, &g),
            Err(OptimizeError::TooManyRelations { got: 17, .. })
        ));
    }

    #[test]
    fn optimizer_is_deterministic() {
        let (cat, g) = chain_catalog(&[500, 300, 700, 100]);
        let a = optimize(&cat, &g).unwrap();
        let b = optimize(&cat, &g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn optimized_plans_decompose_cleanly() {
        let (cat, g) = chain_catalog(&[500, 300, 700, 100, 900, 50]);
        let qep = optimize(&cat, &g).unwrap();
        let set = ChainSet::decompose(&qep);
        assert_eq!(set.len(), 6);
        for c in &set.chains {
            for d in &c.blocked_by {
                assert!(d.0 < c.id.0);
            }
        }
    }
}
