//! Query execution plans.
//!
//! A QEP (§2.2) is an operator tree over three physical operators:
//!
//! * `Scan` — a leaf reading one remote relation through its wrapper, with
//!   an optional selection predicate;
//! * `HashJoin` — the classical asymmetric binary operator: the *build*
//!   input is **blocking** (the hash table must be complete before probing
//!   starts), the *probe* input is **pipelinable**;
//! * `Mat` — explicit materialization, introduced before a blocking edge;
//!   its input is pipelinable, its output blocking (the consumer reads the
//!   finished temp relation).
//!
//! Plans are stored as an arena of nodes; bushy shapes are fully supported
//! (§2.2: "we consider bushy trees in this paper").

use std::fmt;

use dqs_relop::RelId;

/// Index of a node within a [`Qep`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One physical operator node.
#[derive(Debug, Clone, PartialEq)]
pub enum QepNode {
    /// Leaf: scan the remote relation `rel`, keeping `selectivity` of its
    /// tuples.
    Scan {
        /// Which base relation / wrapper.
        rel: RelId,
        /// Fraction of tuples surviving the scan predicate.
        selectivity: f64,
    },
    /// Hash join with blocking `build` input and pipelinable `probe` input.
    HashJoin {
        /// Child whose output is materialized into the hash table.
        build: NodeId,
        /// Child whose output streams through the probe.
        probe: NodeId,
        /// Average output tuples per probe tuple (join selectivity × build
        /// cardinality).
        fanout: f64,
    },
    /// Explicit materialization of the input into a temp relation.
    Mat {
        /// Pipelined input.
        input: NodeId,
    },
}

/// A query execution plan: an arena of operator nodes plus its root(s).
///
/// A single-root plan is one integration query; a multi-root *forest*
/// packs several independent queries into one executable unit — the §6
/// multi-query extension. Roots are ordered: root `i` is query `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Qep {
    nodes: Vec<QepNode>,
    roots: Vec<NodeId>,
}

/// Errors detected by [`Qep::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QepError {
    /// A node references a child index outside the arena.
    DanglingChild {
        /// The offending parent.
        node: NodeId,
    },
    /// A node is used as input by two parents (plans are trees).
    SharedChild {
        /// The multiply-consumed child.
        node: NodeId,
    },
    /// The node graph contains a cycle.
    Cycle,
    /// The root is not the unique parentless node.
    BadRoot,
    /// A numeric parameter is out of range.
    BadParameter {
        /// The offending node.
        node: NodeId,
        /// Explanation.
        what: &'static str,
    },
}

impl fmt::Display for QepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QepError::DanglingChild { node } => write!(f, "node {node:?} has a dangling child"),
            QepError::SharedChild { node } => write!(f, "node {node:?} has two parents"),
            QepError::Cycle => write!(f, "plan contains a cycle"),
            QepError::BadRoot => write!(f, "root is not the unique parentless node"),
            QepError::BadParameter { node, what } => {
                write!(f, "node {node:?} has a bad parameter: {what}")
            }
        }
    }
}

impl std::error::Error for QepError {}

/// Builder for plans; `NodeId`s are returned as nodes are added.
#[derive(Debug, Default)]
pub struct QepBuilder {
    nodes: Vec<QepNode>,
}

impl QepBuilder {
    /// Start an empty plan.
    pub fn new() -> Self {
        QepBuilder::default()
    }

    fn push(&mut self, n: QepNode) -> NodeId {
        self.nodes.push(n);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Nodes added so far (useful when splicing plans into a forest).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True before any node is added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a scan leaf.
    pub fn scan(&mut self, rel: RelId, selectivity: f64) -> NodeId {
        self.push(QepNode::Scan { rel, selectivity })
    }

    /// Add a hash join; `fanout` is average outputs per probe tuple.
    pub fn hash_join(&mut self, build: NodeId, probe: NodeId, fanout: f64) -> NodeId {
        self.push(QepNode::HashJoin {
            build,
            probe,
            fanout,
        })
    }

    /// Add an explicit materialization.
    pub fn mat(&mut self, input: NodeId) -> NodeId {
        self.push(QepNode::Mat { input })
    }

    /// Finish with `root`, validating the plan.
    pub fn finish(self, root: NodeId) -> Result<Qep, QepError> {
        self.finish_forest(vec![root])
    }

    /// Finish a multi-query forest: each root is one independent query.
    pub fn finish_forest(self, roots: Vec<NodeId>) -> Result<Qep, QepError> {
        let qep = Qep {
            nodes: self.nodes,
            roots,
        };
        qep.validate()?;
        Ok(qep)
    }
}

impl Qep {
    /// The first (or only) root node.
    pub fn root(&self) -> NodeId {
        self.roots[0]
    }

    /// All roots, one per query in the forest.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of independent queries in this plan.
    pub fn query_count(&self) -> usize {
        self.roots.len()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &QepNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the plan has no nodes (never true for a validated plan).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate over `(NodeId, &QepNode)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &QepNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Children of a node (build first for joins, matching the classical
    /// left-to-right iterator activation order).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        match self.node(id) {
            QepNode::Scan { .. } => vec![],
            QepNode::HashJoin { build, probe, .. } => vec![*build, *probe],
            QepNode::Mat { input } => vec![*input],
        }
    }

    /// All scan leaves in DFS (build-before-probe) order, roots in order.
    pub fn scans(&self) -> Vec<(NodeId, RelId)> {
        let mut out = Vec::new();
        for &root in &self.roots {
            self.dfs(root, &mut |id, n| {
                if let QepNode::Scan { rel, .. } = n {
                    out.push((id, *rel));
                }
            });
        }
        out
    }

    /// Number of hash joins.
    pub fn join_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, QepNode::HashJoin { .. }))
            .count()
    }

    fn dfs(&self, id: NodeId, f: &mut impl FnMut(NodeId, &QepNode)) {
        for c in self.children(id) {
            self.dfs(c, f);
        }
        f(id, self.node(id));
    }

    /// Structural and parameter validation.
    pub fn validate(&self) -> Result<(), QepError> {
        if self.nodes.is_empty()
            || self.roots.is_empty()
            || self.roots.iter().any(|r| r.0 as usize >= self.nodes.len())
        {
            return Err(QepError::BadRoot);
        }
        let n = self.nodes.len();
        let mut parents = vec![0u32; n];
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for c in self.children(id) {
                if c.0 as usize >= n {
                    return Err(QepError::DanglingChild { node: id });
                }
                parents[c.0 as usize] += 1;
                if parents[c.0 as usize] > 1 {
                    return Err(QepError::SharedChild { node: c });
                }
            }
            match node {
                QepNode::Scan { selectivity, .. } => {
                    if !(0.0..=1.0).contains(selectivity) || !selectivity.is_finite() {
                        return Err(QepError::BadParameter {
                            node: id,
                            what: "scan selectivity outside [0,1]",
                        });
                    }
                }
                QepNode::HashJoin { fanout, .. } => {
                    if *fanout < 0.0 || !fanout.is_finite() {
                        return Err(QepError::BadParameter {
                            node: id,
                            what: "join fanout negative or non-finite",
                        });
                    }
                }
                QepNode::Mat { .. } => {}
            }
        }
        // The parentless nodes must be exactly the declared roots.
        let parentless: std::collections::BTreeSet<usize> =
            (0..n).filter(|&i| parents[i] == 0).collect();
        let declared: std::collections::BTreeSet<usize> =
            self.roots.iter().map(|r| r.0 as usize).collect();
        if parentless != declared || declared.len() != self.roots.len() {
            return Err(QepError::BadRoot);
        }
        // Trees + unique parents + declared roots imply acyclicity, but
        // check reachability to catch disconnected cyclic islands.
        let mut seen = vec![false; n];
        let mut stack: Vec<NodeId> = self.roots.clone();
        while let Some(id) = stack.pop() {
            if seen[id.0 as usize] {
                return Err(QepError::Cycle);
            }
            seen[id.0 as usize] = true;
            stack.extend(self.children(id));
        }
        if seen.iter().any(|s| !s) {
            return Err(QepError::BadRoot); // disconnected node
        }
        Ok(())
    }

    /// Pretty-print the plan as an indented tree (used by `repro figure5`).
    pub fn render(&self, rel_names: &dyn Fn(RelId) -> String) -> String {
        fn go(
            qep: &Qep,
            id: NodeId,
            depth: usize,
            names: &dyn Fn(RelId) -> String,
            out: &mut String,
        ) {
            let pad = "  ".repeat(depth);
            match qep.node(id) {
                QepNode::Scan { rel, selectivity } => {
                    out.push_str(&format!("{pad}Scan[{}] sel={selectivity}\n", names(*rel)));
                }
                QepNode::HashJoin {
                    build,
                    probe,
                    fanout,
                } => {
                    out.push_str(&format!("{pad}HashJoin fanout={fanout}\n"));
                    out.push_str(&format!("{pad}├─build (blocking):\n"));
                    go(qep, *build, depth + 1, names, out);
                    out.push_str(&format!("{pad}└─probe (pipelined):\n"));
                    go(qep, *probe, depth + 1, names, out);
                }
                QepNode::Mat { input } => {
                    out.push_str(&format!("{pad}Mat\n"));
                    go(qep, *input, depth + 1, names, out);
                }
            }
        }
        let mut s = String::new();
        for (i, &root) in self.roots.iter().enumerate() {
            if self.roots.len() > 1 {
                s.push_str(&format!("query {i}:\n"));
            }
            go(self, root, 0, rel_names, &mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_way() -> Qep {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.0);
        let c = b.scan(RelId(1), 0.5);
        let j = b.hash_join(a, c, 2.0);
        b.finish(j).unwrap()
    }

    #[test]
    fn builder_produces_valid_plan() {
        let q = two_way();
        assert_eq!(q.len(), 3);
        assert_eq!(q.join_count(), 1);
        assert_eq!(q.scans().len(), 2);
    }

    #[test]
    fn scans_in_build_before_probe_order() {
        let q = two_way();
        let rels: Vec<RelId> = q.scans().into_iter().map(|(_, r)| r).collect();
        assert_eq!(rels, vec![RelId(0), RelId(1)]);
    }

    #[test]
    fn shared_child_rejected() {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.0);
        let j = b.hash_join(a, a, 1.0);
        assert_eq!(b.finish(j), Err(QepError::SharedChild { node: a }));
    }

    #[test]
    fn wrong_root_rejected() {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.0);
        let c = b.scan(RelId(1), 1.0);
        let _j = b.hash_join(a, c, 1.0);
        assert_eq!(b.finish(a), Err(QepError::BadRoot));
    }

    #[test]
    fn bad_selectivity_rejected() {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.5);
        assert!(matches!(b.finish(a), Err(QepError::BadParameter { .. })));
    }

    #[test]
    fn negative_fanout_rejected() {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.0);
        let c = b.scan(RelId(1), 1.0);
        let j = b.hash_join(a, c, -2.0);
        assert!(matches!(b.finish(j), Err(QepError::BadParameter { .. })));
    }

    #[test]
    fn mat_nodes_validate() {
        let mut b = QepBuilder::new();
        let a = b.scan(RelId(0), 1.0);
        let m = b.mat(a);
        let c = b.scan(RelId(1), 1.0);
        let j = b.hash_join(m, c, 1.0);
        let q = b.finish(j).unwrap();
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn render_mentions_both_edge_kinds() {
        let q = two_way();
        let s = q.render(&|r| format!("R{}", r.0));
        assert!(s.contains("blocking"));
        assert!(s.contains("pipelined"));
        assert!(s.contains("R0") && s.contains("R1"));
    }
}
