//! Readiness-loop behaviour on real sockets, exercised on both
//! backends (epoll and the poll(2) fallback).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use dqs_reactor::{Backend, Events, Interest, Poller, Token};

fn backends() -> Vec<Backend> {
    if cfg!(target_os = "linux") {
        vec![Backend::Epoll, Backend::Poll]
    } else {
        vec![Backend::Poll]
    }
}

/// Blocking loopback pair; the non-blocking flag is set per-test where
/// it matters (the poller itself never reads or writes).
fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let a = TcpStream::connect(addr).unwrap();
    let (b, _) = listener.accept().unwrap();
    (a, b)
}

fn wait_for(
    poller: &mut Poller,
    events: &mut Events,
    token: Token,
    deadline: Duration,
) -> Option<dqs_reactor::Event> {
    let start = Instant::now();
    while start.elapsed() < deadline {
        poller
            .wait(events, Some(Duration::from_millis(50)))
            .unwrap();
        if let Some(ev) = events.iter().find(|e| e.token == token) {
            return Some(*ev);
        }
    }
    None
}

#[test]
fn readable_fires_only_after_bytes_arrive() {
    for backend in backends() {
        let mut poller = Poller::with_backend(backend).unwrap();
        let (mut a, b) = pair();
        poller
            .register(b.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();

        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.is_empty(),
            "{backend:?}: no bytes yet, nothing should be ready"
        );

        a.write_all(b"ping").unwrap();
        let ev = wait_for(&mut poller, &mut events, Token(1), Duration::from_secs(2))
            .unwrap_or_else(|| panic!("{backend:?}: readable never fired"));
        assert!(ev.readable);
    }
}

#[test]
fn level_triggered_readiness_persists_until_drained() {
    for backend in backends() {
        let mut poller = Poller::with_backend(backend).unwrap();
        let (mut a, mut b) = pair();
        a.write_all(b"abcd").unwrap();
        poller
            .register(b.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::new();
        // First wait reports readable; read only half the bytes.
        wait_for(&mut poller, &mut events, Token(7), Duration::from_secs(2))
            .unwrap_or_else(|| panic!("{backend:?}: first readiness missing"));
        let mut half = [0u8; 2];
        b.read_exact(&mut half).unwrap();
        // Level-triggered: the remaining bytes keep the fd ready.
        let ev = wait_for(&mut poller, &mut events, Token(7), Duration::from_secs(2))
            .unwrap_or_else(|| panic!("{backend:?}: partially drained fd stopped reporting"));
        assert!(ev.readable);
    }
}

#[test]
fn writable_reported_for_fresh_socket_and_interest_can_be_modified() {
    for backend in backends() {
        let mut poller = Poller::with_backend(backend).unwrap();
        let (a, _b) = pair();
        poller
            .register(a.as_raw_fd(), Token(3), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::new();
        let ev = wait_for(&mut poller, &mut events, Token(3), Duration::from_secs(2))
            .unwrap_or_else(|| panic!("{backend:?}: fresh socket should be writable"));
        assert!(ev.writable);

        // Drop write interest: an idle socket reports nothing.
        poller
            .modify(a.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token != Token(3)),
            "{backend:?}: read-only interest must not report writable"
        );
    }
}

#[test]
fn peer_close_reports_readable_eof() {
    for backend in backends() {
        let mut poller = Poller::with_backend(backend).unwrap();
        let (a, b) = pair();
        poller
            .register(b.as_raw_fd(), Token(9), Interest::READABLE)
            .unwrap();
        drop(a);
        let mut events = Events::new();
        let ev = wait_for(&mut poller, &mut events, Token(9), Duration::from_secs(2))
            .unwrap_or_else(|| panic!("{backend:?}: close never surfaced"));
        assert!(
            ev.readable || ev.hangup,
            "{backend:?}: close must look like readable-EOF or hangup"
        );
    }
}

#[test]
fn waker_interrupts_an_indefinite_wait() {
    for backend in backends() {
        let mut poller = Poller::with_backend(backend).unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Events::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "{backend:?}: waker failed to interrupt the wait"
        );
        assert!(events.is_empty(), "{backend:?}: the waker is internal");
        handle.join().unwrap();
    }
}

#[test]
fn waker_is_coalescing_and_safe_after_poller_drop() {
    for backend in backends() {
        let poller = Poller::with_backend(backend).unwrap();
        let waker = poller.waker();
        // Thousands of wakes must not block even though nobody drains.
        for _ in 0..100_000 {
            waker.wake();
        }
        drop(poller);
        waker.wake(); // and waking a dead poller is a no-op
    }
}

#[test]
fn registration_churn_many_fds_with_reused_tokens() {
    for backend in backends() {
        let mut poller = Poller::with_backend(backend).unwrap();
        let mut events = Events::new();
        for round in 0..3 {
            let pairs: Vec<(TcpStream, TcpStream)> = (0..25).map(|_| pair()).collect();
            for (i, (_, b)) in pairs.iter().enumerate() {
                poller
                    .register(b.as_raw_fd(), Token(i as u64), Interest::READABLE)
                    .unwrap();
            }
            // Make every odd-indexed fd readable.
            let mut pairs = pairs;
            for (i, (a, _)) in pairs.iter_mut().enumerate() {
                if i % 2 == 1 {
                    a.write_all(&[i as u8]).unwrap();
                }
            }
            let mut seen = std::collections::HashSet::new();
            let start = Instant::now();
            while seen.len() < 12 && start.elapsed() < Duration::from_secs(5) {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
                for ev in events.iter() {
                    assert!(
                        ev.token.0 % 2 == 1,
                        "{backend:?} round {round}: idle fd {} reported ready",
                        ev.token.0
                    );
                    seen.insert(ev.token.0);
                }
            }
            assert_eq!(
                seen.len(),
                12,
                "{backend:?} round {round}: every written fd must surface"
            );
            for (_, b) in pairs.iter() {
                poller.deregister(b.as_raw_fd()).unwrap();
            }
            // Dropped fds get recycled next round; reused numbers and
            // tokens must not alias stale registrations.
        }
    }
}

#[test]
fn deregistered_fd_never_reports() {
    for backend in backends() {
        let mut poller = Poller::with_backend(backend).unwrap();
        let (mut a, b) = pair();
        poller
            .register(b.as_raw_fd(), Token(4), Interest::READABLE)
            .unwrap();
        poller.deregister(b.as_raw_fd()).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.is_empty(),
            "{backend:?}: deregistered fd still reported"
        );
    }
}
