//! # dqs-reactor — the mediator's non-blocking readiness loop
//!
//! A deliberately small, dependency-free event-notification layer: the
//! C10K substrate the event-driven mediator (and its load generator) run
//! on. Three pieces:
//!
//! * [`Poller`] — OS readiness notification behind one portable API.
//!   On Linux the default backend is **epoll** through a thin FFI shim
//!   (no `libc` crate, no tokio — just the four syscalls the kernel
//!   actually exposes); everywhere (including Linux, selectable for
//!   tests) there is a **`poll(2)`** fallback with identical semantics.
//!   Both are level-triggered: a socket that still has unread bytes or
//!   writable buffer space keeps reporting ready, so a handler that
//!   drains partially never deadlocks.
//! * [`Waker`] — a self-pipe that makes a [`Poller::wait`] return from
//!   another thread: how engine threads tell an I/O worker "this
//!   connection has frames to flush".
//! * [`TimerWheel`] — a hashed timer wheel for connection deadlines and
//!   backoff: O(1) schedule/cancel, expiry in slot order, far-future
//!   timers parked via rounds counters instead of unbounded slots.
//!
//! The crate is sans-policy: it neither reads nor writes sockets, it only
//! says *which* registered file descriptors are ready for what. All
//! `unsafe` in the workspace's network path lives here, confined to the
//! syscall shim in [`sys`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod poller;
pub mod sys;
mod timer;

pub use poller::{Backend, Event, Events, Interest, Poller, Token, Waker};
pub use timer::{TimerId, TimerWheel};
