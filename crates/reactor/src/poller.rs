//! The portable readiness poller: epoll by default on Linux, `poll(2)`
//! as the fallback backend, one API over both.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;
use std::time::Duration;

use crate::sys;

/// Caller-chosen identifier attached to a registration and echoed back
/// in every [`Event`] for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// The token value reserved for the poller's internal waker pipe; never
/// use it for a registration.
const WAKER_TOKEN: u64 = u64::MAX;

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Wake when the fd can accept bytes.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Does this interest include readability?
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Does this interest include writability?
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    fn epoll_mask(&self) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if self.readable {
            m |= sys::EPOLLIN;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    fn poll_mask(&self) -> i16 {
        let mut m = 0i16;
        if self.readable {
            m |= sys::POLLIN;
        }
        if self.writable {
            m |= sys::POLLOUT;
        }
        m
    }
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token.
    pub token: Token,
    /// Bytes (or EOF) are available to read.
    pub readable: bool,
    /// The fd can accept bytes.
    pub writable: bool,
    /// Error or hangup: the handler should read/write and observe the
    /// failure (level-triggered, so this keeps firing until handled).
    pub hangup: bool,
}

/// Reusable event buffer filled by [`Poller::wait`].
pub type Events = Vec<Event>;

/// Which OS facility backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll(7)` — the default on Linux.
    Epoll,
    /// POSIX `poll(2)` — the portable fallback, also selectable on Linux
    /// so tests exercise both code paths.
    Poll,
}

enum Impl {
    Epoll {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    },
    Poll {
        fds: HashMap<RawFd, (u64, i16)>,
    },
}

struct WakeFd(RawFd);

impl Drop for WakeFd {
    fn drop(&mut self) {
        sys::sys_close(self.0);
    }
}

/// Wakes a [`Poller::wait`] from another thread (a self-pipe). Cloneable
/// and cheap; safe to use after the poller is gone (the wake becomes a
/// no-op).
#[derive(Clone)]
pub struct Waker {
    fd: Arc<WakeFd>,
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").field("fd", &self.fd.0).finish()
    }
}

impl Waker {
    /// Make the paired poller's current (or next) `wait` return
    /// promptly. Never blocks; a full pipe or a closed poller both count
    /// as success.
    pub fn wake(&self) {
        match sys::sys_write_byte(self.fd.0) {
            Ok(()) => {}
            // Reader gone (poller dropped): nobody left to wake.
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
            Err(_) => {}
        }
    }
}

/// OS readiness notification for many file descriptors at once.
///
/// Level-triggered on both backends: an fd stays ready until the
/// condition is drained, so partial reads/writes are always safe. Not
/// `Sync` — each I/O worker owns its poller; cross-thread signalling
/// goes through the [`Waker`].
pub struct Poller {
    backend: Impl,
    wake_read: RawFd,
    waker: Waker,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self.backend {
            Impl::Epoll { .. } => "epoll",
            Impl::Poll { .. } => "poll",
        };
        f.debug_struct("Poller").field("backend", &name).finish()
    }
}

impl Poller {
    /// A poller on the platform default backend (epoll on Linux).
    pub fn new() -> io::Result<Poller> {
        if cfg!(target_os = "linux") {
            Poller::with_backend(Backend::Epoll)
        } else {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// A poller on an explicit backend.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let (wake_read, wake_write) = sys::sys_pipe()?;
        let backend = match backend {
            Backend::Epoll => {
                let epfd = match sys::sys_epoll_create() {
                    Ok(fd) => fd,
                    Err(e) => {
                        sys::sys_close(wake_read);
                        sys::sys_close(wake_write);
                        return Err(e);
                    }
                };
                sys::sys_epoll_ctl(
                    epfd,
                    sys::EPOLL_CTL_ADD,
                    wake_read,
                    sys::EPOLLIN,
                    WAKER_TOKEN,
                )?;
                Impl::Epoll {
                    epfd,
                    buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
                }
            }
            Backend::Poll => {
                let mut fds = HashMap::new();
                fds.insert(wake_read, (WAKER_TOKEN, sys::POLLIN));
                Impl::Poll { fds }
            }
        };
        Ok(Poller {
            backend,
            wake_read,
            waker: Waker {
                fd: Arc::new(WakeFd(wake_write)),
            },
        })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self.backend {
            Impl::Epoll { .. } => Backend::Epoll,
            Impl::Poll { .. } => Backend::Poll,
        }
    }

    /// A handle other threads use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Start watching `fd` for `interest`, reporting it as `token`. The
    /// fd must stay open until [`Poller::deregister`]; `token` must not
    /// be `u64::MAX` (reserved for the internal waker).
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert_ne!(token.0, WAKER_TOKEN, "token u64::MAX is reserved");
        match &mut self.backend {
            Impl::Epoll { epfd, .. } => sys::sys_epoll_ctl(
                *epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                interest.epoll_mask(),
                token.0,
            ),
            Impl::Poll { fds } => {
                fds.insert(fd, (token.0, interest.poll_mask()));
                Ok(())
            }
        }
    }

    /// Change an existing registration's interest (the token may change
    /// too).
    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert_ne!(token.0, WAKER_TOKEN, "token u64::MAX is reserved");
        match &mut self.backend {
            Impl::Epoll { epfd, .. } => sys::sys_epoll_ctl(
                *epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                interest.epoll_mask(),
                token.0,
            ),
            Impl::Poll { fds } => {
                fds.insert(fd, (token.0, interest.poll_mask()));
                Ok(())
            }
        }
    }

    /// Stop watching `fd`. Call before closing the fd, or a recycled
    /// descriptor number could alias the stale registration.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Impl::Epoll { epfd, .. } => sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, 0, 0),
            Impl::Poll { fds } => {
                fds.remove(&fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registration is ready, the timeout
    /// elapses, or a [`Waker`] fires; fill `events` with what's ready.
    /// A waker interruption returns with whatever else was ready
    /// (possibly nothing) — the caller then drains its mailboxes.
    pub fn wait(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: sys::CInt = match timeout {
            // Round up so a 100µs deadline doesn't spin at timeout 0.
            Some(d) => {
                d.as_millis().min(i32::MAX as u128) as sys::CInt
                    + sys::CInt::from(d.subsec_nanos() % 1_000_000 != 0)
            }
            None => -1,
        };
        match &mut self.backend {
            Impl::Epoll { epfd, buf } => {
                let n = sys::sys_epoll_wait(*epfd, buf, timeout_ms)?;
                for ev in buf.iter().take(n) {
                    // Copy out of the (packed) struct before using.
                    let mask = ev.events;
                    let data = ev.data;
                    if data == WAKER_TOKEN {
                        sys::sys_drain(self.wake_read);
                        continue;
                    }
                    events.push(Event {
                        token: Token(data),
                        readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: mask & sys::EPOLLOUT != 0,
                        hangup: mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
            }
            Impl::Poll { fds } => {
                let mut pollfds: Vec<sys::PollFd> = fds
                    .iter()
                    .map(|(&fd, &(_, mask))| sys::PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    })
                    .collect();
                let n = sys::sys_poll(&mut pollfds, timeout_ms)?;
                if n == 0 {
                    return Ok(());
                }
                for pfd in &pollfds {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let (token, _) = fds[&pfd.fd];
                    if token == WAKER_TOKEN {
                        sys::sys_drain(self.wake_read);
                        continue;
                    }
                    events.push(Event {
                        token: Token(token),
                        readable: pfd.revents & sys::POLLIN != 0,
                        writable: pfd.revents & sys::POLLOUT != 0,
                        hangup: pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                    });
                }
            }
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Impl::Epoll { epfd, .. } = self.backend {
            sys::sys_close(epfd);
        }
        sys::sys_close(self.wake_read);
    }
}
