//! A hashed timer wheel for connection deadlines and backoff.
//!
//! Schedule and cancel are O(1); expiry cost is proportional to the
//! ticks that actually elapsed (capped at one full sweep of the wheel).
//! Timers further out than one wheel revolution stay parked in their
//! slot and simply survive sweeps until their absolute tick arrives —
//! no unbounded slot vectors, no heap.
//!
//! All methods take an explicit `now` so the wheel is testable without
//! sleeping: callers (the mediator's I/O workers) pass one `Instant`
//! per loop iteration.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::poller::Token;

/// Handle for cancelling a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug, Clone, Copy)]
struct Entry {
    id: u64,
    token: Token,
    /// Absolute tick at which the entry fires.
    expiry: u64,
}

/// The wheel: `slots` buckets of `granularity` each.
#[derive(Debug)]
pub struct TimerWheel {
    granularity: Duration,
    slots: Vec<Vec<Entry>>,
    anchor: Instant,
    /// Next absolute tick to sweep.
    cursor: u64,
    next_id: u64,
    cancelled: HashSet<u64>,
    live: usize,
    /// Lower bound on the earliest live expiry tick (may be stale after
    /// cancels; lazily recomputed when exhausted).
    earliest: u64,
}

impl TimerWheel {
    /// A wheel anchored at `Instant::now()`.
    pub fn new(granularity: Duration, slots: usize) -> TimerWheel {
        TimerWheel::with_anchor(granularity, slots, Instant::now())
    }

    /// A wheel anchored at an explicit instant (deterministic tests).
    pub fn with_anchor(granularity: Duration, slots: usize, anchor: Instant) -> TimerWheel {
        assert!(slots > 0, "a timer wheel needs at least one slot");
        assert!(
            granularity > Duration::ZERO,
            "a timer wheel needs a positive granularity"
        );
        TimerWheel {
            granularity,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            anchor,
            cursor: 0,
            next_id: 0,
            cancelled: HashSet::new(),
            live: 0,
            earliest: u64::MAX,
        }
    }

    /// Live (scheduled, not yet expired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.anchor);
        (elapsed.as_nanos() / self.granularity.as_nanos()) as u64
    }

    /// Schedule `token` to fire `after` from `now`. Deadlines round *up*
    /// to the next tick, so a timer never fires early.
    pub fn schedule(&mut self, now: Instant, after: Duration, token: Token) -> TimerId {
        let deadline = now
            .checked_add(after)
            .unwrap_or_else(|| now + Duration::from_secs(u32::MAX as u64));
        let elapsed = deadline.saturating_duration_since(self.anchor).as_nanos();
        let gran = self.granularity.as_nanos();
        let expiry = (elapsed.div_ceil(gran) as u64).max(self.cursor);
        let id = self.next_id;
        self.next_id += 1;
        let slot = (expiry % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { id, token, expiry });
        self.live += 1;
        self.earliest = self.earliest.min(expiry);
        TimerId(id)
    }

    /// Cancel a scheduled timer. Unknown or already-fired ids are a
    /// no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if self.cancelled.insert(id.0) {
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Sweep every tick up to `now`, appending expired tokens to
    /// `expired` in tick order.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<Token>) {
        let now_tick = self.tick_of(now);
        if now_tick < self.cursor {
            return;
        }
        let n = self.slots.len() as u64;
        if now_tick - self.cursor + 1 >= n {
            // A full revolution (or more) elapsed: one pass over every
            // slot catches everything due.
            for slot in &mut self.slots {
                Self::drain_slot(slot, now_tick, &mut self.cancelled, &mut self.live, expired);
            }
        } else {
            for tick in self.cursor..=now_tick {
                let slot = (tick % n) as usize;
                Self::drain_slot(
                    &mut self.slots[slot],
                    tick,
                    &mut self.cancelled,
                    &mut self.live,
                    expired,
                );
            }
        }
        self.cursor = now_tick + 1;
        if self.live == 0 {
            // NOTE: `cancelled` must NOT be cleared here even though no
            // timer is live — cancelled entries still sit in their slots
            // (cancellation is lazy) and forgetting them would resurrect
            // each one at its original expiry tick. The set self-cleans:
            // `drain_slot` removes an id the moment its tick is swept.
            self.earliest = u64::MAX;
        } else if self.earliest < self.cursor {
            // The bound is exhausted (fired or cancelled): recompute it
            // exactly. Happens at most once per earliest-miss, not per
            // wait.
            self.earliest = self
                .slots
                .iter()
                .flatten()
                .filter(|e| !self.cancelled.contains(&e.id))
                .map(|e| e.expiry)
                .min()
                .unwrap_or(u64::MAX);
        }
    }

    fn drain_slot(
        slot: &mut Vec<Entry>,
        tick: u64,
        cancelled: &mut HashSet<u64>,
        live: &mut usize,
        expired: &mut Vec<Token>,
    ) {
        slot.retain(|e| {
            if e.expiry > tick {
                return true; // parked for a later revolution
            }
            if cancelled.remove(&e.id) {
                return false; // cancelled before firing
            }
            expired.push(e.token);
            *live = live.saturating_sub(1);
            false
        });
    }

    /// How long until the earliest pending timer could fire, from `now`.
    /// `None` means no timer is pending (wait without a timeout).
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        if self.live == 0 {
            return None;
        }
        let target = self.earliest.max(self.cursor);
        let total = self
            .granularity
            .as_nanos()
            .saturating_mul(u128::from(target));
        let since_anchor = now.saturating_duration_since(self.anchor).as_nanos();
        let remaining = total.saturating_sub(since_anchor);
        Some(Duration::from_nanos(
            remaining.min(u128::from(u64::MAX)) as u64
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_anchor(ms(10), 16, t0);
        w.schedule(t0, ms(50), Token(5));
        w.schedule(t0, ms(20), Token(2));
        w.schedule(t0, ms(80), Token(8));
        let mut fired = Vec::new();
        w.advance(t0 + ms(100), &mut fired);
        assert_eq!(fired, vec![Token(2), Token(5), Token(8)]);
        assert!(w.is_empty());
    }

    #[test]
    fn timers_never_fire_early() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_anchor(ms(10), 16, t0);
        w.schedule(t0, ms(35), Token(1));
        let mut fired = Vec::new();
        w.advance(t0 + ms(30), &mut fired);
        assert!(fired.is_empty(), "a 35ms timer must not fire at 30ms");
        w.advance(t0 + ms(40), &mut fired);
        assert_eq!(fired, vec![Token(1)]);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_anchor(ms(10), 16, t0);
        let a = w.schedule(t0, ms(20), Token(1));
        w.schedule(t0, ms(20), Token(2));
        w.cancel(a);
        assert_eq!(w.len(), 1);
        let mut fired = Vec::new();
        w.advance(t0 + ms(50), &mut fired);
        assert_eq!(fired, vec![Token(2)]);
        // Cancelling after the fact is a no-op.
        w.cancel(a);
        assert!(w.is_empty());
    }

    #[test]
    fn far_timers_survive_full_revolutions() {
        let t0 = Instant::now();
        // 8 slots of 10ms = an 80ms revolution; 250ms parks 3 laps out.
        let mut w = TimerWheel::with_anchor(ms(10), 8, t0);
        w.schedule(t0, ms(250), Token(9));
        let mut fired = Vec::new();
        for step in 1..=24 {
            w.advance(t0 + ms(step * 10), &mut fired);
        }
        assert!(fired.is_empty(), "not due before 250ms");
        w.advance(t0 + ms(251), &mut fired);
        assert_eq!(fired, vec![Token(9)]);
    }

    #[test]
    fn a_giant_idle_gap_costs_one_sweep_and_loses_nothing() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_anchor(ms(1), 32, t0);
        for i in 0..100 {
            w.schedule(t0, ms(i), Token(i));
        }
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_secs(3600), &mut fired);
        assert_eq!(fired.len(), 100);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_tracks_the_earliest_live_timer() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_anchor(ms(10), 16, t0);
        assert_eq!(w.next_deadline(t0), None);
        let early = w.schedule(t0, ms(30), Token(1));
        w.schedule(t0, ms(90), Token(2));
        let d = w.next_deadline(t0).unwrap();
        assert!(d <= ms(40), "earliest is the 30ms timer, got {d:?}");
        // Cancel the early one; after a sweep the bound recomputes to the
        // later timer.
        w.cancel(early);
        let mut fired = Vec::new();
        w.advance(t0 + ms(40), &mut fired);
        assert!(fired.is_empty());
        let d = w.next_deadline(t0 + ms(40)).unwrap();
        assert!(d > ms(20) && d <= ms(60), "bound must move to 90ms: {d:?}");
    }

    #[test]
    fn a_cancelled_far_timer_stays_dead_after_the_wheel_goes_idle() {
        // Regression: a long deadline parks several revolutions out; it
        // is cancelled almost immediately, the wheel goes idle (live ==
        // 0) and keeps being advanced — exactly a server connection that
        // submits fast and then waits in a queue. The parked entry must
        // not resurrect when its original expiry tick finally arrives.
        let t0 = Instant::now();
        let mut w = TimerWheel::with_anchor(ms(100), 64, t0);
        let id = w.schedule(t0, Duration::from_secs(60), Token(1));
        w.cancel(id);
        assert!(w.is_empty());
        let mut fired = Vec::new();
        for step in 1..=700 {
            w.advance(t0 + ms(step * 100), &mut fired);
        }
        assert!(
            fired.is_empty(),
            "a cancelled timer fired after the wheel idled: {fired:?}"
        );
    }

    #[test]
    fn zero_delay_fires_on_the_next_sweep() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_anchor(ms(10), 4, t0);
        let mut fired = Vec::new();
        w.advance(t0 + ms(55), &mut fired); // move the cursor forward
        w.schedule(t0 + ms(55), Duration::ZERO, Token(7));
        w.advance(t0 + ms(65), &mut fired);
        assert_eq!(fired, vec![Token(7)]);
    }
}
