//! The syscall shim: the handful of `extern "C"` declarations the
//! reactor needs, with no `libc` crate in between.
//!
//! Everything here is a direct binding to the C library symbols the
//! platform already links (std itself links libc), so the build stays
//! fully offline. The rest of the crate wraps these in safe types; no
//! `unsafe` escapes this module's callers beyond the documented
//! contracts.

use std::io;
use std::os::fd::RawFd;

/// C `int`.
pub type CInt = i32;
/// C `unsigned long` (the `nfds_t` of `poll(2)` on Linux).
pub type CULong = u64;

// --- epoll (Linux) ----------------------------------------------------------

/// `EPOLL_CLOEXEC` for `epoll_create1(2)`.
pub const EPOLL_CLOEXEC: CInt = 0x8_0000;
/// Add a new fd to the interest list.
pub const EPOLL_CTL_ADD: CInt = 1;
/// Remove an fd from the interest list.
pub const EPOLL_CTL_DEL: CInt = 2;
/// Change an fd's event mask.
pub const EPOLL_CTL_MOD: CInt = 3;
/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// One epoll event, ABI-compatible with the kernel's `struct
/// epoll_event` (packed on x86-64, where the kernel declares it
/// `__attribute__((packed))`).
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-owned cookie, returned verbatim (we store the token).
    pub data: u64,
}

// --- poll (POSIX) -----------------------------------------------------------

/// Readable (`poll(2)`).
pub const POLLIN: i16 = 0x001;
/// Writable (`poll(2)`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`poll(2)`, revents only).
pub const POLLERR: i16 = 0x008;
/// Hangup (`poll(2)`, revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (`poll(2)`, revents only).
pub const POLLNVAL: i16 = 0x020;

/// One `poll(2)` registration, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: CInt,
    /// Requested events.
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

// --- pipes ------------------------------------------------------------------

/// `O_NONBLOCK` on Linux.
pub const O_NONBLOCK: CInt = 0x800;
/// `O_CLOEXEC` on Linux.
pub const O_CLOEXEC: CInt = 0x8_0000;

extern "C" {
    fn epoll_create1(flags: CInt) -> CInt;
    fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
    fn epoll_wait(epfd: CInt, events: *mut EpollEvent, maxevents: CInt, timeout: CInt) -> CInt;
    fn poll(fds: *mut PollFd, nfds: CULong, timeout: CInt) -> CInt;
    fn pipe2(fds: *mut CInt, flags: CInt) -> CInt;
    fn read(fd: CInt, buf: *mut u8, count: usize) -> isize;
    fn write(fd: CInt, buf: *const u8, count: usize) -> isize;
    fn close(fd: CInt) -> CInt;
}

fn cvt(ret: CInt) -> io::Result<CInt> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Create an epoll instance (`EPOLL_CLOEXEC`).
pub fn sys_epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Add/modify/delete `fd` on epoll instance `epfd`.
pub fn sys_epoll_ctl(epfd: RawFd, op: CInt, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Wait for events; `timeout_ms < 0` blocks indefinitely. Retries on
/// `EINTR` so callers never see a spurious error from a signal.
pub fn sys_epoll_wait(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: CInt,
) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as CInt, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// `poll(2)` over `fds`; `timeout_ms < 0` blocks indefinitely. Retries on
/// `EINTR`.
pub fn sys_poll(fds: &mut [PollFd], timeout_ms: CInt) -> io::Result<usize> {
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as CULong, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A non-blocking close-on-exec pipe: `(read_end, write_end)`.
pub fn sys_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as CInt; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok((fds[0], fds[1]))
}

/// Best-effort single-byte write (the waker's "ding"). A full pipe means
/// a wake is already pending, which is success.
pub fn sys_write_byte(fd: RawFd) -> io::Result<()> {
    let byte = [1u8];
    let n = unsafe { write(fd, byte.as_ptr(), 1) };
    if n >= 0 {
        return Ok(());
    }
    let err = io::Error::last_os_error();
    match err.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(()),
        _ => Err(err),
    }
}

/// Drain every pending byte from a non-blocking pipe read end.
pub fn sys_drain(fd: RawFd) {
    let mut buf = [0u8; 64];
    loop {
        let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
        if n <= 0 {
            return;
        }
    }
}

/// Close an fd owned by this crate (epoll instances, waker pipes).
pub fn sys_close(fd: RawFd) {
    unsafe {
        close(fd);
    }
}
