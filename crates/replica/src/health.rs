//! The sans-io health table: per-endpoint delivery rate and liveness.
//!
//! One [`HealthTable`] tracks the N interchangeable endpoints of a single
//! logical wrapper. Callers feed it observations — batches delivered,
//! connection failures, successful probes — with explicit timestamps
//! (nanoseconds on any monotonic origin), and ask it which endpoint a new
//! or failed-over scan should open on. The table never touches a clock or
//! a socket, so every policy decision is unit-testable.
//!
//! States per endpoint:
//!
//! * **Live** — selectable. Fresh endpoints start here.
//! * **Degraded (until T)** — `fail_threshold` consecutive failures put an
//!   endpoint on cooldown; it is not selectable until its cooldown
//!   expires, after which the next selection may probe it again
//!   (half-open revival). Any delivered batch or successful probe returns
//!   it to Live immediately.
//!
//! Selection is rate-aware: endpoints never opened are explored first (so
//! every replica gets measured), then the highest EWMA delivery rate among
//! the eligible wins.

use std::time::Duration;

/// Tuning for rate estimation and failure handling.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// EWMA smoothing factor for delivery-rate samples (0..=1; higher
    /// weighs recent batches more).
    pub alpha: f64,
    /// Consecutive failures that degrade an endpoint.
    pub fail_threshold: u32,
    /// How long a degraded endpoint stays unselectable.
    pub cooldown: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha: 0.3,
            fail_threshold: 1,
            cooldown: Duration::from_secs(2),
        }
    }
}

/// An endpoint's selectability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointState {
    /// Selectable.
    Live,
    /// On cooldown after consecutive failures; eligible again once
    /// `until_nanos` passes.
    Degraded {
        /// When the cooldown expires (same origin as the caller's clock).
        until_nanos: u64,
    },
}

#[derive(Debug, Clone)]
struct Endpoint {
    addr: String,
    state: EndpointState,
    consecutive_failures: u32,
    /// EWMA tuples/second; `None` until the first batch sample.
    rate: Option<f64>,
    opens: u64,
    failures_total: u64,
}

/// A point-in-time view of one endpoint, for observability and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSnapshot {
    /// The endpoint address as configured.
    pub addr: String,
    /// Current selectability.
    pub state: EndpointState,
    /// EWMA delivery rate in tuples/second, if measured.
    pub rate: Option<f64>,
    /// Scans opened on this endpoint.
    pub opens: u64,
    /// Failures recorded against it over its lifetime.
    pub failures_total: u64,
}

/// Health and rate state for the replicas of one logical wrapper.
#[derive(Debug)]
pub struct HealthTable {
    cfg: HealthConfig,
    endpoints: Vec<Endpoint>,
}

impl HealthTable {
    /// A table over `addrs`, all starting Live and unmeasured.
    ///
    /// # Panics
    /// Panics when `addrs` is empty — a wrapper with zero endpoints is a
    /// configuration error, not a runtime state.
    pub fn new(addrs: Vec<String>, cfg: HealthConfig) -> HealthTable {
        assert!(!addrs.is_empty(), "a replica group needs >= 1 endpoint");
        HealthTable {
            cfg,
            endpoints: addrs
                .into_iter()
                .map(|addr| Endpoint {
                    addr,
                    state: EndpointState::Live,
                    consecutive_failures: 0,
                    rate: None,
                    opens: 0,
                    failures_total: 0,
                })
                .collect(),
        }
    }

    /// Number of endpoints in the group.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Always false (construction requires at least one endpoint).
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The configured address of endpoint `idx`.
    pub fn addr(&self, idx: usize) -> &str {
        &self.endpoints[idx].addr
    }

    fn eligible(&self, idx: usize, now_nanos: u64) -> bool {
        match self.endpoints[idx].state {
            EndpointState::Live => true,
            EndpointState::Degraded { until_nanos } => now_nanos >= until_nanos,
        }
    }

    /// Pick the endpoint a new scan should open on, or `None` when every
    /// endpoint is on an unexpired cooldown.
    ///
    /// Unopened endpoints win first (lowest index among them), so each
    /// replica gets rate-measured before exploitation starts; after that
    /// the highest EWMA rate among eligible endpoints wins, with an
    /// opened-but-unmeasured endpoint treated as optimistically fast.
    pub fn select(&self, now_nanos: u64) -> Option<usize> {
        let candidates = (0..self.endpoints.len()).filter(|&i| self.eligible(i, now_nanos));
        let mut best: Option<usize> = None;
        for i in candidates {
            let better = match best {
                None => true,
                Some(b) => {
                    let (ei, eb) = (&self.endpoints[i], &self.endpoints[b]);
                    match (ei.opens == 0, eb.opens == 0) {
                        (true, false) => true,
                        (false, true) => false,
                        // Both unexplored: keep the lower index (stable
                        // exploration order).
                        (true, true) => false,
                        (false, false) => {
                            ei.rate.unwrap_or(f64::INFINITY) > eb.rate.unwrap_or(f64::INFINITY)
                        }
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// A scan opened on endpoint `idx`.
    pub fn record_open(&mut self, idx: usize) {
        self.endpoints[idx].opens += 1;
    }

    /// Fold a delivered batch into `idx`'s EWMA rate (`tuples` over
    /// `elapsed_nanos` since the previous batch on the same connection).
    /// Data arriving is also proof of life: failures reset, state Live.
    pub fn record_batch(&mut self, idx: usize, tuples: u64, elapsed_nanos: u64) {
        let ep = &mut self.endpoints[idx];
        ep.consecutive_failures = 0;
        ep.state = EndpointState::Live;
        if elapsed_nanos == 0 {
            return;
        }
        let sample = tuples as f64 / (elapsed_nanos as f64 / 1e9);
        ep.rate = Some(match ep.rate {
            Some(prev) => self.cfg.alpha * sample + (1.0 - self.cfg.alpha) * prev,
            None => sample,
        });
    }

    /// Record a failed connect/read against `idx`. Returns true when this
    /// failure (re)armed the endpoint's cooldown — the caller's cue to
    /// announce a degradation exactly once per incident.
    pub fn record_failure(&mut self, idx: usize, now_nanos: u64) -> bool {
        let was_eligible = self.eligible(idx, now_nanos);
        let ep = &mut self.endpoints[idx];
        ep.consecutive_failures += 1;
        ep.failures_total += 1;
        if ep.consecutive_failures < self.cfg.fail_threshold {
            return false;
        }
        ep.state = EndpointState::Degraded {
            until_nanos: now_nanos.saturating_add(self.cfg.cooldown.as_nanos() as u64),
        };
        was_eligible
    }

    /// A successful liveness probe: revive `idx` (rate history kept).
    pub fn mark_live(&mut self, idx: usize) {
        let ep = &mut self.endpoints[idx];
        ep.consecutive_failures = 0;
        ep.state = EndpointState::Live;
    }

    /// Point-in-time view of every endpoint.
    pub fn snapshot(&self) -> Vec<EndpointSnapshot> {
        self.endpoints
            .iter()
            .map(|e| EndpointSnapshot {
                addr: e.addr.clone(),
                state: e.state,
                rate: e.rate,
                opens: e.opens,
                failures_total: e.failures_total,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> HealthTable {
        HealthTable::new(
            (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect(),
            HealthConfig::default(),
        )
    }

    const SEC: u64 = 1_000_000_000;

    #[test]
    #[should_panic(expected = "replica group needs")]
    fn empty_group_is_a_configuration_error() {
        HealthTable::new(Vec::new(), HealthConfig::default());
    }

    #[test]
    fn unexplored_endpoints_are_selected_first_in_order() {
        let mut t = table(3);
        assert_eq!(t.select(0), Some(0));
        t.record_open(0);
        assert_eq!(t.select(0), Some(1), "explore before exploiting");
        t.record_open(1);
        assert_eq!(t.select(0), Some(2));
    }

    #[test]
    fn selection_prefers_the_higher_measured_rate() {
        let mut t = table(2);
        t.record_open(0);
        t.record_open(1);
        // Endpoint 0: 100 tuples/s. Endpoint 1: 10_000 tuples/s.
        t.record_batch(0, 100, SEC);
        t.record_batch(1, 10_000, SEC);
        assert_eq!(t.select(0), Some(1));
        // Rates can cross: flood endpoint 0 with fast samples.
        for _ in 0..50 {
            t.record_batch(0, 100_000, SEC);
        }
        assert_eq!(t.select(0), Some(0));
    }

    #[test]
    fn ewma_folds_toward_recent_samples() {
        let mut t = table(1);
        t.record_batch(0, 1000, SEC);
        let first = t.snapshot()[0].rate.unwrap();
        assert!((first - 1000.0).abs() < 1e-9, "first sample taken whole");
        t.record_batch(0, 2000, SEC);
        let second = t.snapshot()[0].rate.unwrap();
        assert!(
            second > first && second < 2000.0,
            "EWMA moves toward the new sample without jumping: {second}"
        );
    }

    #[test]
    fn zero_elapsed_batches_never_divide_by_zero() {
        let mut t = table(1);
        t.record_batch(0, 50, 0);
        assert_eq!(t.snapshot()[0].rate, None, "no sample from zero elapsed");
    }

    #[test]
    fn failure_threshold_degrades_and_cooldown_revives() {
        let mut t = table(2);
        assert!(t.record_failure(0, 10 * SEC), "first incident announces");
        match t.snapshot()[0].state {
            EndpointState::Degraded { until_nanos } => assert_eq!(until_nanos, 12 * SEC),
            s => panic!("expected degraded, got {s:?}"),
        }
        // While degraded: unselectable, and further failures are quiet.
        assert_eq!(t.select(10 * SEC), Some(1));
        assert!(!t.record_failure(0, 10 * SEC + 1), "still on cooldown");
        // After the (re-armed) cooldown it becomes eligible again.
        let until = match t.snapshot()[0].state {
            EndpointState::Degraded { until_nanos } => until_nanos,
            s => panic!("expected degraded, got {s:?}"),
        };
        t.record_open(1); // endpoint 1 explored; 0 still unexplored
        assert_eq!(
            t.select(until),
            Some(0),
            "cooldown expiry makes it selectable (half-open probe)"
        );
        // And a re-failure after expiry announces again.
        assert!(t.record_failure(0, until));
    }

    #[test]
    fn all_degraded_selects_nothing() {
        let mut t = table(2);
        t.record_failure(0, 0);
        t.record_failure(1, 0);
        assert_eq!(t.select(SEC), None);
        assert!(t.select(3 * SEC).is_some(), "cooldowns expire");
    }

    #[test]
    fn delivery_and_probes_revive_a_degraded_endpoint() {
        let mut t = table(1);
        t.record_failure(0, 0);
        t.record_batch(0, 10, SEC);
        assert_eq!(t.snapshot()[0].state, EndpointState::Live);
        t.record_failure(0, 0);
        t.mark_live(0);
        assert_eq!(t.snapshot()[0].state, EndpointState::Live);
        assert_eq!(t.snapshot()[0].failures_total, 2, "history survives");
    }

    #[test]
    fn higher_threshold_needs_consecutive_failures() {
        let mut t = HealthTable::new(
            vec!["a".into(), "b".into()],
            HealthConfig {
                fail_threshold: 3,
                ..HealthConfig::default()
            },
        );
        assert!(!t.record_failure(0, 0));
        assert!(!t.record_failure(0, 0));
        t.record_batch(0, 1, 1); // success resets the streak
        assert!(!t.record_failure(0, 0));
        assert!(!t.record_failure(0, 0));
        assert!(t.record_failure(0, 0), "third consecutive degrades");
    }
}
