//! Shared, clocked handles over the sans-io health table, plus the
//! `--wrappers` replica-group grammar.

use std::sync::Mutex;
use std::time::Instant;

use crate::health::{EndpointSnapshot, HealthConfig, HealthTable};

/// A parsed replica group: one logical wrapper id and its endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaGroup {
    /// Logical wrapper id (used in cache keys and trace lines).
    pub id: String,
    /// Interchangeable endpoints serving this wrapper, in declared order.
    pub endpoints: Vec<String>,
}

/// Parse `serve --wrappers` group specs into replica groups.
///
/// Each spec is a `;`-separated list of chunks:
///
/// * `id=host:port,host:port` — one named group with N endpoints;
/// * `host:port,host:port` (no `=`) — back-compat: each comma-separated
///   address becomes its own single-endpoint group named after itself, so
///   the pre-replica `--wrappers a:1,b:2` spelling keeps meaning "two
///   distinct wrappers".
///
/// Rejects empty ids, empty endpoint lists, and duplicate group ids.
pub fn parse_groups(specs: &[String]) -> Result<Vec<ReplicaGroup>, String> {
    let mut groups: Vec<ReplicaGroup> = Vec::new();
    let mut push = |group: ReplicaGroup| -> Result<(), String> {
        if groups.iter().any(|g| g.id == group.id) {
            return Err(format!("duplicate wrapper group id '{}'", group.id));
        }
        groups.push(group);
        Ok(())
    };
    for spec in specs {
        for chunk in spec.split(';') {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            match chunk.split_once('=') {
                Some((id, addrs)) => {
                    let id = id.trim();
                    if id.is_empty() {
                        return Err(format!("empty group id in wrapper spec '{chunk}'"));
                    }
                    let endpoints: Vec<String> = addrs
                        .split(',')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect();
                    if endpoints.is_empty() {
                        return Err(format!("wrapper group '{id}' has no endpoints"));
                    }
                    push(ReplicaGroup {
                        id: id.to_string(),
                        endpoints,
                    })?;
                }
                None => {
                    for addr in chunk.split(',') {
                        let addr = addr.trim();
                        if addr.is_empty() {
                            continue;
                        }
                        push(ReplicaGroup {
                            id: addr.to_string(),
                            endpoints: vec![addr.to_string()],
                        })?;
                    }
                }
            }
        }
    }
    if groups.is_empty() {
        return Err("no wrapper endpoints configured".to_string());
    }
    Ok(groups)
}

/// A thread-safe [`HealthTable`] with a wall-clock origin: the handle
/// concurrent sessions and the background prober share for one logical
/// wrapper.
#[derive(Debug)]
pub struct ReplicaSet {
    id: String,
    origin: Instant,
    table: Mutex<HealthTable>,
}

impl ReplicaSet {
    /// A set over `group` with the given health tuning.
    pub fn new(group: ReplicaGroup, cfg: HealthConfig) -> ReplicaSet {
        ReplicaSet {
            id: group.id,
            origin: Instant::now(),
            table: Mutex::new(HealthTable::new(group.endpoints, cfg)),
        }
    }

    /// The logical wrapper id this set serves.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of endpoints in the set.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Always false (groups require at least one endpoint).
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthTable> {
        // A poisoned table means a panic mid-update; the data is plain
        // counters, still safe to read, so keep serving.
        self.table.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Select the best live endpoint and record the open on it.
    /// `None` when every endpoint is on an unexpired cooldown.
    pub fn select(&self) -> Option<(usize, String)> {
        let now = self.now_nanos();
        let mut t = self.lock();
        let idx = t.select(now)?;
        t.record_open(idx);
        Some((idx, t.addr(idx).to_string()))
    }

    /// The configured address of endpoint `idx`.
    pub fn addr(&self, idx: usize) -> String {
        self.lock().addr(idx).to_string()
    }

    /// Fold a delivered batch into `idx`'s rate (proof of life too).
    pub fn record_batch(&self, idx: usize, tuples: u64, elapsed_nanos: u64) {
        self.lock().record_batch(idx, tuples, elapsed_nanos);
    }

    /// Record a failure against `idx`; true when it newly degraded.
    pub fn record_failure(&self, idx: usize) -> bool {
        let now = self.now_nanos();
        self.lock().record_failure(idx, now)
    }

    /// A successful liveness probe against `idx`.
    pub fn mark_live(&self, idx: usize) {
        self.lock().mark_live(idx);
    }

    /// Point-in-time view of every endpoint.
    pub fn snapshot(&self) -> Vec<EndpointSnapshot> {
        self.lock().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn named_group_with_replicas() {
        let g = parse_groups(&specs(&["w0=127.0.0.1:7400,127.0.0.1:7401"])).unwrap();
        assert_eq!(
            g,
            vec![ReplicaGroup {
                id: "w0".into(),
                endpoints: vec!["127.0.0.1:7400".into(), "127.0.0.1:7401".into()],
            }]
        );
    }

    #[test]
    fn bare_addresses_stay_distinct_wrappers() {
        let g = parse_groups(&specs(&["127.0.0.1:7400,127.0.0.1:7401"])).unwrap();
        assert_eq!(g.len(), 2, "back-compat: comma list = separate wrappers");
        assert_eq!(g[0].id, "127.0.0.1:7400");
        assert_eq!(g[0].endpoints, vec!["127.0.0.1:7400".to_string()]);
        assert_eq!(g[1].id, "127.0.0.1:7401");
    }

    #[test]
    fn semicolons_separate_groups_and_mix_with_bare() {
        let g = parse_groups(&specs(&["a=h:1,h:2; b=h:3", "h:4"])).unwrap();
        let ids: Vec<&str> = g.iter().map(|g| g.id.as_str()).collect();
        assert_eq!(ids, vec!["a", "b", "h:4"]);
        assert_eq!(g[0].endpoints.len(), 2);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_groups(&specs(&[""])).is_err(), "no endpoints at all");
        assert!(parse_groups(&specs(&["=h:1"])).is_err(), "empty id");
        assert!(parse_groups(&specs(&["a="])).is_err(), "no endpoints");
        assert!(parse_groups(&specs(&["a=h:1;a=h:2"])).is_err(), "dup id");
        assert!(parse_groups(&specs(&["h:1,h:1"])).is_err(), "dup bare id");
    }

    #[test]
    fn set_selects_and_records_under_shared_access() {
        let set = ReplicaSet::new(
            ReplicaGroup {
                id: "w".into(),
                endpoints: vec!["a".into(), "b".into()],
            },
            HealthConfig::default(),
        );
        let (i0, a0) = set.select().expect("live endpoint");
        assert_eq!((i0, a0.as_str()), (0, "a"), "explore in order");
        let (i1, _) = set.select().expect("live endpoint");
        assert_eq!(i1, 1);
        // Degrade both: nothing selectable until cooldown passes.
        assert!(set.record_failure(0));
        assert!(set.record_failure(1));
        assert!(set.select().is_none());
        set.mark_live(1);
        assert_eq!(set.select().map(|(i, _)| i), Some(1));
        assert_eq!(set.snapshot()[1].opens, 2);
    }
}
