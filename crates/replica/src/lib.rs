//! # dqs-replica — rate-aware wrapper replica selection
//!
//! The paper's premise (§1, §3.1) is that wrapper delivery rates are
//! unpredictable; its communication manager already measures per-wrapper
//! rates to drive replanning. This crate closes the loop one layer down:
//! when a *logical* wrapper is served by several interchangeable
//! endpoints (replicas), the mediator should open each scan on the
//! fastest live one — and, because tuple payloads are a pure function of
//! `(relation, index, seed)`, a mid-scan death is not fatal: the scan can
//! be re-opened on another replica at the next undelivered tuple index.
//!
//! Two layers:
//!
//! * [`health::HealthTable`] — the sans-io core: per-endpoint EWMA
//!   delivery rate folded from observed batches, consecutive-failure
//!   counting, a `Degraded`-with-cooldown state, and a selection rule
//!   (explore unmeasured endpoints first, then highest rate among the
//!   live). Every method takes explicit time; no clocks, no sockets.
//! * [`set::ReplicaSet`] — the shared handle: the table behind a mutex
//!   with a wall-clock origin, safe to pin from concurrent sessions and a
//!   background prober.
//!
//! [`set::parse_groups`] parses the `serve --wrappers` replica-group
//! syntax (`id=host:port,host:port;...`) shared by the CLI and the
//! mediator server.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod health;
pub mod set;

pub use health::{EndpointSnapshot, EndpointState, HealthConfig, HealthTable};
pub use set::{parse_groups, ReplicaGroup, ReplicaSet};
