//! Memory manager for the integration query.
//!
//! §3.3/§4.1 of the paper: "the total available memory for the query
//! execution ... is assumed not to change during the query execution", and a
//! pipeline chain is *M-schedulable* only if the sum of its operators' memory
//! requirements fits in what is currently free. The scheduler reserves memory
//! when it admits a fragment into the scheduling plan and releases it when
//! the consuming chains are done with the corresponding hash tables.

use std::collections::HashMap;

/// Handle to a granted reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(u64);

/// Error returned when a reservation does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free.
    pub free: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of query memory: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks the fixed memory budget of one integration query.
#[derive(Debug)]
pub struct MemoryManager {
    total: u64,
    used: u64,
    high_water: u64,
    next_id: u64,
    grants: HashMap<ReservationId, Grant>,
}

#[derive(Debug)]
struct Grant {
    bytes: u64,
    label: String,
}

impl MemoryManager {
    /// A manager over `total` bytes of query memory.
    pub fn new(total: u64) -> Self {
        MemoryManager {
            total,
            used: 0,
            high_water: 0,
            next_id: 0,
            grants: HashMap::new(),
        }
    }

    /// Total budget.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.total - self.used
    }

    /// Peak reservation level observed.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Would a request for `bytes` fit right now?
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.free()
    }

    /// Reserve `bytes`, labelled for diagnostics, or fail without side
    /// effects.
    pub fn reserve(
        &mut self,
        bytes: u64,
        label: impl Into<String>,
    ) -> Result<ReservationId, OutOfMemory> {
        if !self.fits(bytes) {
            return Err(OutOfMemory {
                requested: bytes,
                free: self.free(),
            });
        }
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        self.grants.insert(
            id,
            Grant {
                bytes,
                label: label.into(),
            },
        );
        Ok(id)
    }

    /// Grow an existing reservation by `extra` bytes (a hash table whose
    /// build side turned out larger than estimated), or fail leaving the
    /// original grant intact.
    pub fn grow(&mut self, id: ReservationId, extra: u64) -> Result<(), OutOfMemory> {
        if !self.fits(extra) {
            return Err(OutOfMemory {
                requested: extra,
                free: self.free(),
            });
        }
        let grant = self
            .grants
            .get_mut(&id)
            .expect("grow on released or unknown reservation");
        grant.bytes += extra;
        self.used += extra;
        self.high_water = self.high_water.max(self.used);
        Ok(())
    }

    /// Release a reservation, returning the freed byte count.
    ///
    /// # Panics
    /// Panics on double release — that is a scheduler accounting bug.
    pub fn release(&mut self, id: ReservationId) -> u64 {
        let grant = self
            .grants
            .remove(&id)
            .expect("release of unknown reservation");
        self.used -= grant.bytes;
        grant.bytes
    }

    /// Labels and sizes of live reservations (diagnostics, deterministic
    /// order).
    pub fn live(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self
            .grants
            .values()
            .map(|g| (g.label.clone(), g.bytes))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut m = MemoryManager::new(1000);
        let a = m.reserve(400, "ht:A").unwrap();
        assert_eq!(m.used(), 400);
        assert_eq!(m.free(), 600);
        let freed = m.release(a);
        assert_eq!(freed, 400);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn over_reservation_fails_cleanly() {
        let mut m = MemoryManager::new(100);
        let _a = m.reserve(80, "ht:A").unwrap();
        let err = m.reserve(30, "ht:B").unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.free, 20);
        // Failed reservation leaves no residue.
        assert_eq!(m.used(), 80);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut m = MemoryManager::new(100);
        assert!(m.reserve(100, "all").is_ok());
        assert_eq!(m.free(), 0);
        assert!(!m.fits(1));
        assert!(m.fits(0));
    }

    #[test]
    fn grow_extends_or_fails_atomically() {
        let mut m = MemoryManager::new(100);
        let a = m.reserve(50, "ht").unwrap();
        m.grow(a, 30).unwrap();
        assert_eq!(m.used(), 80);
        assert!(m.grow(a, 30).is_err());
        assert_eq!(m.used(), 80, "failed grow has no effect");
        assert_eq!(m.release(a), 80);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m = MemoryManager::new(1000);
        let a = m.reserve(700, "a").unwrap();
        m.release(a);
        let _b = m.reserve(100, "b").unwrap();
        assert_eq!(m.high_water(), 700);
    }

    #[test]
    #[should_panic(expected = "release of unknown reservation")]
    fn double_release_panics() {
        let mut m = MemoryManager::new(100);
        let a = m.reserve(10, "x").unwrap();
        m.release(a);
        m.release(a);
    }

    #[test]
    fn live_lists_grants_sorted() {
        let mut m = MemoryManager::new(1000);
        m.reserve(10, "b").unwrap();
        m.reserve(20, "a").unwrap();
        assert_eq!(m.live(), vec![("a".to_string(), 20), ("b".to_string(), 10)]);
    }
}
