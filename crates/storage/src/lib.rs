//! # dqs-storage — simulated storage substrate
//!
//! The mediator-side storage layer of the DQS reproduction: the local disk
//! with its 8-page I/O cache ([`disk::Disk`]), the fixed query-memory budget
//! that M-schedulability is checked against ([`memory::MemoryManager`]), and
//! disk-backed temp relations used by `mat` operators, degraded chains and
//! the Materialize-All baseline ([`temp::TempRelation`]).
//!
//! All timing flows from `dqs_sim::SimParams` (Table 1 of the paper).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod disk;
pub mod memory;
pub mod temp;

pub use disk::{Disk, IoKind, IoTicket, StreamId};
pub use memory::{MemoryManager, OutOfMemory, ReservationId};
pub use temp::{IoCharge, TempRelation};
