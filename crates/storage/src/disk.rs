//! The mediator's local disk.
//!
//! Table 1 models a single disk (latency 17 ms, seek 5 ms, 6 MB/s transfer)
//! fronted by an 8-page I/O cache, and charges 3000 CPU instructions per page
//! I/O. The device is FIFO: concurrent writers (e.g. two materialization
//! fragments) and readers queue behind each other — exactly the I/O
//! contention the paper's `bmi` heuristic worries about (§4.4: "the costs of
//! materialization overheads depend on the disk activity at the time of
//! execution").
//!
//! Positioning cost model: a *sequential stream* (one temp relation being
//! written or scanned) pays rotational latency + seek on its first-ever
//! access, a bare seek when the head switches back to it from another
//! stream, and nothing between consecutive batches of the same stream
//! (write-behind and read-ahead absorb rotation inside an established
//! sequential run). A lone materialization therefore proceeds at transfer
//! rate (40 B / 6 MB/s = 6.67 µs per tuple — below `w_min`, as §5.2
//! requires), while interleaved streams — the Materialize-All strategy's
//! six concurrent spools — pay a positioning penalty per switch, which is
//! exactly the "high I/O overhead" §5.1.2 attributes to MA.

use std::collections::HashSet;

use dqs_sim::{FifoResource, SimDuration, SimParams, SimTime};

/// Kinds of disk traffic, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Page writes (materialization).
    Write,
    /// Page reads (re-reading a temp relation).
    Read,
}

/// Identifies one sequential stream (a temp relation being written, or a
/// scan of it). Consecutive batches of the same stream do not pay seek.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

/// Result of issuing an I/O batch.
#[derive(Debug, Clone, Copy)]
pub struct IoTicket {
    /// When the device completes the batch.
    pub device_done: SimTime,
    /// CPU instructions the requester must charge for issuing the batch.
    pub cpu_instr: u64,
    /// Pages moved.
    pub pages: u64,
}

/// The simulated local disk.
#[derive(Debug)]
pub struct Disk {
    device: FifoResource,
    params: SimParams,
    last_stream: Option<StreamId>,
    known_streams: HashSet<StreamId>,
    pages_written: u64,
    pages_read: u64,
    seeks: u64,
}

impl Disk {
    /// A new idle disk using `params` for timing.
    pub fn new(params: SimParams) -> Self {
        Disk {
            device: FifoResource::new("disk"),
            params,
            last_stream: None,
            known_streams: HashSet::new(),
            pages_written: 0,
            pages_read: 0,
            seeks: 0,
        }
    }

    /// Issue a sequential transfer of `pages` pages of `stream` at `now`.
    ///
    /// The transfer is split into physical batches of at most
    /// `io_cache_pages` pages. The first batch pays latency + seek on the
    /// stream's first-ever access, a bare seek if the head last served a
    /// different stream, and nothing if the head is already positioned;
    /// subsequent batches of this call are contiguous and pay transfer
    /// only. Returns the device completion time and the CPU instructions to
    /// charge (3000 per page, Table 1).
    pub fn transfer(
        &mut self,
        now: SimTime,
        kind: IoKind,
        stream: StreamId,
        pages: u64,
    ) -> IoTicket {
        if pages == 0 {
            return IoTicket {
                device_done: now,
                cpu_instr: 0,
                pages: 0,
            };
        }
        let cache = self.params.io_cache_pages as u64;
        let first_access = self.known_streams.insert(stream);
        let positioning = if first_access {
            self.seeks += 1;
            self.params.disk_latency + self.params.disk_seek
        } else if self.last_stream == Some(stream) {
            SimDuration::ZERO
        } else {
            self.seeks += 1;
            self.params.disk_seek
        };
        self.last_stream = Some(stream);

        let mut done = now;
        let mut remaining = pages;
        let mut first = true;
        while remaining > 0 {
            let batch = remaining.min(cache);
            let mut service = self.params.disk_page_transfer() * batch;
            if first {
                service += positioning;
                first = false;
            }
            let grant = self.device.acquire(now, service);
            done = grant.finish;
            remaining -= batch;
        }
        match kind {
            IoKind::Write => self.pages_written += pages,
            IoKind::Read => self.pages_read += pages,
        }
        IoTicket {
            device_done: done,
            cpu_instr: self.params.instr_per_io * pages,
            pages,
        }
    }

    /// Device time one page costs inside an established sequential stream.
    pub fn sequential_page_time(&self) -> SimDuration {
        self.params.disk_page_transfer()
    }

    /// Amortized device time to write or read one tuple sequentially: the
    /// per-tuple `IO_p` of the benefit-materialization indicator (§4.4).
    pub fn amortized_tuple_io(&self) -> SimDuration {
        self.sequential_page_time() / self.params.tuples_per_page() as u64
    }

    /// Earliest instant a new request would begin service.
    pub fn next_free(&self) -> SimTime {
        self.device.next_free()
    }

    /// Total device busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.device.busy_time()
    }

    /// Pages written so far.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Number of head repositionings paid.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// The parameter set in force.
    pub fn params(&self) -> &SimParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S1: StreamId = StreamId(1);
    const S2: StreamId = StreamId(2);

    #[test]
    fn zero_pages_is_free() {
        let mut d = Disk::new(SimParams::default());
        let t = d.transfer(SimTime::ZERO, IoKind::Write, S1, 0);
        assert_eq!(t.device_done, SimTime::ZERO);
        assert_eq!(t.cpu_instr, 0);
        assert_eq!(d.seeks(), 0);
    }

    #[test]
    fn first_batch_pays_positioning() {
        let p = SimParams::default();
        let mut d = Disk::new(p.clone());
        let t = d.transfer(SimTime::ZERO, IoKind::Write, S1, 8);
        assert_eq!(
            t.device_done,
            SimTime::ZERO + p.disk_latency + p.disk_seek + p.disk_page_transfer() * 8
        );
        assert_eq!(t.cpu_instr, 8 * 3_000);
        assert_eq!(d.seeks(), 1);
    }

    #[test]
    fn same_stream_streams_at_transfer_rate() {
        let p = SimParams::default();
        let mut d = Disk::new(p.clone());
        let a = d.transfer(SimTime::ZERO, IoKind::Write, S1, 8);
        let b = d.transfer(a.device_done, IoKind::Write, S1, 8);
        assert_eq!(
            b.device_done,
            a.device_done + p.disk_page_transfer() * 8,
            "second batch of same stream pays no positioning"
        );
        assert_eq!(d.seeks(), 1);
    }

    #[test]
    fn stream_switch_pays_seek() {
        let p = SimParams::default();
        let mut d = Disk::new(p.clone());
        let a = d.transfer(SimTime::ZERO, IoKind::Write, S1, 1);
        // First access of S2: full positioning.
        let b = d.transfer(a.device_done, IoKind::Write, S2, 1);
        assert_eq!(
            b.device_done,
            a.device_done + p.disk_latency + p.disk_seek + p.disk_page_transfer()
        );
        // Switching back to the already-known S1: bare seek.
        let c = d.transfer(b.device_done, IoKind::Write, S1, 1);
        assert_eq!(
            c.device_done,
            b.device_done + p.disk_seek + p.disk_page_transfer()
        );
        assert_eq!(d.seeks(), 3);
    }

    #[test]
    fn long_transfer_pays_positioning_once() {
        let p = SimParams::default();
        let mut d = Disk::new(p.clone());
        let t = d.transfer(SimTime::ZERO, IoKind::Read, S1, 20);
        assert_eq!(
            t.device_done,
            SimTime::ZERO + p.disk_latency + p.disk_seek + p.disk_page_transfer() * 20
        );
    }

    #[test]
    fn concurrent_requests_queue_fifo() {
        let p = SimParams::default();
        let mut d = Disk::new(p.clone());
        let a = d.transfer(SimTime::ZERO, IoKind::Write, S1, 8);
        // Issued at the same instant, different (new) stream: queues behind
        // and pays its own first-access positioning.
        let b = d.transfer(SimTime::ZERO, IoKind::Write, S2, 8);
        assert_eq!(
            b.device_done,
            a.device_done + p.disk_latency + p.disk_seek + p.disk_page_transfer() * 8
        );
    }

    #[test]
    fn accounting_by_kind() {
        let mut d = Disk::new(SimParams::default());
        d.transfer(SimTime::ZERO, IoKind::Write, S1, 5);
        d.transfer(SimTime::ZERO, IoKind::Read, S2, 2);
        assert_eq!(d.pages_written(), 5);
        assert_eq!(d.pages_read(), 2);
    }

    #[test]
    fn amortized_tuple_io_is_under_half_w_min() {
        // §4.4 with bmt = 1 requires bmi = w/(2·IO_p) >= 1 at w = w_min,
        // i.e. IO_p <= 10 µs; and §5.2 notes the tuple write time is below
        // w_min. Pure transfer of 40 B at 6 MB/s is 6.67 µs.
        let d = Disk::new(SimParams::default());
        let per_tuple = d.amortized_tuple_io();
        assert!(
            per_tuple.as_nanos() <= SimParams::default().w_min().as_nanos() / 2,
            "amortized tuple I/O {per_tuple} must be <= w_min/2"
        );
        assert!(per_tuple > SimDuration::from_nanos(1_000));
    }
}
