//! Temporary relations.
//!
//! A `mat` operator (paper §2.2), a degraded chain's materialization fragment
//! MF(p) (§4.4), and the Materialize-All strategy (§5.1.2) all write their
//! input into a *temp relation* on the mediator's local disk, which a
//! downstream fragment later scans.
//!
//! Write path: appended tuples accumulate in the in-memory I/O cache; once a
//! full cache batch (8 pages) is buffered it is written behind asynchronously
//! (the device works while the CPU continues — the paper's §4.4 assumes
//! "asynchronous I/O" for the complement fragment). `seal` flushes the tail.
//!
//! Read path: a cursor scans sequentially; tuples still in the write buffer
//! are served from memory for free, flushed pages are read back in cache-
//! sized batches whose device time the reader must wait for.

use dqs_sim::{SimParams, SimTime};

use crate::disk::{Disk, IoKind, StreamId};

/// Charges a temp-relation operation imposes on the caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct IoCharge {
    /// CPU instructions to add to the caller's current batch.
    pub cpu_instr: u64,
    /// Device completion time of any I/O issued. Callers running with
    /// write-behind (the default, §4.4's asynchronous I/O) ignore it;
    /// naive synchronous materializers (the MA baseline) block on it.
    pub device_done: Option<SimTime>,
    /// Pages moved on the device.
    pub pages: u64,
}

/// A temp relation holding tuples of type `T`.
#[derive(Debug)]
pub struct TempRelation<T> {
    tuples: Vec<T>,
    /// Tuples already flushed to disk (prefix of `tuples`).
    flushed: u64,
    /// Tuples covered by the read-ahead cache (prefix; only meaningful for
    /// the flushed region).
    read_cached: u64,
    sealed: bool,
    /// Pages of the cached region known resident in memory (the rest are
    /// in flight until `read_ready_at`).
    read_resident: u64,
    /// Device completion time of the most recent read issued.
    read_ready_at: SimTime,
    write_stream: StreamId,
    read_stream: StreamId,
    tuples_per_page: u64,
    cache_pages: u64,
    /// Read-ahead window in pages.
    window_pages: u64,
    /// Device completion time of the last asynchronous write issued.
    last_write_done: SimTime,
}

impl<T: Clone> TempRelation<T> {
    /// A fresh temp relation. `write_stream`/`read_stream` must be unique
    /// across the disk's users so head movements are accounted.
    pub fn new(params: &SimParams, write_stream: StreamId, read_stream: StreamId) -> Self {
        TempRelation {
            tuples: Vec::new(),
            flushed: 0,
            read_cached: 0,
            sealed: false,
            read_resident: 0,
            read_ready_at: SimTime::ZERO,
            write_stream,
            read_stream,
            tuples_per_page: params.tuples_per_page() as u64,
            cache_pages: params.io_cache_pages as u64,
            window_pages: params.io_cache_pages as u64 * params.readahead_batches as u64,
            last_write_done: SimTime::ZERO,
        }
    }

    /// Total tuples appended so far.
    pub fn len(&self) -> u64 {
        self.tuples.len() as u64
    }

    /// True when nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True once `seal` was called: no more appends, length is final.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Tuples flushed to the device so far.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Device completion time of the last write issued (the relation is not
    /// durably complete before this).
    pub fn last_write_done(&self) -> SimTime {
        self.last_write_done
    }

    /// Append a batch of tuples, writing behind full cache batches.
    ///
    /// # Panics
    /// Panics if the relation is sealed.
    pub fn append_batch(&mut self, batch: &[T], now: SimTime, disk: &mut Disk) -> IoCharge {
        assert!(!self.sealed, "append to sealed temp relation");
        self.tuples.extend_from_slice(batch);
        let buffered = self.len() - self.flushed;
        let full_pages = buffered / self.tuples_per_page;
        if full_pages >= self.cache_pages {
            // Flush all complete cache batches; keep the partial tail
            // buffered.
            let batches = full_pages / self.cache_pages;
            let pages = batches * self.cache_pages;
            let ticket = disk.transfer(now, IoKind::Write, self.write_stream, pages);
            self.flushed += pages * self.tuples_per_page;
            self.last_write_done = self.last_write_done.max(ticket.device_done);
            IoCharge {
                cpu_instr: ticket.cpu_instr,
                device_done: Some(ticket.device_done),
                pages,
            }
        } else {
            IoCharge::default()
        }
    }

    /// Flush the buffered tail and freeze the relation.
    pub fn seal(&mut self, now: SimTime, disk: &mut Disk) -> IoCharge {
        assert!(!self.sealed, "double seal");
        self.sealed = true;
        let buffered = self.len() - self.flushed;
        if buffered == 0 {
            return IoCharge::default();
        }
        let pages = buffered.div_ceil(self.tuples_per_page);
        let ticket = disk.transfer(now, IoKind::Write, self.write_stream, pages);
        self.flushed = self.len();
        self.last_write_done = self.last_write_done.max(ticket.device_done);
        IoCharge {
            cpu_instr: ticket.cpu_instr,
            device_done: Some(ticket.device_done),
            pages,
        }
    }

    /// Tuples a cursor at position `pos` could read right now (everything
    /// appended is readable: flushed pages from disk, the tail from the
    /// write buffer).
    pub fn readable_from(&self, pos: u64) -> u64 {
        self.len().saturating_sub(pos)
    }

    /// Tuples contiguously readable from `pos` *without blocking* at
    /// `now`: resident read-ahead pages plus — once the whole flushed
    /// region is resident — the still-buffered memory tail.
    pub fn available(&self, pos: u64, now: SimTime) -> u64 {
        let resident_pages = if now >= self.read_ready_at {
            self.cached_pages()
        } else {
            self.read_resident
        };
        let resident_tuples = (resident_pages * self.tuples_per_page).min(self.flushed);
        if resident_tuples >= self.flushed {
            self.len().saturating_sub(pos)
        } else {
            resident_tuples.saturating_sub(pos)
        }
    }

    /// Keep the asynchronous read-ahead window
    /// (`SimParams::readahead_batches` I/O-cache batches) open beyond
    /// `pos`, per the paper's §4.4 assumption that complement fragments
    /// overlap CPU and I/O ("asynchronous I/O").
    ///
    /// Returns the CPU instructions for any I/O issued and, if a prefetch
    /// is (still) in flight, the time its pages become resident — the
    /// caller schedules a wake-up then.
    pub fn arm_readahead(
        &mut self,
        pos: u64,
        now: SimTime,
        disk: &mut Disk,
    ) -> (u64, Option<SimTime>) {
        if now >= self.read_ready_at {
            self.read_resident = self.cached_pages();
        }
        let pos_page = pos / self.tuples_per_page;
        let want = (pos_page + self.window_pages).min(self.flushed_pages());
        if want <= self.cached_pages() {
            let pending = (self.read_ready_at > now).then_some(self.read_ready_at);
            return (0, pending);
        }
        let pages = want - self.cached_pages();
        let ticket = disk.transfer(now, IoKind::Read, self.read_stream, pages);
        self.read_cached = want * self.tuples_per_page;
        // Conservative: the new window is resident when the transfer ends.
        self.read_ready_at = ticket.device_done.max(self.read_ready_at);
        (ticket.cpu_instr, Some(self.read_ready_at))
    }

    /// Read up to `max` resident tuples from `pos` and arm further
    /// read-ahead. Never blocks: the result may be empty if nothing is
    /// resident yet (wait for the returned wake-up time).
    pub fn read_available(
        &mut self,
        pos: u64,
        max: u64,
        now: SimTime,
        disk: &mut Disk,
    ) -> (Vec<T>, u64, Option<SimTime>) {
        let n = self.available(pos, now).min(max);
        let out = self.tuples[pos as usize..(pos + n) as usize].to_vec();
        let (instr, wake) = self.arm_readahead(pos + n, now, disk);
        (out, instr, wake)
    }

    fn cached_pages(&self) -> u64 {
        self.read_cached / self.tuples_per_page
    }

    fn flushed_pages(&self) -> u64 {
        self.flushed / self.tuples_per_page + u64::from(self.flushed % self.tuples_per_page != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_sim::SimDuration;

    fn setup() -> (SimParams, Disk, TempRelation<u64>) {
        let p = SimParams::default();
        let d = Disk::new(p.clone());
        let t = TempRelation::new(&p, StreamId(10), StreamId(11));
        (p, d, t)
    }

    fn fill(t: &mut TempRelation<u64>, d: &mut Disk, n: u64) {
        let batch: Vec<u64> = (0..n).collect();
        t.append_batch(&batch, SimTime::ZERO, d);
    }

    #[test]
    fn small_appends_stay_buffered() {
        let (_p, mut d, mut t) = setup();
        let c = t.append_batch(&[1, 2, 3], SimTime::ZERO, &mut d);
        assert_eq!(c.pages, 0);
        assert_eq!(t.flushed(), 0);
        assert_eq!(t.len(), 3);
        assert_eq!(d.pages_written(), 0);
    }

    #[test]
    fn full_cache_batch_writes_behind() {
        let (p, mut d, mut t) = setup();
        let n = 8 * p.tuples_per_page() as u64;
        fill(&mut t, &mut d, n);
        assert_eq!(t.flushed(), n);
        assert_eq!(d.pages_written(), 8);
    }

    #[test]
    fn seal_flushes_partial_tail() {
        let (_p, mut d, mut t) = setup();
        t.append_batch(&[1, 2, 3], SimTime::ZERO, &mut d);
        let c = t.seal(SimTime::ZERO, &mut d);
        assert_eq!(c.pages, 1, "3 tuples round up to one page");
        assert!(t.is_sealed());
        assert_eq!(t.flushed(), 3);
        assert_eq!(d.pages_written(), 1);
    }

    #[test]
    fn seal_of_empty_is_free() {
        let (_p, mut d, mut t) = setup();
        let c = t.seal(SimTime::ZERO, &mut d);
        assert_eq!(c.pages, 0);
        assert!(t.is_sealed());
    }

    #[test]
    #[should_panic(expected = "append to sealed")]
    fn append_after_seal_panics() {
        let (_p, mut d, mut t) = setup();
        t.seal(SimTime::ZERO, &mut d);
        t.append_batch(&[1], SimTime::ZERO, &mut d);
    }

    #[test]
    fn buffered_tuples_available_immediately() {
        let (_p, mut d, mut t) = setup();
        t.append_batch(&[10, 20, 30], SimTime::ZERO, &mut d);
        assert_eq!(t.available(0, SimTime::ZERO), 3);
        let (tuples, instr, wake) = t.read_available(0, 2, SimTime::ZERO, &mut d);
        assert_eq!(tuples, vec![10, 20]);
        assert_eq!(instr, 0, "memory tail costs no I/O");
        assert!(wake.is_none());
    }

    #[test]
    fn flushed_tuples_need_prefetch_before_available() {
        let (p, mut d, mut t) = setup();
        let n = 16 * p.tuples_per_page() as u64;
        fill(&mut t, &mut d, n);
        // Nothing resident yet.
        assert_eq!(t.available(0, SimTime::ZERO), 0);
        // Arm the read-ahead; pages become resident at the wake time.
        let (instr, wake) = t.arm_readahead(0, SimTime::ZERO, &mut d);
        assert!(instr > 0);
        let ready = wake.expect("prefetch in flight");
        assert!(ready > SimTime::ZERO);
        assert_eq!(t.available(0, SimTime::ZERO), 0, "still in flight");
        assert!(t.available(0, ready) > 0, "resident after completion");
    }

    #[test]
    fn steady_scan_stays_ahead_of_consumer() {
        let (p, mut d, mut t) = setup();
        let tpp = p.tuples_per_page() as u64;
        let n = 32 * tpp;
        fill(&mut t, &mut d, n);
        // Cold start: arm and wait.
        let (_i, wake) = t.arm_readahead(0, SimTime::ZERO, &mut d);
        let mut now = wake.unwrap();
        let mut pos = 0u64;
        let mut waits = 0u32;
        while pos < t.flushed() {
            let (tuples, _instr, wake) = t.read_available(pos, 128, now, &mut d);
            if tuples.is_empty() {
                waits += 1;
                now = wake.expect("empty read must come with a wake-up");
                continue;
            }
            pos += tuples.len() as u64;
            // Consumer CPU is slower than the disk here: 50 µs per batch.
            now += SimDuration::from_micros(50);
        }
        // With a slow consumer the two-batch window hides almost all reads.
        assert!(waits <= 3, "slow consumer should rarely wait, got {waits}");
    }

    #[test]
    fn fast_consumer_is_paced_by_the_disk() {
        let (p, mut d, mut t) = setup();
        // Longer than the read-ahead window so the consumer can outrun it.
        let n = 400 * p.tuples_per_page() as u64;
        fill(&mut t, &mut d, n);
        let (_i, wake) = t.arm_readahead(0, SimTime::ZERO, &mut d);
        let mut now = wake.unwrap();
        let mut pos = 0u64;
        let mut waits = 0u32;
        while pos < t.flushed() {
            // Instant consumer: no CPU time between reads.
            let (tuples, _instr, wake) = t.read_available(pos, 100_000, now, &mut d);
            pos += tuples.len() as u64;
            if pos < t.flushed() {
                if let Some(w) = wake {
                    if w > now {
                        waits += 1;
                        now = w;
                    }
                }
            }
        }
        assert!(waits >= 1, "an instant consumer must wait for the device");
    }

    #[test]
    fn read_past_end_clamps() {
        let (_p, mut d, mut t) = setup();
        t.append_batch(&[1, 2], SimTime::ZERO, &mut d);
        let (tuples, _, _) = t.read_available(0, 10, SimTime::ZERO, &mut d);
        assert_eq!(tuples, vec![1, 2]);
        let (empty, instr, wake) = t.read_available(2, 10, SimTime::ZERO, &mut d);
        assert!(empty.is_empty());
        assert_eq!(instr, 0);
        assert!(wake.is_none());
    }

    #[test]
    fn readable_from_tracks_appends() {
        let (_p, mut d, mut t) = setup();
        assert_eq!(t.readable_from(0), 0);
        t.append_batch(&[1, 2, 3], SimTime::ZERO, &mut d);
        assert_eq!(t.readable_from(0), 3);
        assert_eq!(t.readable_from(2), 1);
        assert_eq!(t.readable_from(5), 0);
    }

    #[test]
    fn mixed_flushed_and_tail_reads_in_order() {
        let (p, mut d, mut t) = setup();
        let tpp = p.tuples_per_page() as u64;
        let n = 8 * tpp + 5; // 8 flushed pages plus a 5-tuple memory tail
        fill(&mut t, &mut d, n);
        assert_eq!(t.flushed(), 8 * tpp);
        // Prefetch everything flushed.
        let (_i, wake) = t.arm_readahead(0, SimTime::ZERO, &mut d);
        let now = wake.unwrap();
        // Whole relation (flushed + tail) is contiguously available.
        assert_eq!(t.available(0, now), n);
        let (tuples, _, _) = t.read_available(0, n + 10, now, &mut d);
        assert_eq!(tuples.len() as u64, n);
        assert_eq!(tuples[0], 0);
        assert_eq!(tuples[n as usize - 1], n - 1);
    }
}
