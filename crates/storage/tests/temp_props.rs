//! Property tests over temp relations: whatever the interleaving of
//! appends, seals, reads and clock advances, a sequential scan must return
//! exactly the appended data, and the I/O accounting must stay consistent.

use dqs_sim::{SimDuration, SimParams, SimTime};
use dqs_storage::{Disk, StreamId, TempRelation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    /// Append `n` tuples.
    Append(u16),
    /// Try to read up to `n` tuples (advancing a cursor).
    Read(u16),
    /// Let the simulated clock advance by `µs`.
    Wait(u32),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (1u16..2_000).prop_map(Step::Append),
            (1u16..2_000).prop_map(Step::Read),
            (1u32..200_000).prop_map(Step::Wait),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The reader sees exactly the writer's sequence, in order, without
    /// gaps, however the operations interleave.
    #[test]
    fn scan_roundtrips_appends(ops in steps()) {
        let params = SimParams::default();
        let mut disk = Disk::new(params.clone());
        let mut temp: TempRelation<u64> = TempRelation::new(&params, StreamId(0), StreamId(1));
        let mut now = SimTime::ZERO;
        let mut written: u64 = 0;
        let mut cursor: u64 = 0;
        let mut read_back: Vec<u64> = Vec::new();

        for op in &ops {
            match op {
                Step::Append(n) => {
                    let batch: Vec<u64> = (written..written + *n as u64).collect();
                    temp.append_batch(&batch, now, &mut disk);
                    written += *n as u64;
                }
                Step::Read(n) => {
                    let (tuples, _instr, wake) =
                        temp.read_available(cursor, *n as u64, now, &mut disk);
                    cursor += tuples.len() as u64;
                    read_back.extend(tuples);
                    // A wake-up, if promised, is never in the past.
                    if let Some(w) = wake {
                        prop_assert!(w >= now || temp.available(cursor, now) > 0);
                    }
                }
                Step::Wait(us) => {
                    now += SimDuration::from_micros(*us as u64);
                }
            }
            // Availability never exceeds what exists past the cursor.
            prop_assert!(temp.available(cursor, now) <= written - cursor);
        }

        // Everything read so far is the exact prefix of what was written.
        let expect: Vec<u64> = (0..cursor).collect();
        prop_assert_eq!(&read_back, &expect);

        // Drain the rest: seal, then read with generous waits.
        temp.seal(now, &mut disk);
        let mut guard = 0;
        while cursor < written {
            let (tuples, _instr, wake) = temp.read_available(cursor, 10_000, now, &mut disk);
            cursor += tuples.len() as u64;
            read_back.extend(tuples);
            if let Some(w) = wake {
                now = now.max(w);
            } else {
                now += SimDuration::from_millis(100);
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain must terminate");
        }
        let expect: Vec<u64> = (0..written).collect();
        prop_assert_eq!(read_back, expect);
    }

    /// Disk page accounting: everything flushed is written exactly once,
    /// and reads never exceed what the read-ahead window could have
    /// fetched.
    #[test]
    fn io_accounting_consistent(appends in prop::collection::vec(1u16..3_000, 1..20)) {
        let params = SimParams::default();
        let mut disk = Disk::new(params.clone());
        let mut temp: TempRelation<u64> = TempRelation::new(&params, StreamId(0), StreamId(1));
        let mut written = 0u64;
        for n in &appends {
            let batch: Vec<u64> = (written..written + *n as u64).collect();
            temp.append_batch(&batch, SimTime::ZERO, &mut disk);
            written += *n as u64;
        }
        temp.seal(SimTime::ZERO, &mut disk);
        let expected_pages = params.pages_for_tuples(written);
        prop_assert_eq!(disk.pages_written(), expected_pages);
        prop_assert_eq!(temp.flushed(), written);
        prop_assert!(temp.is_sealed());
    }
}
