//! Property tests for the cache invariants the mediator relies on:
//!
//! 1. resident bytes never exceed the configured budget, across any
//!    sequence of inserts, lookups, invalidations and clock advances;
//! 2. eviction is LRU — survivors of an eviction were all used more
//!    recently than every victim (checked against a reference model);
//! 3. no lookup after `invalidate` or TTL expiry ever returns the stale
//!    entry.

use std::collections::HashMap;

use dqs_cache::{payload_bytes, CacheConfig, CacheKey, ScanCache, ENTRY_OVERHEAD_BYTES};
use dqs_relop::RelId;
use proptest::collection::vec;
use proptest::prelude::*;

/// One scripted cache operation.
#[derive(Debug, Clone)]
enum Op {
    /// Insert `tuples` keys under key index `k` at the current clock.
    Insert { k: u16, tuples: usize },
    /// Look key index `k` up at the current clock.
    Lookup { k: u16 },
    /// Invalidate one relation (or all when 0).
    Invalidate { rel: u16 },
    /// Advance the clock.
    Advance { ms: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..8, 0usize..64).prop_map(|(k, tuples)| Op::Insert { k, tuples }),
        (0u16..8).prop_map(|k| Op::Lookup { k }),
        (0u16..4).prop_map(|rel| Op::Invalidate { rel }),
        (0u64..40).prop_map(|ms| Op::Advance { ms }),
    ]
}

fn key(k: u16) -> CacheKey {
    // Spread keys across two relations so invalidation hits subsets.
    CacheKey::for_scan("local", RelId(k % 3), u64::from(k), 42, "wrapper:prop")
}

/// Reference model entry: what we believe the cache holds.
#[derive(Debug, Clone)]
struct ModelEntry {
    payload: Vec<u64>,
    expires_at: u64,
    last_used: u64,
}

fn run_script(budget: u64, ttl: Option<u64>, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut c = ScanCache::new(CacheConfig {
        budget_bytes: budget,
        ttl_ms: ttl,
    });
    let mut model: HashMap<u16, ModelEntry> = HashMap::new();
    let mut now = 0u64;
    let mut tick = 0u64;

    for op in ops {
        match *op {
            Op::Insert { k, tuples } => {
                let payload: Vec<u64> = (0..tuples as u64).map(|i| i * 31 + u64::from(k)).collect();
                let bytes = payload_bytes(tuples) + ENTRY_OVERHEAD_BYTES;
                let accepted = c.insert(key(k), payload.clone(), now);
                prop_assert_eq!(
                    accepted,
                    bytes <= budget,
                    "insert accepted iff the entry alone fits the budget"
                );
                if accepted {
                    tick += 1;
                    model.insert(
                        k,
                        ModelEntry {
                            payload,
                            expires_at: ttl.map_or(u64::MAX, |t| now + t),
                            last_used: tick,
                        },
                    );
                    // Mirror LRU eviction: drop least-recently-used model
                    // entries until everything fits.
                    let resident = |m: &HashMap<u16, ModelEntry>| -> u64 {
                        m.values()
                            .map(|e| payload_bytes(e.payload.len()) + ENTRY_OVERHEAD_BYTES)
                            .sum()
                    };
                    while resident(&model) > budget {
                        let victim = *model
                            .iter()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(k, _)| k)
                            .expect("over budget implies entries");
                        prop_assert!(victim != k, "the newcomer itself is never evicted");
                        model.remove(&victim);
                    }
                }
            }
            Op::Lookup { k } => {
                let got = c.lookup(&key(k), now);
                let expect = match model.get(&k) {
                    Some(e) if now < e.expires_at => Some(e.payload.clone()),
                    _ => None,
                };
                match (&got, &expect) {
                    (Some(g), Some(e)) => prop_assert_eq!(g.as_slice(), e.as_slice()),
                    (None, None) => {}
                    _ => {
                        return Err(TestCaseError::fail(format!(
                            "lookup({k}) at {now}: cache {:?} vs model {:?}",
                            got.as_ref().map(|v| v.len()),
                            expect.as_ref().map(|v| v.len())
                        )))
                    }
                }
                if got.is_some() {
                    tick += 1;
                    model.get_mut(&k).expect("hit implies modeled").last_used = tick;
                } else if model.get(&k).is_some_and(|e| now >= e.expires_at) {
                    model.remove(&k); // the cache drops expired entries at lookup
                }
            }
            Op::Invalidate { rel } => {
                if rel == 0 {
                    c.invalidate(None, None);
                    model.clear();
                } else {
                    let r = RelId(rel % 3);
                    c.invalidate(Some(r), None);
                    model.retain(|&k, _| key(k).rel != r);
                }
            }
            Op::Advance { ms } => now += ms,
        }
        // Invariant 1: the budget is a hard ceiling after every step.
        prop_assert!(
            c.resident_bytes() <= budget,
            "resident {} > budget {budget}",
            c.resident_bytes()
        );
        prop_assert_eq!(c.stats().entries, model.len() as u64, "entry count drift");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The full model check without TTL: budget ceiling, LRU survivor
    /// sets, exact payloads, invalidation.
    #[test]
    fn lru_budget_and_invalidation_match_the_model(
        ops in vec(arb_op(), 1..120),
        budget_entries in 1u64..6,
    ) {
        // Budget expressed in "mid-size entries" so eviction is exercised
        // constantly: 32 tuples + overhead each.
        let budget = budget_entries * (payload_bytes(32) + ENTRY_OVERHEAD_BYTES);
        run_script(budget, None, &ops)?;
    }

    /// The same model with a short TTL racing the script clock: expired
    /// entries are never served.
    #[test]
    fn ttl_expiry_never_serves_stale_entries(
        ops in vec(arb_op(), 1..120),
        ttl in 1u64..80,
    ) {
        run_script(4096, Some(ttl), &ops)?;
    }
}
