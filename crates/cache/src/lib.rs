//! # dqs-cache — the mediator-side wrapper result cache
//!
//! The paper's premise (§1–§2) is that wrapper delivery rates are slow and
//! unpredictable; at serving scale most submissions repeat the same
//! `(relation, predicate)` scans, so re-fetching every relation from the
//! network on every session pays the slowest part of the system again and
//! again. This crate is the store that amortizes it: a byte-budgeted,
//! LRU-evicting map from scan signatures to the complete, ordered key
//! stream a wrapper delivered, shared by every session in the mediator.
//!
//! Design constraints, in the order they matter:
//!
//! * **Only completed scans are cached.** A partial recording from an
//!   aborted session is discarded by its recorder, never inserted, so a
//!   replay always reproduces the full answer of a cold run.
//! * **The budget is a hard ceiling.** `resident_bytes <= budget_bytes`
//!   is an invariant of every operation; inserts evict least-recently-used
//!   entries until the newcomer fits, and an entry larger than the whole
//!   budget is refused outright.
//! * **Staleness is bounded.** Each entry carries an absolute expiry
//!   (insert time + the cache-wide TTL); an expired entry is removed at
//!   lookup instead of served. Explicit [`ScanCache::invalidate`] drops
//!   entries immediately — the wire-level `Invalidate` frame lands here.
//! * **Entries refresh in place.** Each entry records the wrapper
//!   change-counter (`version`) it was captured at. When the refresh
//!   scheduler observes a newer version it either appends the insert-only
//!   tail ([`ScanCache::refresh_extend`] — the wrapper re-opened at
//!   `resume_from = cached_len`) or swaps in a full re-scan
//!   ([`ScanCache::refresh_replace`]); either way the entry keeps its hit
//!   history and later sessions replay with zero wrapper traffic. An
//!   entry the refresh budget could not cover is marked stale
//!   ([`ScanCache::mark_stale`]) and hits on it count `stale_served`.
//! * **Sans-io core.** [`ScanCache`] takes `now_ms` explicitly so TTL
//!   semantics are property-testable without a wall clock; [`SharedCache`]
//!   is the thread-safe front the mediator actually holds, stamping real
//!   time onto every call.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dqs_relop::RelId;

/// Fixed accounting overhead charged per entry on top of its payload, so
/// a pathological flood of tiny entries still respects the byte budget.
pub const ENTRY_OVERHEAD_BYTES: u64 = 64;

/// Identity of one cached wrapper scan.
///
/// Tuple keys are a pure function of `(relation, index, seed)` — see
/// `dqs_relop::synth_key` — so two scans with equal signatures deliver
/// bit-identical streams and one recording can answer both.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which wrapper served the scan (an address, or `"local"` for
    /// in-process wrappers).
    pub wrapper: String,
    /// The scanned relation.
    pub rel: RelId,
    /// Signature of everything else that determines the stream: total
    /// cardinality, master seed, and the seed-splitter stream label.
    pub signature: u64,
}

impl CacheKey {
    /// Build a key, folding `(total, seed, stream)` into the signature
    /// with FNV-1a so the key stays cheap to hash and compare.
    pub fn for_scan(wrapper: &str, rel: RelId, total: u64, seed: u64, stream: &str) -> CacheKey {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&total.to_be_bytes());
        eat(&seed.to_be_bytes());
        eat(stream.as_bytes());
        CacheKey {
            wrapper: wrapper.to_string(),
            rel,
            signature: h,
        }
    }
}

/// Cache configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Hard ceiling on resident payload + overhead bytes.
    pub budget_bytes: u64,
    /// Per-entry time-to-live in milliseconds; `None` never expires.
    pub ttl_ms: Option<u64>,
}

/// Lifetime counters, for observability and the bench trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a resident, unexpired entry.
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Completed scans accepted into the store.
    pub insertions: u64,
    /// Entries evicted to make room (LRU order).
    pub evictions: u64,
    /// Entries removed because their TTL elapsed.
    pub expirations: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
    /// Inserts refused because the entry exceeds the whole budget.
    pub oversize_rejections: u64,
    /// Payload tuples served from cache (8 bytes each on the wire they
    /// never crossed).
    pub tuples_served: u64,
    /// Payload bytes served from cache.
    pub bytes_served: u64,
    /// Bytes currently resident (payload + per-entry overhead).
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Entries brought up to date in place by the refresh scheduler
    /// (tail-delta extends and full replacements alike).
    pub refreshes: u64,
    /// Payload bytes fetched as insert-only tail deltas during refresh.
    pub refresh_delta_bytes: u64,
    /// Payload bytes fetched as full re-scans during refresh.
    pub refresh_full_bytes: u64,
    /// Hits served from an entry known to be behind the wrapper (marked
    /// stale by the refresher because the budget could not cover it).
    pub stale_served: u64,
}

#[derive(Debug)]
struct Entry {
    keys: Arc<Vec<u64>>,
    bytes: u64,
    /// Absolute expiry in cache-clock milliseconds; `u64::MAX` = never.
    expires_at_ms: u64,
    /// LRU tick of the last touch (insert or hit); smallest is evicted
    /// first.
    last_used: u64,
    /// Wrapper change-counter the payload was captured at (0 = unknown).
    version: u64,
    /// Hits served from this entry; survives in-place refreshes so the
    /// planner ranks by observed popularity, not time since last swap.
    hits: u64,
    /// When the payload was captured or last confirmed/refreshed.
    captured_at_ms: u64,
    /// The refresher saw a newer wrapper version but could not afford
    /// this entry; hits count as `stale_served` until a refresh lands.
    stale: bool,
}

/// Read-only view of one resident entry, for the refresh planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntrySnapshot {
    /// The entry's identity.
    pub key: CacheKey,
    /// Cached tuple count.
    pub len: u64,
    /// Wrapper change-counter the payload was captured at.
    pub version: u64,
    /// Hits served from this entry so far.
    pub hits: u64,
    /// Milliseconds since the payload was captured or last refreshed.
    pub age_ms: u64,
    /// Whether the refresher has marked this entry behind the wrapper.
    pub stale: bool,
}

/// The sans-io cache core: all time is an explicit `now_ms` argument.
#[derive(Debug)]
pub struct ScanCache {
    cfg: CacheConfig,
    entries: HashMap<CacheKey, Entry>,
    stats: CacheStats,
    tick: u64,
}

/// Payload bytes an entry of `tuples` keys occupies (excluding overhead).
pub fn payload_bytes(tuples: usize) -> u64 {
    tuples as u64 * 8
}

fn entry_bytes(tuples: usize) -> u64 {
    payload_bytes(tuples) + ENTRY_OVERHEAD_BYTES
}

impl ScanCache {
    /// An empty cache under `cfg`.
    pub fn new(cfg: CacheConfig) -> ScanCache {
        ScanCache {
            cfg,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn remove(&mut self, key: &CacheKey) -> Option<Entry> {
        let e = self.entries.remove(key)?;
        self.stats.resident_bytes -= e.bytes;
        self.stats.entries -= 1;
        Some(e)
    }

    /// Serve `key` if a complete, unexpired recording is resident. A hit
    /// refreshes the entry's LRU position; an expired entry is removed
    /// (counted as an expiration *and* a miss — the caller must go to the
    /// wrapper either way).
    pub fn lookup(&mut self, key: &CacheKey, now_ms: u64) -> Option<Arc<Vec<u64>>> {
        match self.entries.get(key) {
            Some(e) if now_ms >= e.expires_at_ms => {
                self.remove(key);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                None
            }
            Some(_) => {
                let tick = self.bump();
                let e = self.entries.get_mut(key).expect("present above");
                e.last_used = tick;
                e.hits += 1;
                let stale = e.stale;
                let keys = Arc::clone(&e.keys);
                self.stats.hits += 1;
                if stale {
                    self.stats.stale_served += 1;
                }
                self.stats.tuples_served += keys.len() as u64;
                self.stats.bytes_served += payload_bytes(keys.len());
                Some(keys)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Shared admission path for inserts and refreshes: evict LRU entries
    /// until the payload fits and store it as fresh-at-`now_ms`,
    /// preserving `hits` across an in-place refresh. Returns `false`
    /// (storing nothing, leaving any prior recording resident) when the
    /// entry alone exceeds the whole budget.
    fn admit(
        &mut self,
        key: CacheKey,
        keys: Vec<u64>,
        version: u64,
        now_ms: u64,
        hits: u64,
    ) -> bool {
        let bytes = entry_bytes(keys.len());
        if bytes > self.cfg.budget_bytes {
            self.stats.oversize_rejections += 1;
            return false;
        }
        self.remove(&key);
        while self.stats.resident_bytes + bytes > self.cfg.budget_bytes {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("resident bytes > 0 implies an entry");
            self.remove(&victim);
            self.stats.evictions += 1;
        }
        let expires_at_ms = match self.cfg.ttl_ms {
            Some(ttl) => now_ms.saturating_add(ttl),
            None => u64::MAX,
        };
        let last_used = self.bump();
        self.entries.insert(
            key,
            Entry {
                keys: Arc::new(keys),
                bytes,
                expires_at_ms,
                last_used,
                version,
                hits,
                captured_at_ms: now_ms,
                stale: false,
            },
        );
        self.stats.resident_bytes += bytes;
        self.stats.entries += 1;
        true
    }

    /// Admit a completed scan, evicting least-recently-used entries until
    /// it fits. Returns `false` (and stores nothing) when the entry alone
    /// exceeds the whole budget. Re-inserting an existing key replaces the
    /// old recording.
    pub fn insert(&mut self, key: CacheKey, keys: Vec<u64>, now_ms: u64) -> bool {
        self.insert_versioned(key, keys, 0, now_ms)
    }

    /// [`ScanCache::insert`], recording the wrapper change-counter the
    /// scan was captured at so the refresh scheduler can tell fresh
    /// entries from stale ones.
    pub fn insert_versioned(
        &mut self,
        key: CacheKey,
        keys: Vec<u64>,
        version: u64,
        now_ms: u64,
    ) -> bool {
        if self.admit(key, keys, version, now_ms, 0) {
            self.stats.insertions += 1;
            true
        } else {
            false
        }
    }

    /// Refresh a resident entry insert-only: append `tail` (the tuples
    /// the wrapper delivered from `resume_from = cached_len`) and advance
    /// the entry to `version`. The entry's hit history survives, its age
    /// and TTL restart, and any stale mark clears. Returns `false` when
    /// the key is not resident or the grown entry exceeds the budget (the
    /// old recording then stays as-is).
    pub fn refresh_extend(
        &mut self,
        key: &CacheKey,
        tail: &[u64],
        version: u64,
        now_ms: u64,
    ) -> bool {
        let Some(e) = self.entries.get(key) else {
            return false;
        };
        let mut keys = (*e.keys).clone();
        keys.extend_from_slice(tail);
        let hits = e.hits;
        if !self.admit(key.clone(), keys, version, now_ms, hits) {
            return false;
        }
        self.stats.refreshes += 1;
        self.stats.refresh_delta_bytes += payload_bytes(tail.len());
        true
    }

    /// Refresh a resident entry by full replacement (the wrapper's data
    /// was rewritten or shrank, so the cached prefix cannot be trusted).
    /// Same lifecycle as [`ScanCache::refresh_extend`].
    pub fn refresh_replace(
        &mut self,
        key: &CacheKey,
        keys: Vec<u64>,
        version: u64,
        now_ms: u64,
    ) -> bool {
        let Some(e) = self.entries.get(key) else {
            return false;
        };
        let hits = e.hits;
        let n = keys.len();
        if !self.admit(key.clone(), keys, version, now_ms, hits) {
            return false;
        }
        self.stats.refreshes += 1;
        self.stats.refresh_full_bytes += payload_bytes(n);
        true
    }

    /// Confirm a resident entry is current at `version` without moving
    /// data (the wrapper's counter advanced but its total did not, or the
    /// entry was captured before versions were known). Resets age and
    /// clears any stale mark.
    pub fn confirm_version(&mut self, key: &CacheKey, version: u64, now_ms: u64) -> bool {
        let Some(e) = self.entries.get_mut(key) else {
            return false;
        };
        e.version = version;
        e.captured_at_ms = now_ms;
        e.stale = false;
        true
    }

    /// Mark a resident entry as known-behind the wrapper (the refresh
    /// budget could not cover it this cycle). Hits on it count
    /// `stale_served` until a refresh or confirmation lands.
    pub fn mark_stale(&mut self, key: &CacheKey) -> bool {
        match self.entries.get_mut(key) {
            Some(e) => {
                e.stale = true;
                true
            }
            None => false,
        }
    }

    /// Snapshot every unexpired resident entry for the refresh planner.
    pub fn entries_snapshot(&self, now_ms: u64) -> Vec<EntrySnapshot> {
        self.entries
            .iter()
            .filter(|(_, e)| now_ms < e.expires_at_ms)
            .map(|(k, e)| EntrySnapshot {
                key: k.clone(),
                len: e.keys.len() as u64,
                version: e.version,
                hits: e.hits,
                age_ms: now_ms.saturating_sub(e.captured_at_ms),
                stale: e.stale,
            })
            .collect()
    }

    /// Drop entries matching both filters: only `rel`'s entries (every
    /// relation when `None`) recorded under logical wrapper id `wrapper`
    /// (every wrapper when `None`). Returns
    /// `(entries_removed, bytes_released)`.
    pub fn invalidate(&mut self, rel: Option<RelId>, wrapper: Option<&str>) -> (u64, u64) {
        let victims: Vec<CacheKey> = self
            .entries
            .keys()
            .filter(|k| rel.map_or(true, |r| k.rel == r))
            .filter(|k| wrapper.map_or(true, |w| k.wrapper == w))
            .cloned()
            .collect();
        let mut bytes = 0;
        for k in &victims {
            if let Some(e) = self.remove(k) {
                bytes += e.bytes;
            }
        }
        self.stats.invalidations += victims.len() as u64;
        (victims.len() as u64, bytes)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Bytes currently resident (payload + overhead).
    pub fn resident_bytes(&self) -> u64 {
        self.stats.resident_bytes
    }

    /// True when `key` is resident (expired or not) — test introspection.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }
}

/// The thread-safe cache the mediator shares across sessions: a
/// [`ScanCache`] behind a mutex with a wall clock stamping `now_ms`.
#[derive(Debug)]
pub struct SharedCache {
    inner: Mutex<ScanCache>,
    epoch: Instant,
}

impl SharedCache {
    /// A shared cache under `cfg`, with its clock origin at this instant.
    pub fn new(cfg: CacheConfig) -> Arc<SharedCache> {
        Arc::new(SharedCache {
            inner: Mutex::new(ScanCache::new(cfg)),
            epoch: Instant::now(),
        })
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// See [`ScanCache::lookup`].
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<Vec<u64>>> {
        let now = self.now_ms();
        self.inner.lock().unwrap().lookup(key, now)
    }

    /// See [`ScanCache::insert`].
    pub fn insert(&self, key: CacheKey, keys: Vec<u64>) -> bool {
        let now = self.now_ms();
        self.inner.lock().unwrap().insert(key, keys, now)
    }

    /// See [`ScanCache::insert_versioned`].
    pub fn insert_versioned(&self, key: CacheKey, keys: Vec<u64>, version: u64) -> bool {
        let now = self.now_ms();
        self.inner
            .lock()
            .unwrap()
            .insert_versioned(key, keys, version, now)
    }

    /// See [`ScanCache::refresh_extend`].
    pub fn refresh_extend(&self, key: &CacheKey, tail: &[u64], version: u64) -> bool {
        let now = self.now_ms();
        self.inner
            .lock()
            .unwrap()
            .refresh_extend(key, tail, version, now)
    }

    /// See [`ScanCache::refresh_replace`].
    pub fn refresh_replace(&self, key: &CacheKey, keys: Vec<u64>, version: u64) -> bool {
        let now = self.now_ms();
        self.inner
            .lock()
            .unwrap()
            .refresh_replace(key, keys, version, now)
    }

    /// See [`ScanCache::confirm_version`].
    pub fn confirm_version(&self, key: &CacheKey, version: u64) -> bool {
        let now = self.now_ms();
        self.inner
            .lock()
            .unwrap()
            .confirm_version(key, version, now)
    }

    /// See [`ScanCache::mark_stale`].
    pub fn mark_stale(&self, key: &CacheKey) -> bool {
        self.inner.lock().unwrap().mark_stale(key)
    }

    /// See [`ScanCache::entries_snapshot`].
    pub fn entries_snapshot(&self) -> Vec<EntrySnapshot> {
        let now = self.now_ms();
        self.inner.lock().unwrap().entries_snapshot(now)
    }

    /// See [`ScanCache::contains`].
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.inner.lock().unwrap().contains(key)
    }

    /// See [`ScanCache::invalidate`].
    pub fn invalidate(&self, rel: Option<RelId>, wrapper: Option<&str>) -> (u64, u64) {
        self.inner.lock().unwrap().invalidate(rel, wrapper)
    }

    /// See [`ScanCache::stats`].
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats()
    }

    /// The byte budget this cache was configured with.
    pub fn budget_bytes(&self) -> u64 {
        self.inner.lock().unwrap().config().budget_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u16) -> CacheKey {
        CacheKey::for_scan("local", RelId(n), 100, 42, "wrapper:t")
    }

    fn cache(budget: u64, ttl: Option<u64>) -> ScanCache {
        ScanCache::new(CacheConfig {
            budget_bytes: budget,
            ttl_ms: ttl,
        })
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let mut c = cache(10_000, None);
        assert!(c.lookup(&key(1), 0).is_none());
        assert!(c.insert(key(1), vec![7, 8, 9], 0));
        let got = c.lookup(&key(1), 5).expect("hit");
        assert_eq!(*got, vec![7, 8, 9]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.tuples_served, 3);
        assert_eq!(s.bytes_served, 24);
    }

    #[test]
    fn distinct_signatures_do_not_collide() {
        let a = CacheKey::for_scan("local", RelId(1), 100, 42, "wrapper:a");
        let b = CacheKey::for_scan("local", RelId(1), 101, 42, "wrapper:a");
        let c = CacheKey::for_scan("local", RelId(1), 100, 43, "wrapper:a");
        let d = CacheKey::for_scan("local", RelId(1), 100, 42, "wrapper:b");
        assert_ne!(a.signature, b.signature);
        assert_ne!(a.signature, c.signature);
        assert_ne!(a.signature, d.signature);
    }

    #[test]
    fn lru_eviction_under_byte_pressure() {
        // Budget fits exactly two 10-tuple entries (80 + 64 each).
        let mut c = cache(2 * (80 + 64), None);
        assert!(c.insert(key(1), vec![0; 10], 0));
        assert!(c.insert(key(2), vec![0; 10], 0));
        // Touch 1 so 2 becomes the LRU victim.
        c.lookup(&key(1), 0).unwrap();
        assert!(c.insert(key(3), vec![0; 10], 0));
        assert!(c.contains(&key(1)), "recently used survives");
        assert!(!c.contains(&key(2)), "LRU evicted");
        assert!(c.contains(&key(3)));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.resident_bytes() <= c.config().budget_bytes);
    }

    #[test]
    fn oversize_entries_are_refused() {
        let mut c = cache(100, None);
        assert!(!c.insert(key(1), vec![0; 100], 0));
        assert_eq!(c.stats().oversize_rejections, 1);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn ttl_expiry_is_a_miss_and_removes_the_entry() {
        let mut c = cache(10_000, Some(50));
        assert!(c.insert(key(1), vec![1], 0));
        assert!(c.lookup(&key(1), 49).is_some(), "still fresh");
        assert!(c.lookup(&key(1), 50).is_none(), "expired at the boundary");
        assert!(!c.contains(&key(1)), "expired entry removed");
        assert_eq!(c.stats().expirations, 1);
        // Re-insert restarts the clock.
        assert!(c.insert(key(1), vec![1], 60));
        assert!(c.lookup(&key(1), 100).is_some());
    }

    #[test]
    fn invalidate_by_relation_and_wholesale() {
        let mut c = cache(10_000, None);
        c.insert(key(1), vec![1], 0);
        c.insert(key(2), vec![2], 0);
        c.insert(
            CacheKey::for_scan("other", RelId(1), 7, 7, "wrapper:o"),
            vec![3],
            0,
        );
        let (n, bytes) = c.invalidate(Some(RelId(1)), None);
        assert_eq!(n, 2, "both rel-1 entries, across wrappers");
        assert_eq!(bytes, 2 * (8 + ENTRY_OVERHEAD_BYTES));
        assert!(c.lookup(&key(1), 0).is_none());
        assert!(c.lookup(&key(2), 0).is_some(), "rel 2 untouched");
        let (n, _) = c.invalidate(None, None);
        assert_eq!(n, 1);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn invalidate_scoped_to_logical_wrapper_id() {
        let mut c = cache(10_000, None);
        // Same relation cached under two logical wrappers; the scoped
        // clear must key on the logical id, not touch the other group.
        c.insert(
            CacheKey::for_scan("w0", RelId(1), 100, 42, "wrapper:a"),
            vec![1],
            0,
        );
        c.insert(
            CacheKey::for_scan("w1", RelId(1), 100, 42, "wrapper:a"),
            vec![2],
            0,
        );
        let (n, _) = c.invalidate(None, Some("127.0.0.1:7401"));
        assert_eq!(n, 0, "an endpoint address matches no logical id");
        let (n, _) = c.invalidate(None, Some("w0"));
        assert_eq!(n, 1);
        assert!(!c.contains(&CacheKey::for_scan("w0", RelId(1), 100, 42, "wrapper:a")));
        assert!(c.contains(&CacheKey::for_scan("w1", RelId(1), 100, 42, "wrapper:a")));
        // rel + wrapper compose conjunctively.
        let (n, _) = c.invalidate(Some(RelId(9)), Some("w1"));
        assert_eq!(n, 0);
        let (n, _) = c.invalidate(Some(RelId(1)), Some("w1"));
        assert_eq!(n, 1);
    }

    #[test]
    fn refresh_extend_appends_tail_and_clears_stale() {
        let mut c = cache(10_000, Some(100));
        assert!(c.insert_versioned(key(1), vec![1, 2, 3], 4, 0));
        c.lookup(&key(1), 10).unwrap();
        assert!(c.mark_stale(&key(1)));
        c.lookup(&key(1), 20).unwrap();
        assert_eq!(c.stats().stale_served, 1, "stale hit counted");
        assert!(c.refresh_extend(&key(1), &[4, 5], 6, 90));
        let got = c.lookup(&key(1), 120).expect("TTL restarted at refresh");
        assert_eq!(*got, vec![1, 2, 3, 4, 5]);
        let s = c.stats();
        assert_eq!(s.refreshes, 1);
        assert_eq!(s.refresh_delta_bytes, 16);
        assert_eq!(s.stale_served, 1, "post-refresh hit is not stale");
        let snap = &c.entries_snapshot(120)[0];
        assert_eq!((snap.version, snap.len, snap.stale), (6, 5, false));
        assert_eq!(snap.hits, 3, "hit history survives the refresh");
    }

    #[test]
    fn refresh_replace_swaps_payload_and_counts_full_bytes() {
        let mut c = cache(10_000, None);
        assert!(c.insert_versioned(key(1), vec![1, 2, 3], 1, 0));
        assert!(c.refresh_replace(&key(1), vec![9, 8], 5, 10));
        assert_eq!(*c.lookup(&key(1), 10).unwrap(), vec![9, 8]);
        let s = c.stats();
        assert_eq!((s.refreshes, s.refresh_full_bytes), (1, 16));
        assert_eq!(s.insertions, 1, "a refresh is not a new insertion");
    }

    #[test]
    fn refresh_of_absent_key_is_refused() {
        let mut c = cache(10_000, None);
        assert!(!c.refresh_extend(&key(1), &[1], 1, 0));
        assert!(!c.refresh_replace(&key(1), vec![1], 1, 0));
        assert!(!c.confirm_version(&key(1), 1, 0));
        assert!(!c.mark_stale(&key(1)));
        assert_eq!(c.stats().refreshes, 0);
    }

    #[test]
    fn oversize_refresh_keeps_the_old_recording() {
        let mut c = cache(100, None);
        assert!(c.insert(key(1), vec![1, 2], 0));
        assert!(!c.refresh_extend(&key(1), &vec![0; 50], 2, 0));
        assert_eq!(*c.lookup(&key(1), 0).unwrap(), vec![1, 2]);
        assert_eq!(c.stats().oversize_rejections, 1);
    }

    #[test]
    fn confirm_version_resets_age_without_moving_data() {
        let mut c = cache(10_000, None);
        assert!(c.insert_versioned(key(1), vec![1], 3, 0));
        assert!(c.mark_stale(&key(1)));
        assert!(c.confirm_version(&key(1), 7, 50));
        let snap = &c.entries_snapshot(60)[0];
        assert_eq!((snap.version, snap.age_ms, snap.stale), (7, 10, false));
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let mut c = cache(10_000, None);
        c.insert(key(1), vec![0; 4], 0);
        let before = c.resident_bytes();
        c.insert(key(1), vec![0; 4], 0);
        assert_eq!(c.resident_bytes(), before, "replacement, not accumulation");
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn shared_cache_front_serves_and_counts() {
        let c = SharedCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ttl_ms: None,
        });
        assert!(c.lookup(&key(9)).is_none());
        assert!(c.insert(key(9), vec![5, 6]));
        assert_eq!(*c.lookup(&key(9)).unwrap(), vec![5, 6]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.budget_bytes(), 1 << 20);
        assert!(c.refresh_extend(&key(9), &[7], 2));
        assert_eq!(*c.lookup(&key(9)).unwrap(), vec![5, 6, 7]);
        assert_eq!(c.entries_snapshot()[0].version, 2);
    }

    mod props {
        use super::*;
        use proptest::collection::vec as pvec;
        use proptest::prelude::*;

        proptest! {
            /// Insert-only refresh is exact: extending a cached prefix
            /// with the tail delta yields an entry byte-identical to a
            /// full re-scan captured at the same version.
            #[test]
            fn tail_delta_refresh_equals_full_rescan(
                base in pvec(any::<u64>(), 0..64),
                tail in pvec(any::<u64>(), 0..64),
                version in 1u64..1000,
            ) {
                let mut delta = cache(1 << 20, None);
                let mut full = cache(1 << 20, None);
                prop_assert!(delta.insert_versioned(key(1), base.clone(), version, 0));
                prop_assert!(delta.refresh_extend(&key(1), &tail, version + 1, 10));
                let mut whole = base.clone();
                whole.extend_from_slice(&tail);
                prop_assert!(full.insert_versioned(key(1), whole, version + 1, 10));
                let a = delta.lookup(&key(1), 20).unwrap();
                let b = full.lookup(&key(1), 20).unwrap();
                prop_assert_eq!(&*a, &*b, "payloads must be byte-identical");
                let sa = delta.entries_snapshot(20).remove(0);
                let sb = full.entries_snapshot(20).remove(0);
                prop_assert_eq!(sa.version, sb.version);
                prop_assert_eq!(sa.len, sb.len);
                prop_assert_eq!(delta.resident_bytes(), full.resident_bytes());
            }
        }
    }
}
