//! White-box tests of the DQS scheduling-plan computation (§4.5), driving
//! `DsePolicy::plan` directly against a constructed world.

use dqs_core::DsePolicy;
use dqs_exec::{FragKind, FragTable, Interrupt, PlanCtx, Policy, Workload, World};
use dqs_plan::PcId;
use dqs_sim::{SimDuration, SimTime};

fn fig5_ctx() -> (World, dqs_plan::AnnotatedPlan, FragTable) {
    let (w, _) = Workload::fig5();
    let (world, plan) = World::build(&w);
    let frags = FragTable::from_plan(&plan, 42);
    (world, plan, frags)
}

#[test]
fn initial_plan_schedules_only_c_schedulable_chains() {
    let (mut world, plan, mut frags) = fig5_ctx();
    let mut policy = DsePolicy::new();
    let sp = {
        let mut ctx = PlanCtx {
            now: SimTime::ZERO,
            plan: &plan,
            frags: &mut frags,
            world: &mut world,
            obs: &mut dqs_exec::NullObserver,
        };
        policy.plan(&mut ctx, Interrupt::Start)
    };
    // Before any arrivals: no rate estimates, so no degradations; only the
    // dependency-free chains p_A (pc 0) and p_D (pc 3) are schedulable.
    let pcs: Vec<PcId> = sp.iter().map(|&f| frags.get(f).pc).collect();
    assert_eq!(pcs, vec![PcId(0), PcId(3)], "p_A then p_D");
    // Priority: p_A has ~10x the tuples at the same w and similar c, so its
    // critical degree dominates.
    assert!(frags.iter().all(|f| f.kind == FragKind::Whole));
}

#[test]
fn degradation_waits_for_rate_estimates_then_fires() {
    let (mut world, plan, mut frags) = fig5_ctx();
    let mut policy = DsePolicy::new();

    // Warm up wrapper B (rel id 1) with 20 µs arrivals: after the warm-up
    // threshold the CM has an estimate and bmi = 20 / (2·6.7) ≈ 1.49 > 1.
    let rel_b = dqs_relop::RelId(1);
    let (arrivals, _) = world.cm.start(SimTime::ZERO);
    let mut t = arrivals
        .iter()
        .find(|(r, _)| *r == rel_b)
        .map(|&(_, at)| at)
        .unwrap();
    for _ in 0..20 {
        let out = world.cm.on_arrival(rel_b, t);
        t = out.next_arrival.unwrap_or(t + SimDuration::from_micros(20));
    }
    assert!(world.cm.estimated_gap(rel_b).is_some());

    let sp = {
        let mut ctx = PlanCtx {
            now: t,
            plan: &plan,
            frags: &mut frags,
            world: &mut world,
            obs: &mut dqs_exec::NullObserver,
        };
        policy.plan(&mut ctx, Interrupt::RateChange)
    };
    // p_B (pc 1) is blocked on p_A's hash table, critical, and now has a
    // rate estimate: it must be degraded, and its MF scheduled.
    assert!(frags.is_degraded(PcId(1)), "p_B degraded");
    let mf = frags.live_mf(PcId(1)).expect("MF of p_B alive");
    assert!(sp.contains(&mf), "MF(p_B) is in the scheduling plan");
    // The whole chain fragment was superseded, not run.
    assert_eq!(
        frags.live_body(PcId(1)).map(|f| frags.get(f).kind),
        Some(FragKind::Cf)
    );
}

#[test]
fn memory_gating_excludes_unfundable_builds() {
    let (mut w, _) = Workload::fig5();
    // Budget below p_A's 6 MB hash table: nothing that builds can be
    // admitted, so the initial plan must not contain p_A or p_D.
    w.config.memory_bytes = 1024 * 1024;
    let (mut world, plan) = World::build(&w);
    let mut frags = FragTable::from_plan(&plan, 42);
    let mut policy = DsePolicy::new();
    let sp = {
        let mut ctx = PlanCtx {
            now: SimTime::ZERO,
            plan: &plan,
            frags: &mut frags,
            world: &mut world,
            obs: &mut dqs_exec::NullObserver,
        };
        policy.plan(&mut ctx, Interrupt::Start)
    };
    let pcs: Vec<PcId> = sp.iter().map(|&f| frags.get(f).pc).collect();
    assert!(
        !pcs.contains(&PcId(0)),
        "p_A (6 MB build) cannot fit a 1 MB budget: sp = {pcs:?}"
    );
    // p_D (600 KB) does fit.
    assert!(pcs.contains(&PcId(3)), "p_D fits: sp = {pcs:?}");
}

#[test]
fn plan_is_deterministic() {
    let (mut world_a, plan_a, mut frags_a) = fig5_ctx();
    let (mut world_b, plan_b, mut frags_b) = fig5_ctx();
    let mut pa = DsePolicy::new();
    let mut pb = DsePolicy::new();
    let sp_a = pa.plan(
        &mut PlanCtx {
            now: SimTime::ZERO,
            plan: &plan_a,
            frags: &mut frags_a,
            world: &mut world_a,
            obs: &mut dqs_exec::NullObserver,
        },
        Interrupt::Start,
    );
    let sp_b = pb.plan(
        &mut PlanCtx {
            now: SimTime::ZERO,
            plan: &plan_b,
            frags: &mut frags_b,
            world: &mut world_b,
            obs: &mut dqs_exec::NullObserver,
        },
        Interrupt::Start,
    );
    assert_eq!(sp_a, sp_b);
}
