//! Property tests: SPM's permuted drain order is a pure scheduling change.
//! For arbitrary generated bushy queries × seeds × §1.2 delay classes, SPM
//! must deliver exactly the answer SEQ and DSE deliver — the permutation
//! scheduler may only change *when* sources drain, never *what* the query
//! computes.

use dqs_core::DsePolicy;
use dqs_exec::{run_workload, SeqPolicy, SpmPolicy, Workload};
use dqs_plan::{generate, GeneratorConfig};
use dqs_relop::RelId;
use dqs_sim::{SeedSplitter, SimDuration};
use dqs_source::DelayModel;
use proptest::prelude::*;

/// The §1.2 delay classes, applied to the query's first relation. Delays
/// are scaled down from the paper's (seconds-range) values so 64 property
/// cases stay fast; the taxonomy shape is what matters.
fn delay_class(class: u8) -> Option<DelayModel> {
    match class % 4 {
        0 => None, // every wrapper at its natural rate
        1 => Some(DelayModel::Initial {
            initial: SimDuration::from_millis(50),
            mean: SimDuration::from_micros(5),
        }),
        2 => Some(DelayModel::Bursty {
            burst: 200,
            within: SimDuration::from_micros(5),
            pause: SimDuration::from_millis(20),
        }),
        _ => Some(DelayModel::Uniform {
            mean: SimDuration::from_micros(20),
        }),
    }
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (2usize..6, 0u64..10_000, 1u64..500, 0u8..4).prop_map(
        |(relations, gen_seed, run_seed, class)| {
            let mut rng = SeedSplitter::new(gen_seed).stream("spm-parity");
            let q = generate(
                &GeneratorConfig {
                    relations,
                    cardinality: (200, 2_000),
                    ..GeneratorConfig::default()
                },
                &mut rng,
            );
            let mut w = Workload::new(q.catalog, q.qep).with_seed(run_seed);
            if let Some(model) = delay_class(class) {
                w = w.with_delay(RelId(0), model);
            }
            w
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// SPM ≡ SEQ ≡ DSE on answer cardinality for every query × seed ×
    /// delay class, and the permuted runs actually fed the observatory.
    #[test]
    fn spm_answers_are_bit_identical_to_seq_and_dse(w in arb_workload()) {
        let seq = run_workload(&w, SeqPolicy);
        let spm = run_workload(&w, SpmPolicy::new());
        let dse = run_workload(&w, DsePolicy::new());
        prop_assert_eq!(seq.output_tuples, spm.output_tuples, "SPM vs SEQ");
        prop_assert_eq!(dse.output_tuples, spm.output_tuples, "SPM vs DSE");
        prop_assert!(spm.rate_samples > 0, "observatory saw no samples");
    }

    /// The same workload twice under SPM is bit-identical end to end —
    /// adaptivity must not cost determinism.
    #[test]
    fn spm_is_deterministic(w in arb_workload()) {
        let a = run_workload(&w, SpmPolicy::new());
        let b = run_workload(&w, SpmPolicy::new());
        prop_assert_eq!(a, b);
    }
}
