//! The dynamic QEP optimizer's memory-overflow module (§4.2).
//!
//! "If p is not M-schedulable, the DQP cannot process p, even alone, in the
//! available memory without generating paging ... the query scheduler
//! suspends execution when a PC is discovered to be not M-schedulable and
//! informs the dynamic optimizer which must change the query execution
//! plan. ... One simple solution is to use the technique devised in \[4\]. It
//! consists of modifying the QEP by replacing p by two fragments. This
//! involves inserting a materialize operator at the highest possible point
//! in p ... A remarkable feature is that the first created fragment is
//! necessarily M-schedulable."
//!
//! Runtime realization: split the fragment just before its terminal
//! `Build`. The head runs every probe and spools its output to a temp —
//! when it completes, the hash tables it probed are discarded and their
//! memory released, at which point the tail (temp scan → build) can reserve
//! the memory the whole chain could not.

use dqs_exec::{FragId, FragSource, FragStatus, PlanCtx};
use dqs_relop::OpSpec;

/// Whether splitting `frag` can relieve memory pressure, and at which
/// operator boundary.
///
/// Returns the split point `k` when (i) the fragment has not started,
/// (ii) it terminates in a `Build`, and (iii) the head `ops[..k]` contains
/// at least one probe — releasing a probed table is the only memory this
/// transformation frees.
pub fn split_point(ctx: &PlanCtx<'_>, frag: FragId) -> Option<usize> {
    let f = ctx.frags.get(frag);
    if f.status != FragStatus::Active || f.started {
        return None;
    }
    let spec = f.chain.spec();
    if !matches!(spec.last(), Some(OpSpec::Build { .. })) || spec.len() < 2 {
        return None;
    }
    let k = spec.len() - 1;
    spec[..k]
        .iter()
        .any(|o| matches!(o, OpSpec::Probe { .. }))
        .then_some(k)
}

/// Bytes currently held by hash tables this fragment probes — the memory a
/// §4.2 split would eventually release.
pub fn probed_resident_bytes(ctx: &PlanCtx<'_>, frag: FragId) -> u64 {
    let tuple_bytes = ctx.world.params.tuple_bytes;
    ctx.frags
        .get(frag)
        .chain
        .probe_targets()
        .iter()
        .map(|&ht| ctx.world.arena.get(ht).footprint_bytes(tuple_bytes))
        .sum()
}

/// Apply the §4.2 transformation to `frag` if possible: returns the
/// (head, tail) pair, head first so the scheduler can run it immediately.
pub fn try_split(ctx: &mut PlanCtx<'_>, frag: FragId) -> Option<(FragId, FragId)> {
    let k = split_point(ctx, frag)?;
    Some(ctx.split(frag, k))
}

/// True when `frag` is a candidate for the overflow split: it needs more
/// memory than is free, and the tables it probes hold enough to matter.
pub fn overflow_candidate(ctx: &PlanCtx<'_>, frag: FragId, needed: u64) -> bool {
    let f = ctx.frags.get(frag);
    if f.started || !matches!(f.source, FragSource::Queue(_) | FragSource::Temp { .. }) {
        return false;
    }
    needed > ctx.world.memory.free() && probed_resident_bytes(ctx, frag) > 0
}
