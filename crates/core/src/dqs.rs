//! DSE — the paper's Dynamic Scheduling Execution strategy.
//!
//! §4.5: "At each scheduling phase, the DQS computes an SP by using the
//! annotated query execution plan, a set of heuristic rules, the current
//! state of the query execution (e.g., data arrival rates estimations and
//! the available memory) and the benefit materialization threshold (bmt).
//! The DQS first computes the set of schedulable PC's. It then selects
//! non-C-schedulable PC's for degradation when bmi is greater than bmt.
//! Then it establishes a priority order between these PC's using the
//! critical degree of the PC's. Finally the DQS uses this priority order,
//! and memory constraints (i.e., ensures that the scheduling plan fits in
//! the available memory) to extract a scheduling plan."
//!
//! The heuristics the paper defers to its tech report \[6\] are made concrete
//! here and documented inline:
//!
//! * priority = critical degree, descending; ties break toward the lower
//!   chain id (§5.3 observes total ordering is delicate when degrees tie);
//! * an MF is cancelled as soon as its chain becomes C-schedulable — the
//!   remaining tuples flow directly to the complement fragment once the
//!   temp drains ("partial materialization");
//! * memory extraction is a greedy walk: a fragment whose (unreserved)
//!   hash-table estimate does not fit the remaining budget is left out of
//!   this scheduling plan and reconsidered at the next phase;
//! * a C-schedulable fragment that can never fit while the tables it
//!   probes stay resident is handed to the DQO's §4.2 split.

use std::collections::BTreeSet;

use dqs_exec::{FragId, FragKind, FragSource, FragStatus, Interrupt, PlanCtx, Policy};
use dqs_plan::PcId;
use dqs_relop::estimate_chain;
use dqs_sim::SimDuration;

use crate::dqo;
use crate::metrics::{bmi, critical_degree, DEFAULT_BMT};

/// Tuning knobs of the DSE strategy (ablation benches sweep these).
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Benefit-materialization threshold (§4.4); §5.1.3 fixes it to 1.
    pub bmt: f64,
    /// Enable PC degradation (disable to ablate: pure reordering DSE).
    pub degrade: bool,
    /// Enable MF cancellation when the chain becomes schedulable.
    pub cancel_mf: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            bmt: DEFAULT_BMT,
            degrade: true,
            cancel_mf: true,
        }
    }
}

/// The Dynamic Scheduling Execution policy (DQS + DQO).
#[derive(Debug, Default)]
pub struct DsePolicy {
    cfg: DseConfig,
    /// Chains this policy degraded for delay absorption (only these MFs are
    /// cancellable; DQO memory-split heads must run to completion).
    degraded_for_delay: BTreeSet<PcId>,
}

impl DsePolicy {
    /// DSE with the paper's defaults (`bmt = 1`).
    pub fn new() -> Self {
        DsePolicy::default()
    }

    /// DSE with explicit configuration.
    pub fn with_config(cfg: DseConfig) -> Self {
        DsePolicy {
            cfg,
            degraded_for_delay: BTreeSet::new(),
        }
    }

    /// Live estimate of the inter-tuple gap of a fragment's source.
    fn source_gap(ctx: &PlanCtx<'_>, source: FragSource) -> SimDuration {
        match source {
            FragSource::Queue(rel) => ctx
                .world
                .cm
                .estimated_gap(rel)
                .unwrap_or_else(|| ctx.world.params.w_min()),
            FragSource::Temp { .. } => ctx.world.disk.amortized_tuple_io(),
        }
    }

    /// Tuples a fragment still expects from its source (`n_p`, updated with
    /// progress).
    fn remaining(ctx: &PlanCtx<'_>, f: FragId) -> u64 {
        let frag = ctx.frags.get(f);
        let est = ctx.plan.info(frag.pc).source_card as u64;
        match frag.source {
            FragSource::Queue(rel) => {
                // Future arrivals: estimate minus what already reached the
                // mediator (queued tuples are no longer "waited for").
                est.saturating_sub(ctx.world.cm.received(rel))
            }
            FragSource::Temp { cursor, .. } => est.saturating_sub(cursor),
        }
    }

    /// `c_p` of a fragment: average per-source-tuple CPU time of its ops.
    fn per_tuple_cost(ctx: &PlanCtx<'_>, f: FragId) -> SimDuration {
        let spec = ctx.frags.get(f).chain.spec();
        let instr = estimate_chain(spec, &ctx.world.params).instr_per_source_tuple;
        SimDuration::from_nanos((instr * 1_000.0 / ctx.world.params.cpu_mips as f64).round() as u64)
    }

    fn critical_of(ctx: &PlanCtx<'_>, f: FragId) -> i128 {
        let frag = ctx.frags.get(f);
        let n = Self::remaining(ctx, f);
        let w = Self::source_gap(ctx, frag.source);
        let c = Self::per_tuple_cost(ctx, f);
        critical_degree(n, w, c)
    }
}

impl Policy for DsePolicy {
    fn name(&self) -> &'static str {
        "DSE"
    }

    fn plan(&mut self, ctx: &mut PlanCtx<'_>, _why: Interrupt) -> Vec<FragId> {
        let pcs = ctx.plan.chains.sequential_order();
        let io_p = ctx.world.disk.amortized_tuple_io();

        // Pass 1 — cancel delay MFs whose chain became C-schedulable: from
        // here on the complement fragment absorbs the live stream itself.
        if self.cfg.cancel_mf {
            for &pc in &pcs {
                if !self.degraded_for_delay.contains(&pc) {
                    continue;
                }
                let Some(mf) = ctx.frags.live_mf(pc) else {
                    continue;
                };
                if matches!(ctx.frags.get(mf).source, FragSource::Queue(_)) && ctx.c_schedulable(pc)
                {
                    ctx.cancel_mf(mf);
                    self.degraded_for_delay.remove(&pc);
                }
            }
        }

        // Pass 2 — degradation (§4.4): non-C-schedulable, wrapper-fed,
        // critical chains with bmi above the threshold start materializing.
        if self.cfg.degrade {
            for &pc in &pcs {
                let Some(body) = ctx.frags.live_body(pc) else {
                    continue;
                };
                let b = ctx.frags.get(body);
                if b.kind != FragKind::Whole || b.started {
                    continue;
                }
                let FragSource::Queue(rel) = b.source else {
                    continue;
                };
                if ctx.c_schedulable(pc) {
                    continue;
                }
                if ctx.world.cm.exhausted(rel) {
                    // Everything already arrived; nothing left to absorb.
                    continue;
                }
                if ctx.world.cm.estimated_gap(rel).is_none() {
                    // No delivery-rate observations yet: degrading on the
                    // blind w_min fallback would materialize fast sources
                    // for nothing. The CM raises a RateChange as soon as
                    // the first stable estimate exists.
                    continue;
                }
                let w = Self::source_gap(ctx, b.source);
                let n = Self::remaining(ctx, body);
                let c = Self::per_tuple_cost(ctx, body);
                if critical_degree(n, w, c) > 0 && bmi(w, io_p) > self.cfg.bmt {
                    ctx.degrade(pc, true);
                    self.degraded_for_delay.insert(pc);
                }
            }
        }

        // Pass 3 — collect schedulable fragments: every active MF, plus
        // every body whose probes are complete (runtime C-schedulability).
        let mut candidates: Vec<(i128, FragId)> = Vec::new();
        for &pc in &pcs {
            if let Some(mf) = ctx.frags.live_mf(pc) {
                candidates.push((Self::critical_of(ctx, mf), mf));
            }
            if let Some(body) = ctx.frags.live_body(pc) {
                if ctx.c_schedulable(pc) {
                    candidates.push((Self::critical_of(ctx, body), body));
                }
            }
        }
        // Priority: critical degree descending; ties toward older
        // fragments (stable, deterministic — §5.3's total-order caveat).
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        // Pass 4 — memory extraction (§4.1 M-schedulability): admit
        // fragments greedily while their unreserved hash-table estimates
        // fit; hand hopeless cases to the DQO split.
        let mut sp = Vec::with_capacity(candidates.len());
        let mut budget = ctx.world.memory.free();
        for (_, f) in candidates {
            if ctx.frags.get(f).status != FragStatus::Active {
                continue; // superseded by a split earlier in this pass
            }
            let needs = match ctx.frags.get(f).chain.build_target() {
                Some(_) if !ctx.frags.get(f).started => {
                    ctx.plan.info(ctx.frags.get(f).pc).mem_bytes
                }
                _ => 0,
            };
            if needs <= budget {
                budget -= needs;
                sp.push(f);
            } else if dqo::overflow_candidate(ctx, f, needs) {
                if let Some((head, _tail)) = dqo::try_split(ctx, f) {
                    // The head probes-and-spools within negligible memory;
                    // the tail waits for the head to free the probed
                    // tables.
                    sp.push(head);
                }
            }
            // else: not M-schedulable this phase; reconsidered at the next
            // planning phase (§4.2: execution of that chain is suspended).
        }
        sp
    }
}
