//! The analytic lower bound LWB (§5.1.2).
//!
//! "For a given query Q, the lower bound for the response time is
//! `LWB(Q) = max( Σ_p n_p·c_p , max_p (n_p·w_p) )` ... No execution
//! strategy can obtain an execution time lower than LWB."
//!
//! Interpretation note (the formula is garbled in the available scan): the
//! first term must be the total mediator CPU work — the response time of a
//! uniprocessor cannot undercut its own busy time — and the second the
//! retrieval time of the slowest wrapper, which no mediator-side strategy
//! can hide. We additionally fold the per-message receive CPU into the
//! first term, since it runs on the same processor.

use dqs_exec::Workload;
use dqs_plan::{AnnotatedPlan, ChainSet, ChainSource};
use dqs_sim::SimDuration;

/// Note: with stochastic delay models (`DelayModel::Uniform`), the
/// retrieval term is the *expected* retrieval time; a sampled run can
/// finish marginally earlier. Comparisons should allow sampling slack.
///
/// The two components of the bound, plus their max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lwb {
    /// Total mediator CPU work: Σ n_p·c_p plus message receive costs.
    pub cpu_work: SimDuration,
    /// max_p n_p·w_p — the slowest single retrieval (in expectation).
    pub max_retrieval: SimDuration,
    /// Per-wrapper `(expected retrieval, std of the sampled retrieval)`.
    retrievals: Vec<(SimDuration, SimDuration)>,
}

impl Lwb {
    /// The bound itself (retrieval term in expectation).
    pub fn bound(&self) -> SimDuration {
        self.cpu_work.max(self.max_retrieval)
    }

    /// A bound that holds for sampled runs with ~`k`-sigma confidence:
    /// each wrapper's retrieval term is discounted by `k` standard
    /// deviations of its total delay sum before taking the max. The CPU
    /// term is deterministic and undiscounted. Use `k = 5` in tests.
    pub fn probabilistic_bound(&self, k: f64) -> SimDuration {
        let retrieval = self
            .retrievals
            .iter()
            .map(|&(exp, std)| {
                let discount = (std.as_nanos() as f64 * k).round() as u64;
                exp.saturating_sub(SimDuration::from_nanos(discount))
            })
            .max()
            .unwrap_or(SimDuration::ZERO);
        self.cpu_work.max(retrieval)
    }
}

/// Compute LWB for a workload.
pub fn lwb(workload: &Workload) -> Lwb {
    let params = &workload.config.params;
    let chains = ChainSet::decompose(&workload.qep);
    let plan = AnnotatedPlan::annotate(chains, &workload.catalog, params);

    // Σ n_p · c_p over all chains.
    let mut cpu = plan.total_cpu_estimate(params);

    // Message receive CPU: one message per batch of incoming tuples, plus
    // one sub-query send per wrapper.
    let tuples_per_msg = params.tuples_per_message();
    let mut messages = workload.catalog.len() as u64;
    for (_, spec) in workload.catalog.iter() {
        messages += spec.cardinality.div_ceil(tuples_per_msg.max(1));
    }
    cpu += params.instr_time(messages * params.instr_per_message);

    // max_p n_p · w_p over wrapper-fed chains.
    let mut max_retrieval = SimDuration::ZERO;
    let mut retrievals = Vec::new();
    for pc in &plan.chains.chains {
        if let ChainSource::Wrapper(rel) = pc.source {
            let n = workload.actual_cardinality(rel);
            let model = &workload.delays[rel.0 as usize];
            let total = model.expected_total(n);
            retrievals.push((total, model.total_std(n)));
            max_retrieval = max_retrieval.max(total);
        }
    }

    Lwb {
        cpu_work: cpu,
        max_retrieval,
        retrievals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_exec::{run_workload, MaPolicy, SeqPolicy};
    use dqs_plan::{Catalog, QepBuilder};
    use dqs_sim::SimDuration;
    use dqs_source::DelayModel;

    fn workload(card_a: u64, card_b: u64) -> Workload {
        let mut cat = Catalog::new();
        let a = cat.add("A", card_a);
        let b = cat.add("B", card_b);
        let mut qb = QepBuilder::new();
        let sa = qb.scan(a, 1.0);
        let sb = qb.scan(b, 1.0);
        let j = qb.hash_join(sa, sb, 1.0);
        Workload::new(cat, qb.finish(j).unwrap())
    }

    #[test]
    fn lwb_is_below_every_strategy() {
        let w = workload(10_000, 10_000);
        let bound = lwb(&w).probabilistic_bound(5.0);
        for m in [
            run_workload(&w, SeqPolicy),
            run_workload(&w, MaPolicy::default()),
        ] {
            assert!(
                m.response_time >= bound,
                "{} ran in {} < LWB {bound}",
                m.strategy,
                m.response_time
            );
        }
    }

    #[test]
    fn slow_wrapper_moves_the_bound() {
        let w = workload(1_000, 1_000);
        let base = lwb(&w);
        let slowed = w.with_delay(
            dqs_relop::RelId(0),
            DelayModel::Uniform {
                mean: SimDuration::from_millis(1),
            },
        );
        let l = lwb(&slowed);
        assert_eq!(l.cpu_work, base.cpu_work, "CPU work is delay-independent");
        assert_eq!(
            l.max_retrieval,
            SimDuration::from_secs(1),
            "1000 tuples at 1 ms each"
        );
        assert!(l.bound() > base.bound());
    }

    #[test]
    fn cpu_bound_workload_uses_cpu_term() {
        // Tiny delays: the bound must come from CPU work.
        let w = workload(50_000, 50_000).with_all_delays(DelayModel::Constant {
            w: SimDuration::from_nanos(100),
        });
        let l = lwb(&w);
        assert!(l.cpu_work > l.max_retrieval);
        assert_eq!(l.bound(), l.cpu_work);
    }

    #[test]
    fn probabilistic_bound_discounts_only_stochastic_terms() {
        // Deterministic delays: no discount at any k.
        let det = workload(1_000, 1_000);
        let l = lwb(&det);
        assert_eq!(l.probabilistic_bound(10.0), l.bound());
        // Stochastic delays: the discounted bound is below the expectation
        // (when retrieval dominates), and never below the CPU term.
        let sto = workload(1_000, 1_000).with_all_delays(DelayModel::Uniform {
            mean: SimDuration::from_millis(1),
        });
        let l = lwb(&sto);
        assert!(l.probabilistic_bound(5.0) < l.bound());
        assert!(l.probabilistic_bound(5.0) >= l.cpu_work);
    }
}
