//! Session admission for the concurrent mediator.
//!
//! The paper schedules *one* query well; a serving mediator must also
//! decide *which* queries run at all. [`SessionTable`] is that decision as
//! a sans-io state machine: up to `max_concurrent` sessions run at once,
//! each under an equal partition of the global memory budget (the §4
//! memory bound `M` becomes `M / max_concurrent` per query, so every
//! admitted query plans against a budget that cannot be revoked
//! mid-run); excess submissions wait in a bounded backlog and anything
//! past the backlog is rejected outright.
//!
//! Which waiter a freed slot promotes is the [`AdmissionPolicy`]:
//!
//! * [`AdmissionPolicy::Fifo`] — arrival order, the original behavior;
//! * [`AdmissionPolicy::Sjf`] — shortest job first by the estimated cost
//!   each submission carries (the mediator estimates it from the spec's
//!   cardinalities and delay models), which collapses tail latency when
//!   short queries would otherwise convoy behind long ones;
//! * [`AdmissionPolicy::Fair`] — SJF with per-client aging: a waiter
//!   bypassed `fair_aging` times by *other clients'* jobs is promoted
//!   next regardless of cost, so a stream of cheap queries can delay an
//!   expensive one by a bounded number of promotions, never starve it —
//!   and a client cannot age its own long job forward by spamming cheap
//!   ones.
//!
//! The table also records each session's *queue wait* — the time between
//! submission and promotion (zero for direct admits) — so admission-policy
//! effects are observable in production metrics, not just in benches.
//!
//! The table has no threads and no sockets — the mediator server holds it
//! behind a mutex and drives it from connection handlers — so its
//! invariants are testable without a single byte of I/O:
//!
//! * running sessions never exceed `max_concurrent`;
//! * memory in use is exactly `running × partition` and never exceeds the
//!   global budget;
//! * under FIFO, a finishing session promotes the oldest queued
//!   submission; under Fair, no waiter is bypassed more than `fair_aging`
//!   times.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Which waiting submission a freed slot promotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Arrival order (the classic bounded-backlog queue).
    #[default]
    Fifo,
    /// Shortest job first by estimated cost (ties broken by arrival).
    Sjf,
    /// SJF with per-client aging: a waiter bypassed `fair_aging` times
    /// by other clients' jobs goes next regardless of cost.
    Fair,
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<AdmissionPolicy, String> {
        match s {
            "fifo" => Ok(AdmissionPolicy::Fifo),
            "sjf" => Ok(AdmissionPolicy::Sjf),
            "fair" => Ok(AdmissionPolicy::Fair),
            other => Err(format!(
                "unknown admission policy {other:?} (fifo|sjf|fair)"
            )),
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::Sjf => "sjf",
            AdmissionPolicy::Fair => "fair",
        })
    }
}

/// Admission-control configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Sessions allowed to execute simultaneously (min 1).
    pub max_concurrent: usize,
    /// Submissions allowed to wait beyond the running set.
    pub backlog: usize,
    /// Global memory budget partitioned across running sessions, bytes.
    pub memory_bytes: u64,
    /// Which waiter a freed slot promotes.
    pub policy: AdmissionPolicy,
    /// Under [`AdmissionPolicy::Fair`]: promotions a waiter may lose to
    /// cheaper jobs before it is promoted unconditionally.
    pub fair_aging: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_concurrent: 2,
            backlog: 8,
            memory_bytes: 64 << 20,
            policy: AdmissionPolicy::Fifo,
            fair_aging: 4,
        }
    }
}

/// What the mediator should do with a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Run it now, under this memory partition.
    Admit {
        /// The new session's id.
        session: u64,
        /// The memory budget the session's query must plan within.
        memory_bytes: u64,
    },
    /// Hold it; it will be promoted when a slot frees.
    Queue {
        /// The new session's id.
        session: u64,
        /// Position in the backlog, in arrival order (0 = oldest; under
        /// FIFO, also next to be promoted).
        position: usize,
    },
    /// Refuse it; the backlog is full.
    Reject {
        /// Why.
        reason: String,
    },
}

/// Load and accounting counters, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Sessions currently executing.
    pub running: usize,
    /// Sessions currently queued.
    pub queued: usize,
    /// Memory currently reserved by running sessions, bytes.
    pub mem_in_use: u64,
    /// High-water mark of `mem_in_use` over the table's lifetime.
    pub mem_peak: u64,
    /// Most sessions ever running at once.
    pub max_active_seen: usize,
    /// Total submissions admitted (directly or via promotion).
    pub admitted: u64,
    /// Total submissions rejected.
    pub rejected: u64,
}

/// One submission parked in the backlog.
#[derive(Debug)]
struct Waiter {
    session: u64,
    /// Estimated cost (opaque units; the mediator uses estimated wrapper
    /// microseconds). Lower promotes first under SJF/Fair.
    cost: u64,
    /// Submitting client, for per-client accounting under Fair.
    client: u64,
    /// Arrival order (monotonic; FIFO key and the SJF tie-break).
    seq: u64,
    /// Times another client's job bypassed this waiter.
    skipped: u32,
    queued_at: Instant,
}

/// The mediator's admission state: who runs, who waits, under how much
/// memory.
#[derive(Debug)]
pub struct SessionTable {
    cfg: SessionConfig,
    next_id: u64,
    next_seq: u64,
    running: Vec<u64>,
    /// Waiters in arrival order; the promotion policy picks an index.
    queue: VecDeque<Waiter>,
    /// Queue wait of each *running* session (zero for direct admits);
    /// cleared when the session finishes.
    waits: HashMap<u64, Duration>,
    /// Replica endpoints each running session's scans opened on, by
    /// `(relation, endpoint)`; cleared when the session finishes.
    pins: HashMap<u64, Vec<(u16, String)>>,
    stats: SessionStats,
}

impl SessionTable {
    /// An empty table under `cfg` (a zero `max_concurrent` is clamped
    /// to 1 — a mediator that can run nothing is a configuration error,
    /// not a useful state).
    pub fn new(mut cfg: SessionConfig) -> SessionTable {
        cfg.max_concurrent = cfg.max_concurrent.max(1);
        SessionTable {
            cfg,
            next_id: 1,
            next_seq: 0,
            running: Vec::new(),
            queue: VecDeque::new(),
            waits: HashMap::new(),
            pins: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// The per-session memory partition: the global budget split evenly
    /// across the concurrency limit, so admission never has to claw
    /// memory back from a running query.
    pub fn partition_bytes(&self) -> u64 {
        self.cfg.memory_bytes / self.cfg.max_concurrent as u64
    }

    /// Decide a new submission's fate with neither a cost estimate nor a
    /// client id (cost 0 sorts first under SJF; ties resolve by arrival,
    /// so an all-default table behaves exactly like FIFO).
    pub fn submit(&mut self) -> Decision {
        self.submit_with(0, 0)
    }

    /// Decide a new submission's fate. `cost` is the caller's estimate of
    /// how long the query will run (opaque units — only the ordering
    /// matters); `client` identifies the submitter for fair-share aging.
    pub fn submit_with(&mut self, cost: u64, client: u64) -> Decision {
        let session = self.next_id;
        self.next_id += 1;
        if self.running.len() < self.cfg.max_concurrent {
            self.waits.insert(session, Duration::ZERO);
            self.admit(session);
            Decision::Admit {
                session,
                memory_bytes: self.partition_bytes(),
            }
        } else if self.queue.len() < self.cfg.backlog {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push_back(Waiter {
                session,
                cost,
                client,
                seq,
                skipped: 0,
                queued_at: Instant::now(),
            });
            self.stats.queued = self.queue.len();
            Decision::Queue {
                session,
                position: self.queue.len() - 1,
            }
        } else {
            self.stats.rejected += 1;
            Decision::Reject {
                reason: format!(
                    "overloaded: {} running, backlog of {} full",
                    self.running.len(),
                    self.cfg.backlog
                ),
            }
        }
    }

    fn admit(&mut self, session: u64) {
        self.running.push(session);
        self.stats.admitted += 1;
        self.stats.running = self.running.len();
        self.stats.max_active_seen = self.stats.max_active_seen.max(self.running.len());
        self.stats.mem_in_use = self.running.len() as u64 * self.partition_bytes();
        self.stats.mem_peak = self.stats.mem_peak.max(self.stats.mem_in_use);
    }

    /// Index of the waiter the policy promotes next, or `None` when the
    /// backlog is empty. The queue stays in arrival order; only the pick
    /// differs per policy.
    fn pick_next(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        let cheapest = || {
            self.queue
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| (w.cost, w.seq))
                .map(|(i, _)| i)
        };
        match self.cfg.policy {
            AdmissionPolicy::Fifo => Some(0),
            AdmissionPolicy::Sjf => cheapest(),
            AdmissionPolicy::Fair => self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, w)| w.skipped >= self.cfg.fair_aging)
                .min_by_key(|(_, w)| w.seq)
                .map(|(i, _)| i)
                .or_else(cheapest),
        }
    }

    /// True while `session` holds an execution slot (queued sessions wait
    /// on this turning true).
    pub fn is_running(&self, session: u64) -> bool {
        self.running.contains(&session)
    }

    /// A queued session's current backlog position in arrival order
    /// (0 = oldest), or `None` once it runs or was never queued.
    pub fn queue_position(&self, session: u64) -> Option<usize> {
        self.queue.iter().position(|w| w.session == session)
    }

    /// How long `session` waited in the backlog before admission — zero
    /// for direct admits, `None` once it finishes (or while still
    /// queued / never known).
    pub fn queue_wait(&self, session: u64) -> Option<Duration> {
        self.waits.get(&session).copied()
    }

    /// Record that `session`'s scan of relation `rel` opened on replica
    /// `endpoint`, so operators can ask the table where a running
    /// session's wrapper load actually landed.
    pub fn record_pin(&mut self, session: u64, rel: u16, endpoint: &str) {
        self.pins
            .entry(session)
            .or_default()
            .push((rel, endpoint.to_string()));
    }

    /// The replica pins recorded for `session` (empty once it finishes or
    /// if it never pinned).
    pub fn pins(&self, session: u64) -> &[(u16, String)] {
        self.pins.get(&session).map_or(&[], Vec::as_slice)
    }

    /// Release `session`'s slot and memory; promotes (and returns) the
    /// queued session the policy picks, which is running when this
    /// returns. Unknown or queued ids release nothing.
    pub fn finish(&mut self, session: u64) -> Option<u64> {
        self.pins.remove(&session);
        self.waits.remove(&session);
        let Some(i) = self.running.iter().position(|&s| s == session) else {
            // A queued client that gave up: just drop it from the backlog.
            if let Some(q) = self.queue_position(session) {
                self.queue.remove(q);
                self.stats.queued = self.queue.len();
            }
            return None;
        };
        self.running.remove(i);
        self.stats.running = self.running.len();
        self.stats.mem_in_use = self.running.len() as u64 * self.partition_bytes();
        let pick = self.pick_next()?;
        let waiter = self.queue.remove(pick).expect("picked index exists");
        // Every earlier arrival still waiting just lost a promotion to
        // the pick — that is the aging clock. Aging is per client: losing
        // to your own later submissions is self-inflicted and does not
        // count, so one client cannot age its way ahead by spamming
        // cheap queries.
        for w in self.queue.iter_mut() {
            if w.seq < waiter.seq && w.client != waiter.client {
                w.skipped += 1;
            }
        }
        self.waits
            .insert(waiter.session, waiter.queued_at.elapsed());
        self.admit(waiter.session);
        self.stats.queued = self.queue.len();
        Some(waiter.session)
    }

    /// Current counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The configuration the table was built with (after clamping).
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_concurrent: usize, backlog: usize, memory_bytes: u64) -> SessionConfig {
        SessionConfig {
            max_concurrent,
            backlog,
            memory_bytes,
            ..SessionConfig::default()
        }
    }

    fn admit(t: &mut SessionTable, cost: u64, client: u64) -> u64 {
        match t.submit_with(cost, client) {
            Decision::Admit { session, .. } => session,
            d => panic!("expected admit, got {d:?}"),
        }
    }

    fn park(t: &mut SessionTable, cost: u64, client: u64) -> u64 {
        match t.submit_with(cost, client) {
            Decision::Queue { session, .. } => session,
            d => panic!("expected queue, got {d:?}"),
        }
    }

    #[test]
    fn admits_up_to_the_limit_then_queues_then_rejects() {
        let mut t = SessionTable::new(cfg(2, 1, 100));
        let a = t.submit();
        let b = t.submit();
        assert!(matches!(
            a,
            Decision::Admit {
                memory_bytes: 50,
                ..
            }
        ));
        assert!(matches!(
            b,
            Decision::Admit {
                memory_bytes: 50,
                ..
            }
        ));
        let c = t.submit();
        assert!(matches!(c, Decision::Queue { position: 0, .. }), "{c:?}");
        let d = t.submit();
        assert!(matches!(d, Decision::Reject { .. }), "{d:?}");
        assert_eq!(t.stats().running, 2);
        assert_eq!(t.stats().queued, 1);
        assert_eq!(t.stats().rejected, 1);
    }

    #[test]
    fn memory_partition_is_budget_over_concurrency() {
        let t = SessionTable::new(cfg(4, 0, 64 << 20));
        assert_eq!(t.partition_bytes(), 16 << 20);
        let t = SessionTable::new(cfg(0, 0, 100)); // clamped to 1
        assert_eq!(t.partition_bytes(), 100);
        assert_eq!(t.config().max_concurrent, 1);
    }

    #[test]
    fn memory_in_use_tracks_running_sessions_and_never_exceeds_budget() {
        let mut t = SessionTable::new(cfg(3, 10, 90));
        let mut ids = Vec::new();
        for _ in 0..8 {
            match t.submit() {
                Decision::Admit { session, .. } | Decision::Queue { session, .. } => {
                    ids.push(session)
                }
                Decision::Reject { .. } => {}
            }
            assert!(t.stats().mem_in_use <= 90);
        }
        assert_eq!(t.stats().mem_in_use, 90, "3 running × 30");
        for id in ids {
            t.finish(id);
            assert!(t.stats().mem_in_use <= 90);
            assert_eq!(t.stats().mem_in_use, t.stats().running as u64 * 30);
        }
        assert_eq!(t.stats().running, 0);
        assert_eq!(t.stats().mem_in_use, 0);
        assert_eq!(t.stats().mem_peak, 90);
        assert_eq!(t.stats().max_active_seen, 3);
    }

    #[test]
    fn finish_promotes_the_oldest_queued_session() {
        let mut t = SessionTable::new(cfg(1, 3, 10));
        let a = match t.submit() {
            Decision::Admit { session, .. } => session,
            d => panic!("{d:?}"),
        };
        let b = match t.submit() {
            Decision::Queue { session, .. } => session,
            d => panic!("{d:?}"),
        };
        let c = match t.submit() {
            Decision::Queue { session, .. } => session,
            d => panic!("{d:?}"),
        };
        assert_eq!(t.queue_position(b), Some(0));
        assert_eq!(t.queue_position(c), Some(1));
        assert!(!t.is_running(b));
        assert_eq!(t.finish(a), Some(b), "FIFO: b before c");
        assert!(t.is_running(b));
        assert_eq!(t.queue_position(c), Some(0), "c moved up");
        assert_eq!(t.finish(b), Some(c));
        assert_eq!(t.finish(c), None, "backlog empty");
        assert_eq!(t.stats().admitted, 3);
    }

    #[test]
    fn fifo_ignores_cost_even_when_estimates_are_supplied() {
        let mut t = SessionTable::new(cfg(1, 3, 10));
        let a = admit(&mut t, 5, 0);
        let expensive = park(&mut t, 1_000, 1);
        let cheap = park(&mut t, 1, 2);
        assert_eq!(t.finish(a), Some(expensive), "FIFO promotes by arrival");
        assert_eq!(t.finish(expensive), Some(cheap));
    }

    #[test]
    fn sjf_promotes_cheapest_first_with_arrival_tiebreak() {
        let mut t = SessionTable::new(SessionConfig {
            policy: AdmissionPolicy::Sjf,
            ..cfg(1, 8, 10)
        });
        let a = admit(&mut t, 0, 0);
        let big = park(&mut t, 500, 1);
        let small_late = park(&mut t, 10, 2);
        let small_later = park(&mut t, 10, 3);
        let mid = park(&mut t, 100, 4);
        assert_eq!(
            t.finish(a),
            Some(small_late),
            "cheapest first; ties by arrival"
        );
        assert_eq!(t.finish(small_late), Some(small_later));
        assert_eq!(t.finish(small_later), Some(mid));
        assert_eq!(t.finish(mid), Some(big), "the long job runs last");
        assert_eq!(t.finish(big), None);
    }

    #[test]
    fn fair_ages_a_bypassed_job_to_the_front() {
        let mut t = SessionTable::new(SessionConfig {
            policy: AdmissionPolicy::Fair,
            fair_aging: 2,
            ..cfg(1, 8, 10)
        });
        let a = admit(&mut t, 0, 0);
        let big = park(&mut t, 1_000, 1); // arrives first, costs most
        let c1 = park(&mut t, 1, 2);
        let c2 = park(&mut t, 1, 2);
        let c3 = park(&mut t, 1, 2);
        let c4 = park(&mut t, 1, 2);
        // Two promotions go to cheaper jobs; each bypass ages `big`.
        assert_eq!(t.finish(a), Some(c1));
        assert_eq!(t.finish(c1), Some(c2));
        // Aged out: `big` now beats the remaining cheap jobs.
        assert_eq!(
            t.finish(c2),
            Some(big),
            "a job bypassed fair_aging times must be promoted next"
        );
        assert_eq!(t.finish(big), Some(c3));
        assert_eq!(t.finish(c3), Some(c4));
    }

    #[test]
    fn fair_starvation_is_bounded_under_a_stream_of_cheap_arrivals() {
        // The adversarial shape: cheap jobs keep arriving while one
        // expensive job waits. Under pure SJF it never runs; under Fair
        // it must run within fair_aging + 1 promotions.
        let aging = 3u32;
        let mut t = SessionTable::new(SessionConfig {
            policy: AdmissionPolicy::Fair,
            fair_aging: aging,
            ..cfg(1, 64, 10)
        });
        let mut running = admit(&mut t, 0, 0);
        let big = park(&mut t, u64::MAX, 1);
        let mut promotions = 0u32;
        loop {
            // A fresh cheap job arrives before every slot release.
            park(&mut t, 1, 2);
            let promoted = t.finish(running).expect("backlog is never empty");
            promotions += 1;
            if promoted == big {
                break;
            }
            running = promoted;
            assert!(
                promotions <= aging + 1,
                "fair must bound starvation at {aging} bypasses, \
                 still waiting after {promotions} promotions"
            );
        }
        assert_eq!(promotions, aging + 1);
    }

    #[test]
    fn fair_aging_ignores_bypasses_by_the_same_client() {
        // Client 1 submits a long job, then spams cheap ones. Its own
        // cheap jobs must not age the long job forward past client 2's.
        let mut t = SessionTable::new(SessionConfig {
            policy: AdmissionPolicy::Fair,
            fair_aging: 1,
            ..cfg(1, 8, 10)
        });
        let a = admit(&mut t, 0, 0);
        let big = park(&mut t, 1_000, 1);
        let own1 = park(&mut t, 1, 1);
        let own2 = park(&mut t, 1, 1);
        let other = park(&mut t, 5, 2);
        // Self-bypasses: big never ages from own1/own2 promotions.
        assert_eq!(t.finish(a), Some(own1));
        assert_eq!(t.finish(own1), Some(own2));
        // First foreign bypass reaches the aging bound (fair_aging = 1)…
        assert_eq!(t.finish(own2), Some(other));
        // …so big goes next.
        assert_eq!(t.finish(other), Some(big));
    }

    #[test]
    fn queue_wait_is_zero_for_direct_admits_and_recorded_for_promotions() {
        let mut t = SessionTable::new(cfg(1, 2, 10));
        let a = admit(&mut t, 0, 0);
        assert_eq!(t.queue_wait(a), Some(Duration::ZERO));
        let b = park(&mut t, 0, 0);
        assert_eq!(t.queue_wait(b), None, "still queued: wait unknown");
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.finish(a), Some(b));
        let wait = t.queue_wait(b).expect("promoted session has a wait");
        assert!(wait >= Duration::from_millis(2), "waited at least 2ms");
        assert_eq!(t.queue_wait(a), None, "cleared at finish");
        t.finish(b);
        assert_eq!(t.queue_wait(b), None, "cleared at finish");
    }

    #[test]
    fn finishing_a_queued_session_abandons_it_without_promotion() {
        let mut t = SessionTable::new(cfg(1, 2, 10));
        let _a = t.submit();
        let b = match t.submit() {
            Decision::Queue { session, .. } => session,
            d => panic!("{d:?}"),
        };
        assert_eq!(t.finish(b), None);
        assert_eq!(t.stats().queued, 0);
        assert_eq!(t.stats().running, 1, "the running session is untouched");
    }

    #[test]
    fn unknown_session_finish_is_a_no_op() {
        let mut t = SessionTable::new(cfg(1, 1, 10));
        assert_eq!(t.finish(999), None);
        assert_eq!(t.stats().running, 0);
    }

    #[test]
    fn replica_pins_live_with_the_session() {
        let mut t = SessionTable::new(cfg(2, 0, 10));
        let a = match t.submit() {
            Decision::Admit { session, .. } => session,
            d => panic!("{d:?}"),
        };
        assert!(t.pins(a).is_empty(), "nothing recorded yet");
        t.record_pin(a, 0, "127.0.0.1:7400");
        t.record_pin(a, 1, "127.0.0.1:7401");
        assert_eq!(
            t.pins(a),
            &[
                (0, "127.0.0.1:7400".to_string()),
                (1, "127.0.0.1:7401".to_string())
            ]
        );
        assert!(t.pins(999).is_empty(), "unknown session has no pins");
        t.finish(a);
        assert!(t.pins(a).is_empty(), "pins cleared at finish");
    }

    #[test]
    fn session_ids_are_unique_and_monotonic() {
        let mut t = SessionTable::new(cfg(2, 100, 10));
        let mut last = 0;
        for _ in 0..20 {
            let id = match t.submit() {
                Decision::Admit { session, .. } | Decision::Queue { session, .. } => session,
                d => panic!("{d:?}"),
            };
            assert!(id > last);
            last = id;
        }
    }

    #[test]
    fn admission_policy_parses_from_flag_values() {
        assert_eq!("fifo".parse(), Ok(AdmissionPolicy::Fifo));
        assert_eq!("sjf".parse(), Ok(AdmissionPolicy::Sjf));
        assert_eq!("fair".parse(), Ok(AdmissionPolicy::Fair));
        assert!("lifo".parse::<AdmissionPolicy>().is_err());
        assert_eq!(AdmissionPolicy::Sjf.to_string(), "sjf");
    }
}
