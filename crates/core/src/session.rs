//! Session admission for the concurrent mediator.
//!
//! The paper schedules *one* query well; a serving mediator must also
//! decide *which* queries run at all. [`SessionTable`] is that decision as
//! a sans-io state machine: up to `max_concurrent` sessions run at once,
//! each under an equal partition of the global memory budget (the §4
//! memory bound `M` becomes `M / max_concurrent` per query, so every
//! admitted query plans against a budget that cannot be revoked
//! mid-run); excess submissions wait in a bounded FIFO backlog and
//! anything past the backlog is rejected outright.
//!
//! The table has no threads and no sockets — the mediator server holds it
//! behind a mutex and drives it from connection handlers — so its
//! invariants are testable without a single byte of I/O:
//!
//! * running sessions never exceed `max_concurrent`;
//! * memory in use is exactly `running × partition` and never exceeds the
//!   global budget;
//! * the backlog is FIFO: a finishing session promotes the oldest queued
//!   submission.

use std::collections::{HashMap, VecDeque};

/// Admission-control configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Sessions allowed to execute simultaneously (min 1).
    pub max_concurrent: usize,
    /// Submissions allowed to wait beyond the running set.
    pub backlog: usize,
    /// Global memory budget partitioned across running sessions, bytes.
    pub memory_bytes: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_concurrent: 2,
            backlog: 8,
            memory_bytes: 64 << 20,
        }
    }
}

/// What the mediator should do with a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Run it now, under this memory partition.
    Admit {
        /// The new session's id.
        session: u64,
        /// The memory budget the session's query must plan within.
        memory_bytes: u64,
    },
    /// Hold it; it will be promoted when a slot frees.
    Queue {
        /// The new session's id.
        session: u64,
        /// Position in the backlog (0 = next to be promoted).
        position: usize,
    },
    /// Refuse it; the backlog is full.
    Reject {
        /// Why.
        reason: String,
    },
}

/// Load and accounting counters, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Sessions currently executing.
    pub running: usize,
    /// Sessions currently queued.
    pub queued: usize,
    /// Memory currently reserved by running sessions, bytes.
    pub mem_in_use: u64,
    /// High-water mark of `mem_in_use` over the table's lifetime.
    pub mem_peak: u64,
    /// Most sessions ever running at once.
    pub max_active_seen: usize,
    /// Total submissions admitted (directly or via promotion).
    pub admitted: u64,
    /// Total submissions rejected.
    pub rejected: u64,
}

/// The mediator's admission state: who runs, who waits, under how much
/// memory.
#[derive(Debug)]
pub struct SessionTable {
    cfg: SessionConfig,
    next_id: u64,
    running: Vec<u64>,
    queue: VecDeque<u64>,
    /// Replica endpoints each running session's scans opened on, by
    /// `(relation, endpoint)`; cleared when the session finishes.
    pins: HashMap<u64, Vec<(u16, String)>>,
    stats: SessionStats,
}

impl SessionTable {
    /// An empty table under `cfg` (a zero `max_concurrent` is clamped
    /// to 1 — a mediator that can run nothing is a configuration error,
    /// not a useful state).
    pub fn new(mut cfg: SessionConfig) -> SessionTable {
        cfg.max_concurrent = cfg.max_concurrent.max(1);
        SessionTable {
            cfg,
            next_id: 1,
            running: Vec::new(),
            queue: VecDeque::new(),
            pins: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// The per-session memory partition: the global budget split evenly
    /// across the concurrency limit, so admission never has to claw
    /// memory back from a running query.
    pub fn partition_bytes(&self) -> u64 {
        self.cfg.memory_bytes / self.cfg.max_concurrent as u64
    }

    /// Decide a new submission's fate.
    pub fn submit(&mut self) -> Decision {
        let session = self.next_id;
        self.next_id += 1;
        if self.running.len() < self.cfg.max_concurrent {
            self.admit(session);
            Decision::Admit {
                session,
                memory_bytes: self.partition_bytes(),
            }
        } else if self.queue.len() < self.cfg.backlog {
            self.queue.push_back(session);
            self.stats.queued = self.queue.len();
            Decision::Queue {
                session,
                position: self.queue.len() - 1,
            }
        } else {
            self.stats.rejected += 1;
            Decision::Reject {
                reason: format!(
                    "overloaded: {} running, backlog of {} full",
                    self.running.len(),
                    self.cfg.backlog
                ),
            }
        }
    }

    fn admit(&mut self, session: u64) {
        self.running.push(session);
        self.stats.admitted += 1;
        self.stats.running = self.running.len();
        self.stats.max_active_seen = self.stats.max_active_seen.max(self.running.len());
        self.stats.mem_in_use = self.running.len() as u64 * self.partition_bytes();
        self.stats.mem_peak = self.stats.mem_peak.max(self.stats.mem_in_use);
    }

    /// True while `session` holds an execution slot (queued sessions wait
    /// on this turning true).
    pub fn is_running(&self, session: u64) -> bool {
        self.running.contains(&session)
    }

    /// A queued session's current backlog position (0 = next), or `None`
    /// once it runs or was never queued.
    pub fn queue_position(&self, session: u64) -> Option<usize> {
        self.queue.iter().position(|&s| s == session)
    }

    /// Record that `session`'s scan of relation `rel` opened on replica
    /// `endpoint`, so operators can ask the table where a running
    /// session's wrapper load actually landed.
    pub fn record_pin(&mut self, session: u64, rel: u16, endpoint: &str) {
        self.pins
            .entry(session)
            .or_default()
            .push((rel, endpoint.to_string()));
    }

    /// The replica pins recorded for `session` (empty once it finishes or
    /// if it never pinned).
    pub fn pins(&self, session: u64) -> &[(u16, String)] {
        self.pins.get(&session).map_or(&[], Vec::as_slice)
    }

    /// Release `session`'s slot and memory; promotes (and returns) the
    /// oldest queued session, which is running when this returns. Unknown
    /// or queued ids release nothing.
    pub fn finish(&mut self, session: u64) -> Option<u64> {
        self.pins.remove(&session);
        let Some(i) = self.running.iter().position(|&s| s == session) else {
            // A queued client that gave up: just drop it from the backlog.
            if let Some(q) = self.queue_position(session) {
                self.queue.remove(q);
                self.stats.queued = self.queue.len();
            }
            return None;
        };
        self.running.remove(i);
        self.stats.running = self.running.len();
        self.stats.mem_in_use = self.running.len() as u64 * self.partition_bytes();
        let promoted = self.queue.pop_front();
        if let Some(next) = promoted {
            self.admit(next);
            self.stats.queued = self.queue.len();
        }
        promoted
    }

    /// Current counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The configuration the table was built with (after clamping).
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_concurrent: usize, backlog: usize, memory_bytes: u64) -> SessionConfig {
        SessionConfig {
            max_concurrent,
            backlog,
            memory_bytes,
        }
    }

    #[test]
    fn admits_up_to_the_limit_then_queues_then_rejects() {
        let mut t = SessionTable::new(cfg(2, 1, 100));
        let a = t.submit();
        let b = t.submit();
        assert!(matches!(
            a,
            Decision::Admit {
                memory_bytes: 50,
                ..
            }
        ));
        assert!(matches!(
            b,
            Decision::Admit {
                memory_bytes: 50,
                ..
            }
        ));
        let c = t.submit();
        assert!(matches!(c, Decision::Queue { position: 0, .. }), "{c:?}");
        let d = t.submit();
        assert!(matches!(d, Decision::Reject { .. }), "{d:?}");
        assert_eq!(t.stats().running, 2);
        assert_eq!(t.stats().queued, 1);
        assert_eq!(t.stats().rejected, 1);
    }

    #[test]
    fn memory_partition_is_budget_over_concurrency() {
        let t = SessionTable::new(cfg(4, 0, 64 << 20));
        assert_eq!(t.partition_bytes(), 16 << 20);
        let t = SessionTable::new(cfg(0, 0, 100)); // clamped to 1
        assert_eq!(t.partition_bytes(), 100);
        assert_eq!(t.config().max_concurrent, 1);
    }

    #[test]
    fn memory_in_use_tracks_running_sessions_and_never_exceeds_budget() {
        let mut t = SessionTable::new(cfg(3, 10, 90));
        let mut ids = Vec::new();
        for _ in 0..8 {
            match t.submit() {
                Decision::Admit { session, .. } | Decision::Queue { session, .. } => {
                    ids.push(session)
                }
                Decision::Reject { .. } => {}
            }
            assert!(t.stats().mem_in_use <= 90);
        }
        assert_eq!(t.stats().mem_in_use, 90, "3 running × 30");
        for id in ids {
            t.finish(id);
            assert!(t.stats().mem_in_use <= 90);
            assert_eq!(t.stats().mem_in_use, t.stats().running as u64 * 30);
        }
        assert_eq!(t.stats().running, 0);
        assert_eq!(t.stats().mem_in_use, 0);
        assert_eq!(t.stats().mem_peak, 90);
        assert_eq!(t.stats().max_active_seen, 3);
    }

    #[test]
    fn finish_promotes_the_oldest_queued_session() {
        let mut t = SessionTable::new(cfg(1, 3, 10));
        let a = match t.submit() {
            Decision::Admit { session, .. } => session,
            d => panic!("{d:?}"),
        };
        let b = match t.submit() {
            Decision::Queue { session, .. } => session,
            d => panic!("{d:?}"),
        };
        let c = match t.submit() {
            Decision::Queue { session, .. } => session,
            d => panic!("{d:?}"),
        };
        assert_eq!(t.queue_position(b), Some(0));
        assert_eq!(t.queue_position(c), Some(1));
        assert!(!t.is_running(b));
        assert_eq!(t.finish(a), Some(b), "FIFO: b before c");
        assert!(t.is_running(b));
        assert_eq!(t.queue_position(c), Some(0), "c moved up");
        assert_eq!(t.finish(b), Some(c));
        assert_eq!(t.finish(c), None, "backlog empty");
        assert_eq!(t.stats().admitted, 3);
    }

    #[test]
    fn finishing_a_queued_session_abandons_it_without_promotion() {
        let mut t = SessionTable::new(cfg(1, 2, 10));
        let _a = t.submit();
        let b = match t.submit() {
            Decision::Queue { session, .. } => session,
            d => panic!("{d:?}"),
        };
        assert_eq!(t.finish(b), None);
        assert_eq!(t.stats().queued, 0);
        assert_eq!(t.stats().running, 1, "the running session is untouched");
    }

    #[test]
    fn unknown_session_finish_is_a_no_op() {
        let mut t = SessionTable::new(cfg(1, 1, 10));
        assert_eq!(t.finish(999), None);
        assert_eq!(t.stats().running, 0);
    }

    #[test]
    fn replica_pins_live_with_the_session() {
        let mut t = SessionTable::new(cfg(2, 0, 10));
        let a = match t.submit() {
            Decision::Admit { session, .. } => session,
            d => panic!("{d:?}"),
        };
        assert!(t.pins(a).is_empty(), "nothing recorded yet");
        t.record_pin(a, 0, "127.0.0.1:7400");
        t.record_pin(a, 1, "127.0.0.1:7401");
        assert_eq!(
            t.pins(a),
            &[
                (0, "127.0.0.1:7400".to_string()),
                (1, "127.0.0.1:7401".to_string())
            ]
        );
        assert!(t.pins(999).is_empty(), "unknown session has no pins");
        t.finish(a);
        assert!(t.pins(a).is_empty(), "pins cleared at finish");
    }

    #[test]
    fn session_ids_are_unique_and_monotonic() {
        let mut t = SessionTable::new(cfg(2, 100, 10));
        let mut last = 0;
        for _ in 0..20 {
            let id = match t.submit() {
                Decision::Admit { session, .. } | Decision::Queue { session, .. } => session,
                d => panic!("{d:?}"),
            };
            assert!(id > last);
            last = id;
        }
    }
}
