//! The scheduler's decision metrics (§4.3–§4.4).

use dqs_sim::SimDuration;

/// Critical degree of a chain (§4.3):
/// `critical(p) = n_p · (w_p − c_p)` — the total CPU idle time if `p` ran
/// with no concurrent work. Positive values mean `p` is *critical*: its
/// data arrives slower than the processor consumes it.
///
/// Returned in signed nanoseconds so callers can order by it directly.
pub fn critical_degree(n: u64, w: SimDuration, c: SimDuration) -> i128 {
    let w = w.as_nanos() as i128;
    let c = c.as_nanos() as i128;
    n as i128 * (w - c)
}

/// True when the chain is critical (§4.3: `critical(p) > 0`).
pub fn is_critical(n: u64, w: SimDuration, c: SimDuration) -> bool {
    critical_degree(n, w, c) > 0
}

/// Benefit-materialization indicator (§4.4):
/// `bmi = w_p / (2 · IO_p)` — the profitability of degrading a critical
/// chain, comparing its per-tuple waiting time against writing the tuple
/// now and reading it back later.
pub fn bmi(w: SimDuration, io_per_tuple: SimDuration) -> f64 {
    let io = io_per_tuple.as_nanos();
    if io == 0 {
        return f64::INFINITY;
    }
    w.as_nanos() as f64 / (2.0 * io as f64)
}

/// The default benefit-materialization threshold: §5.1.3 fixes `bmt = 1`
/// for the single-query experiments.
pub const DEFAULT_BMT: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }

    #[test]
    fn critical_degree_matches_formula() {
        // 1000 tuples, 20 µs waiting, 5 µs processing: 1000 × 15 µs idle.
        assert_eq!(critical_degree(1_000, us(20), us(5)), 15_000_000);
        assert!(is_critical(1_000, us(20), us(5)));
    }

    #[test]
    fn fast_chain_is_not_critical() {
        // Processing slower than arrival: negative critical degree.
        assert!(critical_degree(1_000, us(5), us(20)) < 0);
        assert!(!is_critical(1_000, us(5), us(20)));
    }

    #[test]
    fn zero_tuples_never_critical() {
        assert_eq!(critical_degree(0, us(100), us(1)), 0);
        assert!(!is_critical(0, us(100), us(1)));
    }

    #[test]
    fn bmi_profitable_iff_wait_exceeds_twice_io() {
        // w = 20 µs, IO = 6.7 µs → bmi ≈ 1.49 > 1: profitable (the §5.2
        // observation that DSE gains ~40 % even at w_min).
        let b = bmi(us(20), SimDuration::from_nanos(6_693));
        assert!((b - 1.494).abs() < 0.01, "{b}");
        // w = 10 µs, IO = 6.7 µs → bmi ≈ 0.75 < 1: not profitable.
        assert!(bmi(us(10), SimDuration::from_nanos(6_693)) < 1.0);
        // Exactly 2·IO → bmi = 1.
        assert!((bmi(us(10), us(5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bmi_guards_zero_io() {
        assert!(bmi(us(1), SimDuration::ZERO).is_infinite());
    }
}
