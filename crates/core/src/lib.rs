//! # dqs-core — dynamic query scheduling for data integration systems
//!
//! The primary contribution of Bouganim, Fabret, Mohan & Valduriez,
//! *Dynamic Query Scheduling in Data Integration Systems* (ICDE 2000),
//! reproduced on the simulated platform of the sibling crates:
//!
//! * [`metrics`] — the scheduler's decision metrics: the critical degree
//!   `critical(p) = n_p (w_p − c_p)` (§4.3) and the benefit-materialization
//!   indicator `bmi = w_p / (2·IO_p)` with its threshold `bmt` (§4.4);
//! * [`dqs::DsePolicy`] — the Dynamic Scheduling Execution strategy: at
//!   every interruption event it recomputes a scheduling plan — degrading
//!   blocked critical chains into MF/CF pairs, ordering fragments by
//!   critical degree, and fitting the plan into the memory budget (§4.5);
//! * [`dqo`] — the dynamic optimizer's memory-overflow module: the §4.2
//!   chain split that inserts a materialization at the highest possible
//!   point;
//! * [`lwb`](mod@lwb) — the analytic response-time lower bound of §5.1.2;
//! * [`session`] — admission control for the concurrent mediator: who
//!   runs, who waits (and under which backlog policy — FIFO, shortest-job
//!   -first, or fair SJF with aging), and under what share of the global
//!   memory budget;
//! * [`hist`] — shared latency statistics: exact percentiles for bench
//!   reports and a log-bucketed histogram for serving-side gauges.
//!
//! # Quick start
//!
//! ```
//! use dqs_core::DsePolicy;
//! use dqs_exec::{run_workload, Workload};
//!
//! // The paper's Figure 5 experiment plan, all wrappers at w_min.
//! let (workload, _fig5) = Workload::fig5();
//! let metrics = run_workload(&workload, DsePolicy::new());
//! assert_eq!(metrics.output_tuples, 90_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dqo;
pub mod dqs;
pub mod hist;
pub mod lwb;
pub mod metrics;
pub mod session;

pub use dqs::{DseConfig, DsePolicy};
pub use hist::LatencyHistogram;
pub use lwb::{lwb, Lwb};
pub use metrics::{bmi, critical_degree, is_critical, DEFAULT_BMT};
pub use session::{AdmissionPolicy, Decision, SessionConfig, SessionStats, SessionTable};
