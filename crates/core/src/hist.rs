//! Shared latency statistics: exact percentiles over sorted samples and a
//! log-bucketed histogram for cumulative, long-lived distributions.
//!
//! Three consumers previously carried private copies of this arithmetic —
//! the C10K load generator's `percentile`, the bench experiments' `median`
//! and now the workload replay harness — so the definitions live here
//! once. The exact helpers operate on full sample vectors (right for a
//! bench run that holds every latency in memory); [`LatencyHistogram`]
//! trades exactness for O(1) memory and O(1) record, which is what a
//! serving mediator needs to track queue-wait over millions of sessions.

/// Exact percentile on an ascending-sorted slice: the smallest sample at
/// or above quantile `q` of the distribution (nearest-rank). Empty input
/// yields 0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Exact median; sorts `xs` in place. Panics on an empty slice.
pub fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Number of power-of-two buckets. Bucket `i` holds samples in
/// `[2^i, 2^(i+1))` µs (bucket 0 additionally holds 0), so 40 buckets
/// cover up to ~2^40 µs ≈ 12.7 days — more than any session waits.
const BUCKETS: usize = 40;

/// A log-bucketed latency histogram over microsecond samples.
///
/// Buckets are powers of two, so `record` is a branch-free bit scan and
/// the whole structure is a few hundred bytes regardless of how many
/// samples it absorbs. Percentiles are read back as the *upper bound* of
/// the bucket containing the requested rank — an overestimate by at most
/// 2x, which is the usual contract for log-bucketed histograms
/// (HdrHistogram-style observability, not bench-grade exactness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Bucket index for a sample: `floor(log2(us))`, clamped to the table.
    fn bucket(us: u64) -> usize {
        ((63 - us.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Absorb one sample, in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest sample recorded, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper bound of the bucket holding quantile `q` (nearest-rank), in
    /// microseconds; 0 when empty. The true sample lies within a factor
    /// of two below the returned value (and never above `max_us`).
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (2u64 << i).min(self.max_us.max(1));
            }
        }
        self.max_us
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The non-empty buckets as `(upper_bound_us, count)` pairs — the
    /// export shape for metrics sinks.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (2u64 << i, n))
            .collect()
    }

    /// Compact JSON rendering: cumulative stats plus the sparse buckets.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(le, n)| format!("[{le},{n}]"))
            .collect();
        format!(
            "{{\"count\":{},\"mean_us\":{:.1},\"max_us\":{},\"p50_us\":{},\
             \"p99_us\":{},\"buckets\":[{}]}}",
            self.count,
            self.mean_us(),
            self.max_us,
            self.percentile_us(0.50),
            self.percentile_us(0.99),
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let ms: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile(&ms, 0.50), 500.0);
        assert_eq!(percentile(&ms, 0.99), 990.0);
        assert_eq!(percentile(&ms, 0.999), 999.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.999), 7.0);
    }

    #[test]
    fn median_is_the_middle_sample() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 3.0);
        assert_eq!(median(&mut [9.0]), 9.0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = LatencyHistogram::new();
        for us in [0, 1, 2, 3, 4, 1000, 1024, u64::MAX] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_us(), u64::MAX);
        // 0 and 1 share bucket 0; 2 and 3 bucket 1; 4 bucket 2; 1000
        // bucket 9; 1024 bucket 10; MAX clamps into the last bucket.
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets[0], (2, 2));
        assert_eq!(buckets[1], (4, 2));
        assert_eq!(buckets[2], (8, 1));
    }

    #[test]
    fn histogram_percentile_bounds_the_true_value() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record_us(us);
        }
        let p50 = h.percentile_us(0.50);
        assert!((5_000..=10_000).contains(&p50), "p50 {p50}");
        let p99 = h.percentile_us(0.99);
        assert!((9_900..=16_384).contains(&p99), "p99 {p99}");
        assert!(h.percentile_us(1.0) >= p99);
        assert_eq!(LatencyHistogram::new().percentile_us(0.99), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for us in [10, 20, 30] {
            a.record_us(us);
        }
        for us in [40_000, 50_000] {
            b.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max_us(), 50_000);
        let mut whole = LatencyHistogram::new();
        for us in [10, 20, 30, 40_000, 50_000] {
            whole.record_us(us);
        }
        assert_eq!(a, whole);
    }

    #[test]
    fn histogram_json_is_parseable() {
        let mut h = LatencyHistogram::new();
        h.record_us(123);
        h.record_us(456_789);
        let v = dqs_exec::json::parse(&h.to_json()).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("count").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(get("max_us").and_then(|v| v.as_u64()), Some(456_789));
    }
}
