//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`].
//!
//! The build environment has no crates.io access, so the ChaCha8 generator
//! is implemented here from the ChaCha specification (Bernstein 2008, 8
//! rounds). The keystream is a pure function of the 32-byte key — exactly
//! the property the simulator's bit-reproducibility rests on. The word
//! stream is *not* byte-for-byte identical to the upstream `rand_chacha`
//! crate (which interleaves a block counter differently); nothing in this
//! workspace compares against upstream streams, only against itself.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic ChaCha8 random number generator.
///
/// Cloning copies the full stream position: a clone replays exactly the
/// same remaining output as the original.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12 of each block).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); words 14..15 are the
    /// nonce, fixed to zero.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&Self::SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;
        let input = x;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.block = x;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha8_known_answer() {
        // ChaCha8 test vector: all-zero key, all-zero nonce, block 0.
        // Keystream from the reference implementation (first four words).
        let rng = &mut ChaCha8Rng::from_seed([0u8; 32]);
        let words: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(
            words,
            vec![0x2fef003e, 0xd6405f89, 0xe8b85b7f, 0xa1a5091f],
            "keystream must match the ChaCha8 reference vector"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn clone_replays_the_remaining_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn blocks_advance() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(first, second, "successive blocks must differ");
    }
}
