//! # dqs-adapt — the adaptive-scheduling observatory
//!
//! Online source-permutation scheduling (SPM, after "Online Query
//! Scheduling on Source Permutation for Big Data Integration", arXiv
//! 1503.08400) reorders *which source to drain next* from delivery rates
//! observed while the query runs. This crate holds the two sans-io pieces
//! the `SpmPolicy` strategy composes:
//!
//! * [`RateObserver`] — per-logical-source EWMA delivery rate plus a
//!   burstiness (coefficient-of-variation) estimate, fed from cumulative
//!   batch-arrival samples. Samples carry explicit timestamps, so the
//!   observer runs identically under the discrete-event simulator and the
//!   wall-clock driver — it never touches a clock.
//! * [`PermutationPlanner`] — maintains a drain-order permutation over the
//!   not-yet-exhausted sources and re-permutes only when an observed rate
//!   crosses a hysteresis threshold: greedy fastest-first, with the SPM
//!   paper's optimistic lower bound on remaining retrieval time as the
//!   tie-break while rates are still unmeasured.
//!
//! Neither type knows about relations, fragments, or engines; sources are
//! dense `usize` indices and time is nanoseconds on any monotonic origin.
//! Every decision is a pure function of the fed samples, which is what
//! makes the policy's behaviour unit-testable (convergence, no-thrash)
//! and bit-reproducible across drivers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Default EWMA weight for folding instantaneous rate samples. Planner
/// samples are coarser than per-tuple arrivals (one per planning phase),
/// so the weight is heavier than a per-arrival alpha would be. This is
/// the weight of a sample spanning exactly [`RATE_WINDOW_TAU_NANOS`];
/// see [`RateObserver::observe`] for how other window lengths scale.
pub const DEFAULT_RATE_OBSERVER_ALPHA: f64 = 0.3;

/// Reference window length for rate folding, nanoseconds (10 ms).
///
/// Observation windows are whatever the planning cadence makes them —
/// 100 µs between back-to-back replans, over a second when flow control
/// silences every interrupt source. Folding each window with a fixed
/// per-sample weight would let whichever windows are *most frequent*
/// dominate, and replans cluster around arrivals: a bursty source would
/// be sampled almost exclusively inside its bursts and scored at its
/// within-burst rate forever. Scaling the weight by window length makes
/// the EWMA approximate a *time-weighted* mean instead — one
/// pause-spanning window outweighs the dozens of tiny burst windows it
/// contains, which is exactly what lets a pause drag the estimate down.
pub const RATE_WINDOW_TAU_NANOS: f64 = 10_000_000.0;

/// Default hysteresis: a source must be observed at least this much
/// (relative) faster than the one ahead of it before the permutation
/// swaps them. 25% keeps oscillating estimates from thrashing the drain
/// order while still reacting to genuine rate crossings within a few
/// samples.
pub const DEFAULT_HYSTERESIS: f64 = 0.25;

/// How many tuples a silent window must have been *expected* to carry (at
/// the current rate estimate) before the silence is folded as a zero-rate
/// sample. Below this, zero progress is indistinguishable from sampling
/// between two arrivals and is ignored; above it, the source has genuinely
/// gone quiet (a burst pause, a stall) and the estimate must decay.
pub const SILENCE_TUPLES: f64 = 4.0;

/// One cumulative delivery observation for a source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Observation time in nanoseconds (any monotonic origin).
    pub at_nanos: u64,
    /// Tuples delivered by the source so far (cumulative, monotone).
    pub tuples: u64,
    /// A finer-grained inter-arrival gap estimate in nanoseconds, when the
    /// caller has one (the CM's per-arrival EWMA). Used as the
    /// instantaneous rate when the sample window shows no progress to
    /// divide and the silence is too short to be significant.
    pub gap_hint_nanos: Option<f64>,
    /// True while flow control (the window protocol) has the source
    /// suspended: a silent window then measures our consumption, not the
    /// source's speed, so the delta must not be folded as a rate.
    pub flow_controlled: bool,
}

/// A source's current rate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimate {
    /// EWMA delivery rate in tuples/second.
    pub rate: f64,
    /// Burstiness: the coefficient of variation (EWMA stddev over mean)
    /// of the instantaneous rate samples. ~0 for a steady source; grows
    /// past ~0.5 when delivery alternates bursts and silences.
    pub burstiness: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct SourceState {
    /// Last accepted sample (time, cumulative tuples).
    last: Option<(u64, u64)>,
    /// EWMA rate in tuples/sec.
    rate: Option<f64>,
    /// EWMA variance of the instantaneous samples (RiskMetrics form).
    var: f64,
    /// Instantaneous samples folded so far.
    samples: u64,
}

/// Per-source EWMA delivery rate and burstiness, fed from cumulative
/// batch-arrival samples.
#[derive(Debug)]
pub struct RateObserver {
    alpha: f64,
    sources: Vec<SourceState>,
}

impl RateObserver {
    /// An observer over `n` sources with the default smoothing weight.
    pub fn new(n: usize) -> RateObserver {
        RateObserver::with_alpha(n, DEFAULT_RATE_OBSERVER_ALPHA)
    }

    /// An observer over `n` sources with EWMA weight `alpha` (0..=1).
    ///
    /// # Panics
    /// Panics unless `0.0 < alpha <= 1.0`.
    pub fn with_alpha(n: usize, alpha: f64) -> RateObserver {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        RateObserver {
            alpha,
            sources: vec![SourceState::default(); n],
        }
    }

    /// Number of tracked sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no sources are tracked.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Fold one sample for source `src`. Returns the updated estimate when
    /// the sample yielded an instantaneous rate (progress over a positive
    /// window, or a usable gap hint), `None` when it only advanced the
    /// bookkeeping.
    pub fn observe(&mut self, src: usize, s: RateSample) -> Option<RateEstimate> {
        let state = &mut self.sources[src];
        let prev = state.last;
        // A flow-controlled window still advances the cursor: the next
        // delta must span only post-resume delivery.
        state.last = Some((s.at_nanos, s.tuples));
        let inst = match prev {
            Some((t0, n0)) if s.at_nanos > t0 && s.tuples > n0 && !s.flow_controlled => {
                Some((s.tuples - n0) as f64 * 1e9 / (s.at_nanos - t0) as f64)
            }
            // Zero progress over a window long enough that the current
            // estimate predicted several tuples: the source has genuinely
            // gone quiet (a burst pause), so the estimate must decay. A
            // shorter silent window is just sampling between two arrivals.
            Some((t0, n0)) if s.at_nanos > t0 && s.tuples == n0 && !s.flow_controlled => {
                let expected = state.rate.unwrap_or(0.0) * (s.at_nanos - t0) as f64 / 1e9;
                if expected >= SILENCE_TUPLES {
                    Some(0.0)
                } else {
                    gap_to_rate(s.gap_hint_nanos)
                }
            }
            // Flow-controlled (or a non-advancing clock): fall back to the
            // caller's fine-grained gap.
            Some(_) => gap_to_rate(s.gap_hint_nanos),
            // Very first sample: only a gap hint can seed the estimate.
            None => gap_to_rate(s.gap_hint_nanos),
        }?;
        // Weight the mean by window length (see RATE_WINDOW_TAU_NANOS):
        // a = (α·dt/τ) / (α·dt/τ + (1-α)) — equals α at dt = τ, → 1 for
        // long windows, → 0 for tiny ones; pure arithmetic so it folds
        // bit-identically everywhere. The variance keeps the per-sample
        // α: burstiness is about the *dispersion* of instantaneous
        // samples, not their time shares.
        let a_mean = match prev {
            Some((t0, _)) if s.at_nanos > t0 => {
                let x = self.alpha * (s.at_nanos - t0) as f64 / RATE_WINDOW_TAU_NANOS;
                x / (x + (1.0 - self.alpha))
            }
            _ => self.alpha,
        };
        match state.rate {
            None => {
                state.rate = Some(inst);
                state.var = 0.0;
            }
            Some(mean) => {
                let dev = inst - mean;
                state.rate = Some(mean + a_mean * dev);
                state.var = (1.0 - self.alpha) * (state.var + self.alpha * dev * dev);
            }
        }
        state.samples += 1;
        Some(RateEstimate {
            rate: state.rate.expect("just set"),
            burstiness: self.burstiness(src).unwrap_or(0.0),
        })
    }

    /// The source's EWMA rate in tuples/sec, if anything was observed.
    pub fn rate(&self, src: usize) -> Option<f64> {
        self.sources[src].rate
    }

    /// The source's burstiness (coefficient of variation), once at least
    /// two instantaneous samples were folded.
    pub fn burstiness(&self, src: usize) -> Option<f64> {
        let s = &self.sources[src];
        match s.rate {
            Some(mean) if s.samples >= 2 && mean > 0.0 => Some(s.var.sqrt() / mean),
            _ => None,
        }
    }

    /// Instantaneous samples folded for `src` so far.
    pub fn samples(&self, src: usize) -> u64 {
        self.sources[src].samples
    }
}

fn gap_to_rate(gap_nanos: Option<f64>) -> Option<f64> {
    match gap_nanos {
        Some(g) if g > 0.0 => Some(1e9 / g),
        _ => None,
    }
}

/// One not-yet-exhausted source presented to the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceScore {
    /// Dense source index (the observer's index space).
    pub src: usize,
    /// Observed delivery rate in tuples/sec; `None` until measured.
    pub rate: Option<f64>,
    /// Optimistic lower bound on the source's remaining retrieval time in
    /// nanoseconds (remaining tuples × the platform's minimum per-tuple
    /// gap) — the SPM paper's tie-break while rates are unmeasured.
    pub lower_bound_nanos: u64,
}

/// What a [`PermutationPlanner::replan`] call did to the drain order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replan {
    /// First call: the initial permutation was established (not counted
    /// as a re-permutation).
    Initial,
    /// The relative order of surviving sources changed — a mid-query
    /// re-permutation.
    Permuted,
    /// Order unchanged (exhausted sources dropping off does not count).
    Unchanged,
}

/// Maintains the drain-order permutation over live sources.
///
/// Greedy fastest-first: a source moves ahead of its predecessor only
/// when its observed rate exceeds the predecessor's by the hysteresis
/// margin; while both are unmeasured, the smaller optimistic lower bound
/// wins (by the same margin, so a drifting bound cannot thrash either).
/// Reordering is a bubble pass to fixpoint, so each `replan` is
/// deterministic in its inputs and terminates in at most n passes.
#[derive(Debug)]
pub struct PermutationPlanner {
    hysteresis: f64,
    order: Vec<usize>,
    planned: bool,
    permutations: u64,
}

impl PermutationPlanner {
    /// A planner with the default hysteresis.
    pub fn new() -> PermutationPlanner {
        PermutationPlanner::with_hysteresis(DEFAULT_HYSTERESIS)
    }

    /// A planner that re-permutes when a rate advantage exceeds
    /// `hysteresis` (relative, must be non-negative).
    pub fn with_hysteresis(hysteresis: f64) -> PermutationPlanner {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        PermutationPlanner {
            hysteresis,
            order: Vec::new(),
            planned: false,
            permutations: 0,
        }
    }

    /// Recompute the permutation over `live` (the not-yet-exhausted
    /// sources, in any order). Exhausted sources fall out; new sources
    /// join at the back before sorting.
    pub fn replan(&mut self, live: &[SourceScore]) -> Replan {
        let find = |src: usize| live.iter().find(|s| s.src == src);
        let mut order: Vec<usize> = self
            .order
            .iter()
            .copied()
            .filter(|&s| find(s).is_some())
            .collect();
        for s in live {
            if !order.contains(&s.src) {
                order.push(s.src);
            }
        }
        let baseline = order.clone();
        // Bubble to fixpoint: only margin-crossing advantages swap.
        loop {
            let mut swapped = false;
            for i in 0..order.len().saturating_sub(1) {
                let ahead = find(order[i]).expect("filtered to live");
                let behind = find(order[i + 1]).expect("filtered to live");
                if self.beats(behind, ahead) {
                    order.swap(i, i + 1);
                    swapped = true;
                }
            }
            if !swapped {
                break;
            }
        }
        let changed = order != baseline;
        self.order = order;
        if !self.planned {
            self.planned = true;
            return Replan::Initial;
        }
        if changed {
            self.permutations += 1;
            Replan::Permuted
        } else {
            Replan::Unchanged
        }
    }

    /// True when `b` should be drained before `a`.
    fn beats(&self, b: &SourceScore, a: &SourceScore) -> bool {
        let h = 1.0 + self.hysteresis;
        match (b.rate, a.rate) {
            (Some(rb), Some(ra)) => rb > ra * h,
            // A measured source outranks an unmeasured one: drain what is
            // provably flowing.
            (Some(rb), None) => rb > 0.0,
            (None, Some(_)) => false,
            // Both unmeasured: the optimistic lower bound decides, with
            // the same margin so shrinking bounds cannot thrash.
            (None, None) => (b.lower_bound_nanos as f64) * h < a.lower_bound_nanos as f64,
        }
    }

    /// The current drain order, fastest first.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Mid-query re-permutations performed (initial ordering excluded).
    pub fn permutations(&self) -> u64 {
        self.permutations
    }
}

impl Default for PermutationPlanner {
    fn default() -> Self {
        PermutationPlanner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn steady(obs: &mut RateObserver, src: usize, tps: u64, secs: u64) {
        for t in 1..=secs {
            obs.observe(
                src,
                RateSample {
                    at_nanos: t * SEC,
                    tuples: t * tps,
                    gap_hint_nanos: None,
                    flow_controlled: false,
                },
            );
        }
    }

    #[test]
    fn observer_converges_to_a_steady_rate() {
        let mut obs = RateObserver::new(1);
        steady(&mut obs, 0, 5_000, 20);
        let rate = obs.rate(0).unwrap();
        assert!(
            (rate - 5_000.0).abs() < 1.0,
            "steady 5000 t/s must converge, got {rate}"
        );
        let cv = obs.burstiness(0).unwrap();
        assert!(cv < 0.01, "steady delivery has ~zero burstiness, got {cv}");
    }

    #[test]
    fn observer_tracks_a_rate_crossing() {
        let mut obs = RateObserver::new(1);
        steady(&mut obs, 0, 1_000, 10);
        // Source speeds up 10x: the EWMA must cross within a few samples.
        let mut tuples = 10 * 1_000;
        for t in 11..=18 {
            tuples += 10_000;
            obs.observe(
                0,
                RateSample {
                    at_nanos: t * SEC,
                    tuples,
                    gap_hint_nanos: None,
                    flow_controlled: false,
                },
            );
        }
        let rate = obs.rate(0).unwrap();
        assert!(rate > 9_000.0, "EWMA must follow the speedup, got {rate}");
    }

    #[test]
    fn bursty_delivery_scores_high_burstiness() {
        let mut obs = RateObserver::new(2);
        steady(&mut obs, 0, 2_000, 30);
        // Source 1 alternates 100 t/s and 10_000 t/s windows around a
        // similar mean.
        let mut tuples = 0;
        for t in 1..=30 {
            tuples += if t % 2 == 0 { 100 } else { 10_000 };
            obs.observe(
                1,
                RateSample {
                    at_nanos: t * SEC,
                    tuples,
                    gap_hint_nanos: None,
                    flow_controlled: false,
                },
            );
        }
        let steady_cv = obs.burstiness(0).unwrap();
        let bursty_cv = obs.burstiness(1).unwrap();
        assert!(
            bursty_cv > 0.5 && bursty_cv > 10.0 * steady_cv,
            "alternating delivery must dominate: steady {steady_cv}, bursty {bursty_cv}"
        );
    }

    #[test]
    fn flow_controlled_windows_do_not_poison_the_rate() {
        let mut obs = RateObserver::new(1);
        steady(&mut obs, 0, 8_000, 10);
        // The window protocol suspends the source for 5 silent windows;
        // the observer must keep its 8000 t/s estimate.
        for t in 11..=15 {
            let out = obs.observe(
                0,
                RateSample {
                    at_nanos: t * SEC,
                    tuples: 10 * 8_000,
                    gap_hint_nanos: None,
                    flow_controlled: true,
                },
            );
            assert!(out.is_none(), "suspended windows yield no sample");
        }
        let rate = obs.rate(0).unwrap();
        assert!(
            (rate - 8_000.0).abs() < 1.0,
            "suspension must not drag the rate down, got {rate}"
        );
    }

    #[test]
    fn significant_silence_decays_the_estimate() {
        let mut obs = RateObserver::new(1);
        steady(&mut obs, 0, 8_000, 10);
        // The source pauses (not flow-controlled): whole seconds of
        // silence against an 8000 t/s estimate are overwhelming evidence
        // of a stop, and the estimate must decay toward zero.
        let mut zero_folds = 0;
        for t in 11..=15 {
            let out = obs.observe(
                0,
                RateSample {
                    at_nanos: t * SEC,
                    tuples: 10 * 8_000,
                    gap_hint_nanos: None,
                    flow_controlled: false,
                },
            );
            // Once the estimate has decayed to ~0, further silence stops
            // being "significant" — that is the threshold working, not a
            // missed sample.
            zero_folds += out.is_some() as u32;
        }
        assert!(zero_folds >= 1, "significant silence must fold");
        let rate = obs.rate(0).unwrap();
        assert!(
            rate < 2_000.0,
            "a paused source's estimate must decay, got {rate}"
        );
    }

    #[test]
    fn brief_silence_between_arrivals_is_ignored() {
        let mut obs = RateObserver::new(1);
        steady(&mut obs, 0, 8_000, 10);
        // A 100 µs silent window at 8000 t/s expects < 1 tuple: that is
        // sampling between two arrivals, not a pause.
        let out = obs.observe(
            0,
            RateSample {
                at_nanos: 10 * SEC + 100_000,
                tuples: 10 * 8_000,
                gap_hint_nanos: None,
                flow_controlled: false,
            },
        );
        assert!(out.is_none(), "sub-threshold silence yields no sample");
        let rate = obs.rate(0).unwrap();
        assert!(
            (rate - 8_000.0).abs() < 1.0,
            "estimate must hold, got {rate}"
        );
    }

    #[test]
    fn gap_hint_seeds_an_unmeasured_source() {
        let mut obs = RateObserver::new(1);
        let est = obs
            .observe(
                0,
                RateSample {
                    at_nanos: SEC,
                    tuples: 0,
                    gap_hint_nanos: Some(200_000.0), // 200 µs gap = 5000 t/s
                    flow_controlled: false,
                },
            )
            .expect("gap hint yields an estimate");
        assert!((est.rate - 5_000.0).abs() < 1.0, "got {}", est.rate);
    }

    #[test]
    fn zero_window_and_zero_gap_are_ignored() {
        let mut obs = RateObserver::new(1);
        let s = RateSample {
            at_nanos: SEC,
            tuples: 10,
            gap_hint_nanos: Some(0.0),
            flow_controlled: false,
        };
        assert!(obs.observe(0, s).is_none());
        // Same timestamp again: no window to divide.
        assert!(obs.observe(0, s).is_none());
        assert_eq!(obs.rate(0), None);
    }

    fn score(src: usize, rate: Option<f64>, lb: u64) -> SourceScore {
        SourceScore {
            src,
            rate,
            lower_bound_nanos: lb,
        }
    }

    #[test]
    fn initial_permutation_orders_by_lower_bound() {
        let mut p = PermutationPlanner::new();
        let r = p.replan(&[
            score(0, None, 9 * SEC),
            score(1, None, SEC),
            score(2, None, 4 * SEC),
        ]);
        assert_eq!(r, Replan::Initial);
        assert_eq!(p.order(), &[1, 2, 0], "cheapest remaining work first");
        assert_eq!(p.permutations(), 0, "the initial ordering is not counted");
    }

    #[test]
    fn rate_crossing_permutes_exactly_once() {
        let mut p = PermutationPlanner::new();
        p.replan(&[score(0, Some(1_000.0), SEC), score(1, Some(500.0), SEC)]);
        assert_eq!(p.order(), &[0, 1]);
        // Source 1 becomes decisively faster.
        let r = p.replan(&[score(0, Some(1_000.0), SEC), score(1, Some(2_000.0), SEC)]);
        assert_eq!(r, Replan::Permuted);
        assert_eq!(p.order(), &[1, 0]);
        // Same rates again: stable.
        let r = p.replan(&[score(0, Some(1_000.0), SEC), score(1, Some(2_000.0), SEC)]);
        assert_eq!(r, Replan::Unchanged);
        assert_eq!(p.permutations(), 1);
    }

    #[test]
    fn oscillation_inside_the_hysteresis_band_never_thrashes() {
        let mut p = PermutationPlanner::with_hysteresis(0.25);
        p.replan(&[score(0, Some(1_000.0), SEC), score(1, Some(990.0), SEC)]);
        let initial = p.order().to_vec();
        // Rates wobble ±10% — inside the 25% band — for many rounds.
        for round in 0..50 {
            let (a, b) = if round % 2 == 0 {
                (1_100.0, 900.0)
            } else {
                (900.0, 1_100.0)
            };
            let r = p.replan(&[score(0, Some(a), SEC), score(1, Some(b), SEC)]);
            assert_eq!(r, Replan::Unchanged, "round {round} must not permute");
        }
        assert_eq!(p.order(), initial.as_slice());
        assert_eq!(p.permutations(), 0);
    }

    #[test]
    fn measured_sources_outrank_unmeasured_ones() {
        let mut p = PermutationPlanner::new();
        p.replan(&[score(0, None, SEC), score(1, None, 2 * SEC)]);
        assert_eq!(p.order(), &[0, 1]);
        let r = p.replan(&[score(0, None, SEC), score(1, Some(100.0), 2 * SEC)]);
        assert_eq!(r, Replan::Permuted);
        assert_eq!(p.order(), &[1, 0], "provably flowing data drains first");
    }

    #[test]
    fn exhausted_sources_drop_without_counting_as_permutation() {
        let mut p = PermutationPlanner::new();
        p.replan(&[
            score(0, Some(3_000.0), SEC),
            score(1, Some(2_000.0), SEC),
            score(2, Some(1_000.0), SEC),
        ]);
        assert_eq!(p.order(), &[0, 1, 2]);
        let r = p.replan(&[score(0, Some(3_000.0), SEC), score(2, Some(1_000.0), SEC)]);
        assert_eq!(r, Replan::Unchanged, "a drop is exhaustion, not reordering");
        assert_eq!(p.order(), &[0, 2]);
    }

    #[test]
    fn many_sources_sort_fully_in_one_replan() {
        let mut p = PermutationPlanner::with_hysteresis(0.1);
        // Geometric spacing keeps every adjacent pair outside the band
        // (1.5x apart vs a 1.1x threshold), so the sort completes fully.
        let live: Vec<SourceScore> = (0..16)
            .map(|i| score(i, Some(100.0 * 1.5_f64.powi(i as i32)), SEC))
            .collect();
        p.replan(&live);
        let want: Vec<usize> = (0..16).rev().collect();
        assert_eq!(p.order(), want.as_slice(), "fastest first, fully sorted");
    }
}
