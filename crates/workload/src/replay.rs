//! The open-loop traffic replay harness.
//!
//! Grown from the C10K load generator (which is now a thin preset over
//! this engine): one thread, one [`Poller`], thousands of non-blocking
//! client state machines — but instead of flooding every session at
//! once, the driver fires each [`crate::trace::TraceEvent`] when its
//! timestamp comes due. Arrivals are *open-loop*: the schedule does not
//! wait for completions, so a mediator that falls behind accumulates
//! backlog exactly as it would under real traffic (a closed-loop driver
//! would politely slow down and hide the problem).
//!
//! Every session is held to its terminal frame and timed in two halves:
//!
//! * **queue wait** — submit to `Accepted`, the time admission held the
//!   query (the half the `--admission` policy owns);
//! * **execution** — `Accepted` to `Done`, the time the engine ran it.
//!
//! The split is what makes an admission A/B legible: SJF should collapse
//! the queue-wait tail while leaving execution untouched. The report
//! also tallies cache hits/misses out of each `Done` frame's metrics —
//! under Zipf traffic the hit rate should be well above zero — plus
//! rejects, torn sessions, and the peak number of concurrently open
//! sessions.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dqs_core::hist::percentile;
use dqs_exec::json;
use dqs_reactor::{Events, Interest, Poller, Token};
use dqs_source::net::{FlushStatus, Frame, FrameDecoder, WriteBuffer};

use crate::trace::Trace;

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayOpts {
    /// Mediator address (`host:port`).
    pub addr: String,
    /// Max connections opened per reactor iteration (the burst cap; due
    /// events beyond it roll into the next iteration).
    pub connect_batch: usize,
    /// Give up (counting unfinished sessions as errored) after this long.
    pub timeout: Duration,
}

impl Default for ReplayOpts {
    fn default() -> Self {
        ReplayOpts {
            addr: String::new(),
            connect_batch: 250,
            timeout: Duration::from_secs(600),
        }
    }
}

/// p50/p99/p999/max over one latency population, milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Worst sample.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarize a sample vector (sorted in place).
    fn of(samples: &mut [f64]) -> LatencySummary {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        LatencySummary {
            p50_ms: percentile(samples, 0.50),
            p99_ms: percentile(samples, 0.99),
            p999_ms: percentile(samples, 0.999),
            max_ms: samples.last().copied().unwrap_or(0.0),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"p50_ms\":{:.2},\"p99_ms\":{:.2},\"p999_ms\":{:.2},\"max_ms\":{:.2}}}",
            self.p50_ms, self.p99_ms, self.p999_ms, self.max_ms
        )
    }
}

/// What a replay observed.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Sessions scheduled by the trace.
    pub sessions: usize,
    /// Sessions that reached `Done`.
    pub completed: usize,
    /// Sessions the mediator refused (`Rejected`: backlog full).
    pub rejected: usize,
    /// Sessions that failed any other way: connect errors, `Error`
    /// frames, torn connections, or unfinished at the deadline.
    pub errored: usize,
    /// Sessions that saw a `Queued` frame before running.
    pub queued_sessions: usize,
    /// Most sessions simultaneously open.
    pub peak_concurrent: usize,
    /// First arrival to last terminal, seconds.
    pub duration_secs: f64,
    /// Completed sessions per second over the whole run.
    pub throughput_per_sec: f64,
    /// Submit → terminal latency.
    pub total: LatencySummary,
    /// Submit → `Accepted`: time held by admission.
    pub queue_wait: LatencySummary,
    /// `Accepted` → `Done`: time the engine ran the query.
    pub exec: LatencySummary,
    /// Result-cache hits summed over all `Done` metrics.
    pub cache_hits: u64,
    /// Result-cache misses summed over all `Done` metrics.
    pub cache_misses: u64,
}

impl ReplayReport {
    /// Hit fraction of all cache lookups (0 when the trace never
    /// touched the cache).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The `BENCH_workload.json` payload.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"completed\":{},\"errored\":{},\"rejected\":{},\
             \"queued_sessions\":{},\"peak_concurrent\":{},\"duration_secs\":{:.3},\
             \"throughput_per_sec\":{:.1},\"total\":{},\"queue_wait\":{},\"exec\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.3}}}",
            self.sessions,
            self.completed,
            self.errored,
            self.rejected,
            self.queued_sessions,
            self.peak_concurrent,
            self.duration_secs,
            self.throughput_per_sec,
            self.total.to_json(),
            self.queue_wait.to_json(),
            self.exec.to_json(),
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate()
        )
    }
}

/// One client session's state machine.
struct Client {
    stream: TcpStream,
    dec: FrameDecoder,
    wb: WriteBuffer,
    submitted_at: Instant,
    accepted_at: Option<Instant>,
    queued: bool,
    interest: Interest,
}

enum Outcome {
    Pending,
    /// Done; carries the terminal frame's metrics JSON.
    Done(String),
    Rejected,
    Failed,
}

fn pump(client: &mut Client) -> Outcome {
    if client.wb.flush(&mut client.stream).is_err() {
        return Outcome::Failed;
    }
    let mut buf = [0u8; 4096];
    let mut eof = false;
    loop {
        match client.stream.read(&mut buf) {
            Ok(0) => {
                // The server sends the terminal and closes; the Done may
                // already be buffered, so parse before ruling.
                eof = true;
                break;
            }
            Ok(n) => client.dec.feed(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Outcome::Failed,
        }
    }
    loop {
        match client.dec.next_frame() {
            Ok(Some(Frame::Accepted { .. })) => {
                client.accepted_at.get_or_insert_with(Instant::now);
            }
            Ok(Some(Frame::Queued { .. })) => client.queued = true,
            Ok(Some(Frame::Done { metrics_json })) => return Outcome::Done(metrics_json),
            Ok(Some(Frame::Rejected { .. })) => return Outcome::Rejected,
            Ok(Some(Frame::Error { .. })) => return Outcome::Failed,
            Ok(Some(_)) => {}                          // Trace frames: progress
            Ok(None) if eof => return Outcome::Failed, // EOF before terminal
            Ok(None) => return Outcome::Pending,
            Err(_) => return Outcome::Failed,
        }
    }
}

/// Pull the cache counters out of a `Done` frame's metrics JSON.
fn cache_counters(metrics_json: &str) -> (u64, u64) {
    let Ok(v) = json::parse(metrics_json) else {
        return (0, 0);
    };
    let Some(obj) = v.as_object() else {
        return (0, 0);
    };
    let get = |k: &str| {
        obj.iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0)
    };
    (get("cache_hits"), get("cache_misses"))
}

/// Fire `trace` at the mediator at `opts.addr`, honoring event
/// timestamps, and measure every session to its terminal frame.
pub fn replay(trace: &Trace, opts: &ReplayOpts) -> io::Result<ReplayReport> {
    let mut poller = Poller::new()?;
    let mut events = Events::new();
    let n = trace.events.len();
    let mut clients: Vec<Option<Client>> = Vec::with_capacity(n);
    let mut total_ms: Vec<f64> = Vec::with_capacity(n);
    let mut queue_wait_ms: Vec<f64> = Vec::with_capacity(n);
    let mut exec_ms: Vec<f64> = Vec::with_capacity(n);
    let mut report = ReplayReport {
        sessions: n,
        ..ReplayReport::default()
    };
    let mut open = 0usize;
    let started = Instant::now();

    // Due-but-unopened events (a burst bigger than connect_batch rolls
    // over); trace order is arrival order.
    let mut due: VecDeque<usize> = VecDeque::new();
    let mut next_event = 0usize;
    let terminals = |r: &ReplayReport| r.completed + r.errored + r.rejected;
    while (terminals(&report) < n || open > 0) && started.elapsed() < opts.timeout {
        let elapsed_ms = started.elapsed().as_millis() as u64;
        while next_event < n && trace.events[next_event].at_ms <= elapsed_ms {
            due.push_back(next_event);
            next_event += 1;
        }
        // Arrival burst: open due sessions regardless of completions.
        for _ in 0..opts.connect_batch {
            let Some(idx) = due.pop_front() else {
                break;
            };
            let ev = &trace.events[idx];
            while clients.len() < idx {
                clients.push(None); // connect-failed slots stay None
            }
            let stream = match TcpStream::connect(&opts.addr) {
                Ok(s) => s,
                Err(_) => {
                    report.errored += 1;
                    clients.push(None);
                    continue;
                }
            };
            stream.set_nodelay(true).ok();
            if stream.set_nonblocking(true).is_err() {
                report.errored += 1;
                clients.push(None);
                continue;
            }
            let mut client = Client {
                stream,
                dec: FrameDecoder::new(),
                wb: WriteBuffer::new(),
                submitted_at: Instant::now(),
                accepted_at: None,
                queued: false,
                interest: Interest::READABLE,
            };
            client.wb.push(&Frame::Submit {
                strategy: ev.strategy.clone(),
                trace: false,
                no_cache: false,
                seed: None,
                spec_json: trace.specs[ev.spec].clone(),
            });
            let blocked = matches!(
                client.wb.flush(&mut client.stream),
                Ok(FlushStatus::Blocked)
            );
            client.interest = if blocked {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            {
                use std::os::fd::AsRawFd;
                if poller
                    .register(
                        client.stream.as_raw_fd(),
                        Token(idx as u64),
                        client.interest,
                    )
                    .is_err()
                {
                    report.errored += 1;
                    clients.push(None);
                    continue;
                }
            }
            debug_assert_eq!(clients.len(), idx);
            clients.push(Some(client));
            open += 1;
            report.peak_concurrent = report.peak_concurrent.max(open);
        }
        // Sleep until I/O, the next scheduled arrival, or a rollover
        // burst — whichever is soonest.
        let timeout = if !due.is_empty() {
            Duration::from_millis(1)
        } else if next_event < n {
            Duration::from_millis(
                (trace.events[next_event].at_ms.saturating_sub(elapsed_ms)).clamp(1, 100),
            )
        } else {
            Duration::from_millis(100)
        };
        poller.wait(&mut events, Some(timeout))?;
        for ev in events.iter().copied() {
            let idx = ev.token.0 as usize;
            let Some(slot) = clients.get_mut(idx) else {
                continue;
            };
            let Some(client) = slot.as_mut() else {
                continue;
            };
            match pump(client) {
                Outcome::Pending => {
                    // Writable interest only while Submit bytes remain.
                    let want = if client.wb.is_empty() {
                        Interest::READABLE
                    } else {
                        Interest::BOTH
                    };
                    if want != client.interest {
                        client.interest = want;
                        use std::os::fd::AsRawFd;
                        poller
                            .modify(client.stream.as_raw_fd(), Token(idx as u64), want)
                            .ok();
                    }
                }
                outcome => {
                    {
                        use std::os::fd::AsRawFd;
                        poller.deregister(client.stream.as_raw_fd()).ok();
                    }
                    match outcome {
                        Outcome::Done(metrics) => {
                            report.completed += 1;
                            if client.queued {
                                report.queued_sessions += 1;
                            }
                            let done_at = Instant::now();
                            let accepted = client.accepted_at.unwrap_or(done_at);
                            total_ms.push((done_at - client.submitted_at).as_secs_f64() * 1e3);
                            queue_wait_ms
                                .push((accepted - client.submitted_at).as_secs_f64() * 1e3);
                            exec_ms.push((done_at - accepted).as_secs_f64() * 1e3);
                            let (h, m) = cache_counters(&metrics);
                            report.cache_hits += h;
                            report.cache_misses += m;
                        }
                        Outcome::Rejected => report.rejected += 1,
                        Outcome::Failed => report.errored += 1,
                        Outcome::Pending => unreachable!(),
                    }
                    *slot = None;
                    open -= 1;
                }
            }
        }
    }
    // Deadline hit: everything still open — or never even opened —
    // failed.
    report.errored += open + due.len() + (n - next_event);

    report.duration_secs = started.elapsed().as_secs_f64();
    report.throughput_per_sec = report.completed as f64 / report.duration_secs.max(1e-9);
    report.total = LatencySummary::of(&mut total_ms);
    report.queue_wait = LatencySummary::of(&mut queue_wait_ms);
    report.exec = LatencySummary::of(&mut exec_ms);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_parseable_and_nested() {
        let mut r = ReplayReport {
            sessions: 10,
            completed: 9,
            errored: 1,
            queued_sessions: 4,
            peak_concurrent: 7,
            duration_secs: 2.0,
            throughput_per_sec: 4.5,
            cache_hits: 12,
            cache_misses: 6,
            ..ReplayReport::default()
        };
        r.total = LatencySummary {
            p50_ms: 10.0,
            p99_ms: 90.0,
            p999_ms: 99.0,
            max_ms: 100.0,
        };
        let v = json::parse(&r.to_json()).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("errored").and_then(|v| v.as_u64()), Some(1));
        let total = get("total").and_then(|v| v.as_object()).unwrap();
        assert!(total.iter().any(|(k, _)| k == "p99_ms"));
        let rate = get("cache_hit_rate").and_then(|v| v.as_f64()).unwrap();
        assert!((rate - 12.0 / 18.0).abs() < 1e-3);
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let mut xs: Vec<f64> = (1..=1000).map(f64::from).collect();
        let s = LatencySummary::of(&mut xs);
        assert_eq!(s.p50_ms, 500.0);
        assert_eq!(s.p99_ms, 990.0);
        assert_eq!(s.p999_ms, 999.0);
        assert_eq!(s.max_ms, 1000.0);
    }

    #[test]
    fn cache_counters_parse_out_of_metrics_json() {
        let (h, m) = cache_counters("{\"cache_hits\":3,\"cache_misses\":1,\"x\":0}");
        assert_eq!((h, m), (3, 1));
        assert_eq!(cache_counters("not json"), (0, 0));
        assert_eq!(cache_counters("{\"other\":1}"), (0, 0));
    }
}
