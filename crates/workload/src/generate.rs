//! The seeded workload synthesizer.
//!
//! Every benchmark before this crate replayed one hand-written spec; a
//! mediator sized for a million users needs traffic that *looks* like a
//! million users. The generator draws a pool of unique query specs from a
//! parameterized shape grammar, assigns them Zipf-distributed popularity
//! (a few specs account for most submissions — which is what makes the
//! result cache earn its keep), and schedules submissions under a
//! pluggable arrival process. Everything is driven by one ChaCha8 stream
//! seeded from [`GenOpts::seed`], so equal options produce byte-identical
//! traces — a reproducibility property the test suite pins with a
//! proptest.
//!
//! # The grammar
//!
//! A spec is `relations × joins × config`. Each relation draws a
//! cardinality from a weighted size class and a wrapper delay model from
//! a weighted delay-taxonomy class (the paper's §3 taxonomy: constant,
//! uniform, initial-delay, bursty); joins chain the relations linearly
//! with sampled selectivity; the config draws a memory class and a
//! per-spec seed (distinct seeds keep distinct specs from colliding in
//! the result cache, while repeated submissions of the *same* spec hit
//! it).
//!
//! # Arrival processes
//!
//! * [`Arrival::Poisson`] — open-loop memoryless arrivals at a fixed
//!   rate: the classic load model, and what the acceptance bench uses;
//! * [`Arrival::Bursty`] — Poisson arrivals gated by an on/off square
//!   wave: `on_ms` of traffic, `off_ms` of silence — queue-drain stress;
//! * [`Arrival::Diurnal`] — Poisson arrivals whose rate follows a raised
//!   cosine between `base_per_sec` and `peak_per_sec` over `period_ms`
//!   (a day compressed to a bench-sized period), via thinning.

use std::ops::RangeInclusive;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::trace::{Trace, TraceEvent};

/// A wrapper delay-taxonomy class, in spec-JSON delay terms.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayClass {
    /// Fixed inter-tuple gap.
    Constant {
        /// Gap, microseconds.
        us: u64,
    },
    /// Uniform gap in `[0, 2·mean_us]`.
    Uniform {
        /// Mean gap, microseconds.
        mean_us: u64,
    },
    /// Long first-tuple latency, then steady delivery.
    Initial {
        /// First-tuple delay, milliseconds.
        delay_ms: u64,
        /// Steady inter-tuple gap after the first, microseconds.
        mean_us: u64,
    },
    /// Tuples in bursts separated by pauses.
    Bursty {
        /// Tuples per burst.
        burst: u64,
        /// Gap inside a burst, microseconds.
        within_us: u64,
        /// Pause between bursts, milliseconds.
        pause_ms: u64,
    },
}

impl DelayClass {
    /// The spec-JSON `delay` object for this class.
    pub fn to_json(&self) -> String {
        match self {
            DelayClass::Constant { us } => format!("{{\"constant_us\":{us}}}"),
            DelayClass::Uniform { mean_us } => format!("{{\"uniform_us\":{mean_us}}}"),
            DelayClass::Initial { delay_ms, mean_us } => {
                format!("{{\"initial\":{{\"delay_ms\":{delay_ms},\"mean_us\":{mean_us}}}}}")
            }
            DelayClass::Bursty {
                burst,
                within_us,
                pause_ms,
            } => format!(
                "{{\"bursty\":{{\"burst\":{burst},\"within_us\":{within_us},\
                 \"pause_ms\":{pause_ms}}}}}"
            ),
        }
    }
}

/// The query-shape grammar: weighted choices for every dimension of a
/// spec. Weights are relative (they need not sum to 1).
#[derive(Debug, Clone)]
pub struct Grammar {
    /// Relations per query (min 2 — the engine wants a join to
    /// schedule); joins chain them, so fanout = relations − 1.
    pub relations: RangeInclusive<usize>,
    /// Weighted relation-cardinality classes.
    pub size_classes: Vec<(RangeInclusive<u64>, f64)>,
    /// Weighted delay-taxonomy classes.
    pub delay_classes: Vec<(DelayClass, f64)>,
    /// Weighted per-query memory budgets, MiB.
    pub memory_classes: Vec<(u64, f64)>,
    /// Weighted strategy mix (`seq|ma|scr|dse`).
    pub strategies: Vec<(String, f64)>,
    /// Join selectivity range.
    pub selectivity: RangeInclusive<f64>,
}

impl Default for Grammar {
    fn default() -> Self {
        Grammar {
            relations: 2..=4,
            size_classes: vec![(16..=64, 0.6), (64..=192, 0.3), (192..=448, 0.1)],
            delay_classes: vec![
                (DelayClass::Constant { us: 200 }, 0.45),
                (DelayClass::Uniform { mean_us: 400 }, 0.30),
                (
                    DelayClass::Initial {
                        delay_ms: 2,
                        mean_us: 300,
                    },
                    0.15,
                ),
                (
                    DelayClass::Bursty {
                        burst: 16,
                        within_us: 50,
                        pause_ms: 2,
                    },
                    0.10,
                ),
            ],
            memory_classes: vec![(4, 0.5), (8, 0.35), (16, 0.15)],
            strategies: vec![
                ("dse".into(), 0.7),
                ("scr".into(), 0.1),
                ("ma".into(), 0.1),
                ("seq".into(), 0.1),
            ],
            selectivity: 0.002..=0.02,
        }
    }
}

/// When submissions arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Open-loop memoryless arrivals at a fixed rate.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Poisson arrivals gated by an on/off square wave.
    Bursty {
        /// Mean arrivals per second *while on*.
        rate_per_sec: f64,
        /// Length of each traffic window, milliseconds.
        on_ms: u64,
        /// Length of each silence between windows, milliseconds.
        off_ms: u64,
    },
    /// Poisson arrivals whose rate follows a raised cosine between base
    /// and peak over one period (thinning).
    Diurnal {
        /// Trough rate, arrivals per second.
        base_per_sec: f64,
        /// Crest rate, arrivals per second.
        peak_per_sec: f64,
        /// One full cycle, milliseconds.
        period_ms: u64,
    },
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenOpts {
    /// Master seed; equal opts ⇒ byte-identical trace.
    pub seed: u64,
    /// Unique specs in the pool.
    pub specs: usize,
    /// Total submissions to schedule.
    pub events: usize,
    /// Zipf skew exponent `s` (popularity of rank r ∝ 1/(r+1)^s);
    /// 0 = uniform, ≳1 = a few specs dominate.
    pub zipf_s: f64,
    /// The arrival process.
    pub arrival: Arrival,
    /// The query-shape grammar.
    pub grammar: Grammar,
}

impl Default for GenOpts {
    fn default() -> Self {
        GenOpts {
            seed: 42,
            specs: 50,
            events: 1000,
            zipf_s: 1.1,
            arrival: Arrival::Poisson {
                rate_per_sec: 200.0,
            },
            grammar: Grammar::default(),
        }
    }
}

/// Weighted choice over `(item, weight)` pairs.
fn weighted<'a, T, R: Rng>(rng: &mut R, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    assert!(
        !items.is_empty() && total > 0.0,
        "weighted choice needs positive total weight"
    );
    let mut u = rng.gen_range(0.0..total);
    for (item, w) in items {
        if u < *w {
            return item;
        }
        u -= w;
    }
    &items.last().expect("nonempty").0
}

/// Exponential inter-arrival gap at `rate` per second, in milliseconds.
fn exp_gap_ms<R: Rng>(rng: &mut R, rate_per_sec: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate_per_sec * 1000.0
}

/// The next arrival's absolute time given the previous one, ms.
fn next_arrival_ms<R: Rng>(rng: &mut R, arrival: &Arrival, t_ms: f64) -> f64 {
    match *arrival {
        Arrival::Poisson { rate_per_sec } => {
            assert!(rate_per_sec > 0.0, "poisson rate must be positive");
            t_ms + exp_gap_ms(rng, rate_per_sec)
        }
        Arrival::Bursty {
            rate_per_sec,
            on_ms,
            off_ms,
        } => {
            assert!(
                rate_per_sec > 0.0 && on_ms > 0,
                "bursty needs rate and on_ms"
            );
            // The gap is Poisson in *on-window time*: walk forward
            // consuming on-window milliseconds, hopping over each off
            // window untouched.
            let (on, period) = (on_ms as f64, (on_ms + off_ms) as f64);
            let mut remaining = exp_gap_ms(rng, rate_per_sec);
            let mut t = t_ms;
            loop {
                let pos = t % period;
                if pos >= on {
                    t += period - pos; // silence: hop to the next window
                    continue;
                }
                let avail = on - pos;
                if remaining < avail {
                    return t + remaining;
                }
                remaining -= avail;
                t += avail;
            }
        }
        Arrival::Diurnal {
            base_per_sec,
            peak_per_sec,
            period_ms,
        } => {
            assert!(
                peak_per_sec >= base_per_sec && peak_per_sec > 0.0 && period_ms > 0,
                "diurnal needs 0 < base ≤ peak and a period"
            );
            // Thinning: propose at the peak rate, accept with probability
            // rate(t)/peak where rate(t) is a raised cosine with trough
            // at t = 0.
            let mut t = t_ms;
            loop {
                t += exp_gap_ms(rng, peak_per_sec);
                let phase = (t / period_ms as f64) * std::f64::consts::TAU;
                let rate = base_per_sec + (peak_per_sec - base_per_sec) * 0.5 * (1.0 - phase.cos());
                if rng.gen_range(0.0..1.0) < rate / peak_per_sec {
                    return t;
                }
            }
        }
    }
}

/// One spec drawn from the grammar. `idx` only names the relations so
/// trace files read well; identity comes from the sampled dimensions and
/// the per-spec seed.
fn gen_spec<R: Rng + RngCore>(rng: &mut R, g: &Grammar, idx: usize) -> String {
    assert!(
        *g.relations.start() >= 2,
        "specs need at least two relations to have a join"
    );
    let nrel = rng.gen_range(g.relations.clone());
    let rels: Vec<String> = (0..nrel)
        .map(|r| {
            let size = weighted(rng, &g.size_classes).clone();
            let card = rng.gen_range(size);
            let delay = weighted(rng, &g.delay_classes);
            format!(
                "{{\"name\":\"q{idx}r{r}\",\"cardinality\":{card},\"delay\":{}}}",
                delay.to_json()
            )
        })
        .collect();
    let joins: Vec<String> = (1..nrel)
        .map(|r| {
            let sel = rng.gen_range(g.selectivity.clone());
            format!(
                "{{\"left\":\"q{idx}r{}\",\"right\":\"q{idx}r{r}\",\"selectivity\":{sel:.5}}}",
                r - 1
            )
        })
        .collect();
    let mem = *weighted(rng, &g.memory_classes);
    // Per-spec seed (32-bit so the spec parser's integer range is safe):
    // distinct seeds give distinct specs distinct cache identities.
    let seed = rng.next_u64() & u64::from(u32::MAX);
    format!(
        "{{\"relations\":[{}],\"joins\":[{}],\
         \"config\":{{\"memory_mb\":{mem},\"seed\":{seed}}}}}",
        rels.join(","),
        joins.join(",")
    )
}

/// Zipf CDF over `n` ranks with exponent `s` (rank 0 most popular).
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 0..n {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Generate a trace. Deterministic in `opts`: equal options (including
/// the grammar) produce a byte-identical [`Trace::to_json`].
pub fn generate(opts: &GenOpts) -> Trace {
    assert!(opts.specs > 0, "need at least one spec in the pool");
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let specs: Vec<String> = (0..opts.specs)
        .map(|i| gen_spec(&mut rng, &opts.grammar, i))
        .collect();
    let cdf = zipf_cdf(opts.specs, opts.zipf_s);
    let mut events = Vec::with_capacity(opts.events);
    let mut t_ms = 0.0f64;
    for _ in 0..opts.events {
        t_ms = next_arrival_ms(&mut rng, &opts.arrival, t_ms);
        let u: f64 = rng.gen_range(0.0..1.0);
        let spec = cdf.partition_point(|&c| c < u).min(opts.specs - 1);
        let strategy = weighted(&mut rng, &opts.grammar.strategies).clone();
        events.push(TraceEvent {
            at_ms: t_ms as u64,
            spec,
            strategy,
        });
    }
    Trace {
        seed: opts.seed,
        specs,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_produce_byte_identical_traces() {
        let opts = GenOpts::default();
        let a = generate(&opts).to_json();
        let b = generate(&opts).to_json();
        assert_eq!(a, b);
        let c = generate(&GenOpts {
            seed: 43,
            ..GenOpts::default()
        })
        .to_json();
        assert_ne!(a, c, "a different seed moves the trace");
    }

    #[test]
    fn every_generated_spec_parses_as_a_workload_spec() {
        let t = generate(&GenOpts {
            specs: 40,
            events: 1,
            ..GenOpts::default()
        });
        for spec in &t.specs {
            let parsed = dqs_exec::spec::WorkloadSpec::from_json(spec)
                .unwrap_or_else(|e| panic!("generated spec must parse: {e}\n{spec}"));
            parsed
                .into_workload()
                .unwrap_or_else(|e| panic!("generated spec must build: {e}\n{spec}"));
        }
    }

    #[test]
    fn zipf_popularity_is_front_loaded_and_timestamps_are_sorted() {
        let t = generate(&GenOpts {
            specs: 20,
            events: 2000,
            zipf_s: 1.2,
            ..GenOpts::default()
        });
        let mut counts = [0usize; 20];
        for e in &t.events {
            counts[e.spec] += 1;
        }
        let tail_max = counts[10..].iter().max().copied().unwrap();
        assert!(
            counts[0] > 4 * tail_max.max(1),
            "rank 0 ({}) should dwarf the tail (max {tail_max})",
            counts[0]
        );
        assert!(t.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn poisson_mean_gap_matches_the_rate() {
        let t = generate(&GenOpts {
            specs: 5,
            events: 4000,
            arrival: Arrival::Poisson {
                rate_per_sec: 500.0,
            },
            ..GenOpts::default()
        });
        // 500/s ⇒ 2 ms mean gap ⇒ 4000 events span ≈ 8 s.
        let span = t.duration_ms() as f64;
        assert!(
            (6_000.0..10_000.0).contains(&span),
            "span {span} ms for 4000 events at 500/s"
        );
    }

    #[test]
    fn bursty_arrivals_avoid_the_off_window() {
        let (on, off) = (40u64, 60u64);
        let t = generate(&GenOpts {
            specs: 3,
            events: 1500,
            arrival: Arrival::Bursty {
                rate_per_sec: 300.0,
                on_ms: on,
                off_ms: off,
            },
            ..GenOpts::default()
        });
        for e in &t.events {
            let pos = e.at_ms % (on + off);
            assert!(
                pos <= on,
                "arrival at {} falls {}ms into the period",
                e.at_ms,
                pos
            );
        }
    }

    #[test]
    fn diurnal_peak_half_outdraws_the_trough_half() {
        let period = 2_000u64;
        let t = generate(&GenOpts {
            specs: 3,
            events: 3000,
            arrival: Arrival::Diurnal {
                base_per_sec: 50.0,
                peak_per_sec: 500.0,
                period_ms: period,
            },
            ..GenOpts::default()
        });
        // Trough is at phase 0, crest at phase ½: the half-period around
        // the crest must collect far more arrivals.
        let (mut near_peak, mut near_base) = (0usize, 0usize);
        for e in &t.events {
            let pos = e.at_ms % period;
            if (period / 4..3 * period / 4).contains(&pos) {
                near_peak += 1;
            } else {
                near_base += 1;
            }
        }
        assert!(
            near_peak > 2 * near_base,
            "peak half {near_peak} vs trough half {near_base}"
        );
    }

    #[test]
    fn pool_specs_are_unique() {
        let t = generate(&GenOpts {
            specs: 30,
            events: 1,
            ..GenOpts::default()
        });
        let mut seen = std::collections::HashSet::new();
        for s in &t.specs {
            assert!(seen.insert(s.clone()), "duplicate spec in pool: {s}");
        }
    }
}
