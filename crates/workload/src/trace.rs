//! The trace file: a timestamped schedule of query submissions.
//!
//! A trace is the contract between the generator and the replay harness —
//! and, written to disk, between a `dqs workload gen` run today and a
//! `dqs workload replay` run next week. It holds a pool of unique spec
//! JSON strings and a time-ordered event list referencing them by index,
//! so a Zipf-popular spec appears once in the pool no matter how many
//! thousand submissions reference it (which is also what makes replay
//! exercise the mediator's result cache the way repeated real queries
//! would).
//!
//! # File format (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "seed": 42,
//!   "specs": ["{...spec json...}", "..."],
//!   "events": [
//!     {"at_ms": 0, "spec": 3, "strategy": "dse"},
//!     {"at_ms": 17, "spec": 0, "strategy": "seq"}
//!   ]
//! }
//! ```
//!
//! `at_ms` is milliseconds from replay start; events are kept sorted by
//! it. Spec strings are embedded as JSON string literals (escaped), so
//! the file round-trips through the same serde-free parser the rest of
//! the system uses.

use dqs_exec::json::{self, Json};

/// One scheduled submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Submission time, milliseconds from replay start.
    pub at_ms: u64,
    /// Index into [`Trace::specs`].
    pub spec: usize,
    /// Scheduling strategy to submit with (`seq|ma|scr|dse`).
    pub strategy: String,
}

/// A generated workload: the spec pool plus the arrival schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The generator seed (recorded for provenance; replay ignores it).
    pub seed: u64,
    /// Unique workload specs, as spec-JSON strings.
    pub specs: Vec<String>,
    /// Submissions in nondecreasing `at_ms` order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// A degenerate trace: `sessions` submissions of one spec, all due at
    /// t=0 — the open-loop flood the classic c10k bench fires.
    pub fn flood(sessions: usize, spec_json: &str, strategy: &str) -> Trace {
        Trace {
            seed: 0,
            specs: vec![spec_json.to_string()],
            events: (0..sessions)
                .map(|_| TraceEvent {
                    at_ms: 0,
                    spec: 0,
                    strategy: strategy.to_string(),
                })
                .collect(),
        }
    }

    /// When the last submission fires, milliseconds from start.
    pub fn duration_ms(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_ms)
    }

    /// Serialize to the version-1 trace file format (no trailing
    /// newline). Deterministic: equal traces render byte-identically.
    pub fn to_json(&self) -> String {
        let specs: Vec<String> = self.specs.iter().map(|s| json::escape(s)).collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"at_ms\":{},\"spec\":{},\"strategy\":{}}}",
                    e.at_ms,
                    e.spec,
                    json::escape(&e.strategy)
                )
            })
            .collect();
        format!(
            "{{\"version\":1,\"seed\":{},\"specs\":[{}],\"events\":[{}]}}",
            self.seed,
            specs.join(","),
            events.join(",")
        )
    }

    /// Parse a version-1 trace file. Events are re-sorted by `at_ms`
    /// (stably, so equal-time order is preserved) and spec indices are
    /// validated against the pool.
    pub fn from_json(text: &str) -> Result<Trace, String> {
        let v = json::parse(text).map_err(|e| format!("trace: {e}"))?;
        let obj = v.as_object().ok_or("trace: not a JSON object")?;
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        match get("version").and_then(Json::as_u64) {
            Some(1) => {}
            Some(v) => return Err(format!("trace: unsupported version {v}")),
            None => return Err("trace: missing version".into()),
        }
        let seed = get("seed").and_then(Json::as_u64).unwrap_or(0);
        let specs: Vec<String> = get("specs")
            .and_then(Json::as_array)
            .ok_or("trace: missing specs array")?
            .iter()
            .map(|s| s.as_str().map(str::to_string))
            .collect::<Option<_>>()
            .ok_or("trace: specs must be strings")?;
        let raw = get("events")
            .and_then(Json::as_array)
            .ok_or("trace: missing events array")?;
        let mut events = Vec::with_capacity(raw.len());
        for (i, ev) in raw.iter().enumerate() {
            let eobj = ev
                .as_object()
                .ok_or_else(|| format!("trace: event {i} is not an object"))?;
            let eget = |k: &str| eobj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            let at_ms = eget("at_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace: event {i} missing at_ms"))?;
            let spec = eget("spec")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace: event {i} missing spec"))?
                as usize;
            if spec >= specs.len() {
                return Err(format!(
                    "trace: event {i} references spec {spec}, pool has {}",
                    specs.len()
                ));
            }
            let strategy = eget("strategy")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("trace: event {i} missing strategy"))?
                .to_string();
            events.push(TraceEvent {
                at_ms,
                spec,
                strategy,
            });
        }
        events.sort_by_key(|e| e.at_ms);
        Ok(Trace {
            seed,
            specs,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            seed: 9,
            specs: vec![
                r#"{"relations":[{"name":"a","cardinality":4}],"joins":[]}"#.into(),
                r#"{"relations":[{"name":"b","cardinality":8}],"joins":[]}"#.into(),
            ],
            events: vec![
                TraceEvent {
                    at_ms: 0,
                    spec: 1,
                    strategy: "dse".into(),
                },
                TraceEvent {
                    at_ms: 12,
                    spec: 0,
                    strategy: "seq".into(),
                },
            ],
        }
    }

    #[test]
    fn trace_round_trips_through_json() {
        let t = sample();
        let back = Trace::from_json(&t.to_json()).expect("round trip");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), t.to_json(), "re-render is byte-stable");
    }

    #[test]
    fn embedded_specs_survive_escaping_and_reparse_as_json() {
        let t = sample();
        let back = Trace::from_json(&t.to_json()).unwrap();
        for spec in &back.specs {
            dqs_exec::json::parse(spec).expect("pool spec is itself valid JSON");
        }
    }

    #[test]
    fn out_of_order_events_are_sorted_on_load() {
        let text = r#"{"version":1,"seed":0,"specs":["{}"],
            "events":[{"at_ms":50,"spec":0,"strategy":"dse"},
                      {"at_ms":5,"spec":0,"strategy":"dse"}]}"#;
        let t = Trace::from_json(text).unwrap();
        assert_eq!(t.events[0].at_ms, 5);
        assert_eq!(t.duration_ms(), 50);
    }

    #[test]
    fn bad_traces_are_rejected_with_reasons() {
        assert!(Trace::from_json("[]").is_err(), "not an object");
        assert!(Trace::from_json("{\"version\":2,\"specs\":[],\"events\":[]}").is_err());
        let dangling = r#"{"version":1,"specs":["{}"],
            "events":[{"at_ms":0,"spec":7,"strategy":"dse"}]}"#;
        let err = Trace::from_json(dangling).unwrap_err();
        assert!(err.contains("spec 7"), "{err}");
    }

    #[test]
    fn flood_is_all_at_time_zero() {
        let t = Trace::flood(3, "{}", "dse");
        assert_eq!(t.events.len(), 3);
        assert!(t.events.iter().all(|e| e.at_ms == 0 && e.spec == 0));
        assert_eq!(t.duration_ms(), 0);
    }
}
