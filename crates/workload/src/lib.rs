//! # dqs-workload — seeded workload generation and traffic replay
//!
//! The mediator can hold ten thousand concurrent sessions and
//! parallelize each query; this crate generates the *traffic* that
//! proves it — and proves the admission layer's scheduling choices —
//! under realistic skew rather than a single hand-written spec.
//!
//! * [`generate`](mod@generate) — a fully seeded, offline workload
//!   synthesizer: a pool of unique specs drawn from a parameterized
//!   query-shape grammar, Zipf-distributed popularity (so repeated
//!   specs exercise the result cache the way real users do), and
//!   pluggable arrival processes (open-loop Poisson, bursty on/off,
//!   diurnal rate curve);
//! * [`trace`] — the versioned JSON trace-file format that carries a
//!   generated schedule from `dqs workload gen` to `dqs workload
//!   replay`;
//! * [`replay`](mod@replay) — an open-loop, reactor-based driver that
//!   fires a trace at a live mediator honoring timestamps, holds every
//!   session to its terminal frame, and reports throughput and
//!   p50/p99/p999 latency *split into queue wait vs execution* plus the
//!   cache hit rate — the observables an `--admission fifo|sjf|fair`
//!   A/B is judged on.
//!
//! The C10K bench (`dqs bench c10k`) is a thin preset over [`replay()`]:
//! a flood trace with every arrival at t = 0.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generate;
pub mod replay;
pub mod trace;

pub use generate::{generate, Arrival, DelayClass, GenOpts, Grammar};
pub use replay::{replay, LatencySummary, ReplayOpts, ReplayReport};
pub use trace::{Trace, TraceEvent};
