//! # dqs-mediator — the engine as a networked service
//!
//! The paper's architecture (§2.1) is a mediator talking to *autonomous
//! remote* wrappers. This crate makes both halves real processes:
//!
//! * [`wrapper_server::WrapperServer`] — a standalone server that speaks
//!   the wrapper side of the wire protocol in `dqs_source::net`, serving
//!   simulated relations (same delay models, same seeded pacing, same
//!   synthetic keys as the in-process wrappers) to any mediator that
//!   connects;
//! * [`server::MediatorServer`] — the serving mediator: accepts client
//!   connections submitting JSON workload specs, admits up to a configured
//!   number of concurrent queries under an evenly partitioned global
//!   memory budget (backed by `dqs_core::session::SessionTable`), queues
//!   or rejects excess load, runs each admitted query on its own
//!   `RealTimeDriver`, and streams trace and result frames back;
//! * [`client`] — the submitting side, used by `dqs submit`.
//!
//! The three pieces compose into the full topology from the shell:
//!
//! ```text
//! dqs wrapper --listen 127.0.0.1:7401          # wrapper process(es)
//! dqs serve --listen 127.0.0.1:7400 \
//!           --wrappers 127.0.0.1:7401          # the mediator
//! dqs submit spec.json --connect 127.0.0.1:7400  # clients
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod client;
mod refresher;
pub mod server;
pub mod wrapper_server;

pub use bench::{run_c10k, C10kOpts, C10kReport};
pub use client::{invalidate, submit, ClientError, Progress, RemoteMetrics, SubmitOpts};
pub use server::{MediatorServer, ServeOpts, ServerMetrics};
pub use wrapper_server::{ChurnOpts, WrapperServer};
