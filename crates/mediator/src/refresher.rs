//! The background refresher: the socket-owning half of `dqs-refresh`.
//!
//! Every `--refresh-interval-ms`, the refresher thread polls each
//! configured replica group with a `StatRequest`, joins the replies with
//! the cache's entry snapshots (via the [`ScanProvenance`] recorded when
//! each scan was captured), asks the sans-io
//! [`RefreshPlanner`](dqs_refresh::RefreshPlanner) what to do, and then
//! executes the plan over real sockets:
//!
//! * **Confirm** — bump the entry's version counter; no wrapper traffic.
//! * **Delta** — re-open the scan at `resume_from = cached_len` and
//!   append the fetched tail ([`dqs_cache::SharedCache::refresh_extend`]).
//! * **Full** — re-scan from zero and swap the payload.
//! * **Defer** — over budget this cycle; mark the entry stale so hits on
//!   it count as `stale_served` until a later cycle affords it.
//!
//! A refresh is a real scan: it pays the wrapper's modelled delay and
//! window protocol, which is exactly why tail deltas beat full re-scans.
//! Progress is narrated as JSON lines on stdout (`refresh_plan`,
//! `refresh_delta`, `refresh_apply`) so operators — and the CI smoke —
//! can watch freshness converge without a client attached.

use std::collections::{HashMap, HashSet};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use dqs_cache::{CacheKey, SharedCache};
use dqs_refresh::{rescan_cost_us, Candidate, RefreshAction, RefreshPlanner, ScanProvenance};
use dqs_relop::RelId;
use dqs_replica::ReplicaSet;
use dqs_source::net::{read_frame, write_frame, Frame, RelStat};

/// Connect timeout for a stat poll or refresh fetch.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Sleep slice so shutdown never waits out a full refresh interval.
const SLEEP_SLICE: Duration = Duration::from_millis(50);

/// Mediator-side state the refresher shares with session builds.
#[derive(Debug, Default)]
pub(crate) struct RefreshState {
    /// How to re-open every cold-recorded scan: the exact `Open`
    /// parameters, keyed by cache key. Pruned against cache residency
    /// each cycle so it never outgrows the cache itself.
    pub(crate) provenance: Mutex<HashMap<CacheKey, ScanProvenance>>,
    /// Latest change-tracking stats observed per (group id, relation).
    /// Session builds consult this so a live scan opens at the wrapper's
    /// *current* total and stamps its recording with the current version.
    pub(crate) stats: Mutex<HashMap<(String, RelId), RelStat>>,
}

impl RefreshState {
    /// The freshest stat observed for `rel` on group `group_id`, if the
    /// refresher has polled it yet.
    pub(crate) fn stat_for(&self, group_id: &str, rel: RelId) -> Option<RelStat> {
        self.stats
            .lock()
            .unwrap()
            .get(&(group_id.to_string(), rel))
            .copied()
    }

    /// Remember how to re-open the scan behind `key`.
    pub(crate) fn record(&self, key: CacheKey, prov: ScanProvenance) {
        self.provenance.lock().unwrap().insert(key, prov);
    }
}

/// Everything the refresher thread needs, bundled at spawn time.
pub(crate) struct RefresherCtx {
    pub(crate) cache: Arc<SharedCache>,
    pub(crate) sets: Vec<Arc<ReplicaSet>>,
    pub(crate) state: Arc<RefreshState>,
    pub(crate) planner: RefreshPlanner,
    pub(crate) interval: Duration,
    pub(crate) read_timeout: Duration,
}

/// The refresher loop: poll, plan, execute, sleep — until `stop`.
pub(crate) fn run_refresher(ctx: &RefresherCtx, stop: &AtomicBool) {
    // Keys observed resident at least once. Provenance is recorded at
    // session-build time, *before* the scan completes and inserts, so a
    // never-yet-resident key is an in-flight recording, not garbage —
    // only keys that materialized and have since been evicted or
    // invalidated are safe to forget.
    let mut materialized: HashSet<CacheKey> = HashSet::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        poll_stats(ctx);
        execute_cycle(ctx, stop);
        ctx.state.provenance.lock().unwrap().retain(|k, _| {
            if ctx.cache.contains(k) {
                materialized.insert(k.clone());
                true
            } else {
                !materialized.remove(k)
            }
        });
        let mut slept = Duration::ZERO;
        while slept < ctx.interval {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let slice = SLEEP_SLICE.min(ctx.interval - slept);
            thread::sleep(slice);
            slept += slice;
        }
    }
}

/// Ask every replica group for its change-tracking state and publish the
/// replies. A group that cannot be reached keeps its last-known stats —
/// refreshing against slightly old truth is safe (the next cycle catches
/// up); dropping the stats would stall session builds for no gain.
fn poll_stats(ctx: &RefresherCtx) {
    for set in &ctx.sets {
        let Some((_, addr)) = set.select() else {
            continue;
        };
        let Some(stats) = stat_endpoint(&addr, ctx.read_timeout) else {
            continue;
        };
        let mut table = ctx.state.stats.lock().unwrap();
        for s in stats {
            table.insert((set.id().to_string(), s.rel), s);
        }
    }
}

/// One `StatRequest` round-trip on a short-lived connection.
fn stat_endpoint(addr: &str, read_timeout: Duration) -> Option<Vec<RelStat>> {
    let sockaddr = addr.to_socket_addrs().ok()?.next()?;
    let mut conn = TcpStream::connect_timeout(&sockaddr, CONNECT_TIMEOUT).ok()?;
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(read_timeout)).ok();
    write_frame(&mut conn, &Frame::StatRequest { rel: None }).ok()?;
    match read_frame(&mut conn) {
        Ok(Some(Frame::StatReply { stats })) => Some(stats),
        _ => None,
    }
}

/// Join cache snapshots with stats and provenance, plan one cycle, and
/// execute it.
fn execute_cycle(ctx: &RefresherCtx, stop: &AtomicBool) {
    let snapshots = ctx.cache.entries_snapshot();
    let provenance = ctx.state.provenance.lock().unwrap().clone();
    let stats = ctx.state.stats.lock().unwrap().clone();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut provs: Vec<&ScanProvenance> = Vec::new();
    for snap in &snapshots {
        // Entries without provenance (in-process scans, pre-refresh
        // inserts) cannot be re-opened; leave them to TTL and eviction.
        let Some(prov) = provenance.get(&snap.key) else {
            continue;
        };
        let Some(set) = ctx.sets.get(prov.group) else {
            continue;
        };
        let Some(stat) = stats.get(&(set.id().to_string(), prov.rel)) else {
            continue;
        };
        candidates.push(Candidate {
            snapshot: snap.clone(),
            stat: *stat,
            rescan_cost_us: rescan_cost_us(&prov.delay, stat.total),
        });
        provs.push(prov);
    }
    let plan = ctx.planner.plan(&candidates);
    if plan.is_empty() {
        return;
    }
    println!(
        "{{\"type\":\"refresh_plan\",\"candidates\":{},\"decisions\":{},\"budget_bytes\":{}}}",
        candidates.len(),
        plan.len(),
        ctx.planner
            .budget_bytes
            .map_or("null".to_string(), |b| b.to_string()),
    );
    for decision in &plan {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let cand = &candidates[decision.index];
        let prov = provs[decision.index];
        let key = &cand.snapshot.key;
        let set = &ctx.sets[prov.group];
        match decision.action {
            RefreshAction::Confirm => {
                let ok = ctx.cache.confirm_version(key, cand.stat.version);
                apply_line("confirm", prov.rel, cand.stat.version, 0, ok);
            }
            RefreshAction::Delta { from, to } => {
                let Some(tail) = fetch_range(set, prov, from, to, ctx.read_timeout) else {
                    continue;
                };
                let ok = ctx.cache.refresh_extend(key, &tail, cand.stat.version);
                println!(
                    "{{\"type\":\"refresh_delta\",\"rel\":{},\"from\":{from},\"to\":{to},\
                     \"bytes\":{},\"version\":{}}}",
                    prov.rel.0,
                    tail.len() * 8,
                    cand.stat.version,
                );
                apply_line("delta", prov.rel, cand.stat.version, decision.bytes, ok);
            }
            RefreshAction::Full { total } => {
                let Some(keys) = fetch_range(set, prov, 0, total, ctx.read_timeout) else {
                    continue;
                };
                let ok = ctx.cache.refresh_replace(key, keys, cand.stat.version);
                apply_line("full", prov.rel, cand.stat.version, decision.bytes, ok);
            }
            RefreshAction::Defer => {
                let ok = ctx.cache.mark_stale(key);
                apply_line("defer", prov.rel, cand.stat.version, 0, ok);
            }
        }
    }
}

fn apply_line(action: &str, rel: RelId, version: u64, bytes: u64, applied: bool) {
    println!(
        "{{\"type\":\"refresh_apply\",\"action\":\"{action}\",\"rel\":{},\
         \"version\":{version},\"bytes\":{bytes},\"applied\":{applied}}}",
        rel.0,
    );
}

/// Fetch tuple indices `[from, to)` of the scan described by `prov` from
/// the best live endpoint of its group — a miniature blocking client for
/// the window protocol. The wrapper paces delivery with the scan's real
/// delay model, so this costs what any scan of `to - from` tuples costs.
fn fetch_range(
    set: &ReplicaSet,
    prov: &ScanProvenance,
    from: u64,
    to: u64,
    read_timeout: Duration,
) -> Option<Vec<u64>> {
    let (_, addr) = set.select()?;
    let sockaddr = addr.to_socket_addrs().ok()?.next()?;
    let mut conn = TcpStream::connect_timeout(&sockaddr, CONNECT_TIMEOUT).ok()?;
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(read_timeout)).ok();
    write_frame(
        &mut conn,
        &Frame::Open {
            rel: prov.rel,
            total: to,
            window: prov.window,
            seed: prov.seed,
            stream: prov.stream.clone(),
            delay: prov.delay.clone(),
            resume_from: from,
        },
    )
    .ok()?;
    let want = (to - from) as usize;
    let mut keys: Vec<u64> = Vec::with_capacity(want);
    loop {
        match read_frame(&mut conn) {
            Ok(Some(Frame::TupleBatch { rel, keys: batch })) if rel == prov.rel => {
                let granted = batch.len() as u32;
                keys.extend(batch);
                write_frame(
                    &mut conn,
                    &Frame::WindowGrant {
                        rel: prov.rel,
                        credits: granted,
                    },
                )
                .ok()?;
            }
            Ok(Some(Frame::Eof { rel })) if rel == prov.rel => break,
            _ => return None,
        }
    }
    (keys.len() == want).then_some(keys)
}
