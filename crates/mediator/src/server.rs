//! The serving mediator: admission control + per-session query runs.
//!
//! A [`MediatorServer`] accepts client connections. Each connection
//! submits one query (a `Submit` frame carrying a JSON workload spec) and
//! gets back the session lifecycle as frames:
//!
//! ```text
//! Submit ─→ Rejected                        (bad spec / backlog full)
//!        └→ Queued* ─→ Accepted ─→ Trace* ─→ Done | Error
//! ```
//!
//! Admission is the sans-io `dqs_core::session::SessionTable` behind a
//! mutex: at most `max_concurrent` sessions execute at once, each query
//! re-planned under `memory_bytes / max_concurrent` — the §4 memory bound
//! applied per-session so concurrent queries cannot starve each other —
//! and a bounded FIFO backlog absorbs bursts. Each admitted session runs
//! a full engine on its own [`RealTimeDriver`]: in-process threaded
//! wrappers by default, or `RemoteWrapper`s dialled out to the configured
//! wrapper-server addresses.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dqs_core::session::{Decision, SessionConfig, SessionStats, SessionTable};
use dqs_core::DsePolicy;
use dqs_exec::spec::WorkloadSpec;
use dqs_exec::{
    Engine, EngineObserver, JsonLinesSink, MaPolicy, Policy, RealTimeDriver, RunError, RunMetrics,
    ScramblingPolicy, SeqPolicy, Workload,
};
use dqs_source::net::{read_frame, write_frame, Frame};
use dqs_source::{BoxSource, RemoteOpen, RemoteWrapper, SourceError};

/// Mediator service configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Queries allowed to execute simultaneously.
    pub max_concurrent: usize,
    /// Submissions allowed to wait beyond the running set.
    pub backlog: usize,
    /// Global memory budget partitioned across running sessions, bytes.
    pub memory_bytes: u64,
    /// Wrapper-server addresses; empty means in-process threaded wrappers.
    /// Relation `i` is served by `wrappers[i % len]`.
    pub wrappers: Vec<String>,
    /// Read timeout on wrapper sockets (a silent wrapper faults the run).
    pub read_timeout: Duration,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            max_concurrent: 2,
            backlog: 8,
            memory_bytes: 64 << 20,
            wrappers: Vec::new(),
            read_timeout: Duration::from_secs(30),
        }
    }
}

struct Shared {
    table: Mutex<SessionTable>,
    /// Signalled whenever a slot frees (queued sessions re-check).
    cond: Condvar,
    opts: ServeOpts,
    stop: AtomicBool,
}

/// The mediator service: accept loop + session threads.
#[derive(Debug)]
pub struct MediatorServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("opts", &self.opts).finish()
    }
}

impl MediatorServer {
    /// Bind and start serving. Port 0 picks an ephemeral port; see
    /// [`MediatorServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, opts: ServeOpts) -> io::Result<MediatorServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            table: Mutex::new(SessionTable::new(SessionConfig {
                max_concurrent: opts.max_concurrent,
                backlog: opts.backlog,
                memory_bytes: opts.memory_bytes,
            })),
            cond: Condvar::new(),
            opts,
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(conn) = conn else { continue };
                conn.set_nodelay(true).ok();
                let session_shared = Arc::clone(&accept_shared);
                thread::spawn(move || serve_client(conn, session_shared));
            }
        });
        Ok(MediatorServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Admission counters (running/queued sessions, memory accounting).
    pub fn stats(&self) -> SessionStats {
        self.shared.table.lock().unwrap().stats()
    }

    /// Stop accepting and join the accept thread. Sessions already
    /// running finish on their own threads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        TcpStream::connect(self.addr).ok();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }

    /// Park the calling thread while the server runs (the `dqs serve`
    /// foreground loop).
    pub fn run_forever(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// Frame-level reply helper; errors mean the client is gone, which never
/// aborts the server.
fn reply(conn: &mut TcpStream, frame: &Frame) -> bool {
    write_frame(conn, frame).is_ok()
}

/// One client connection: read the submission, walk it through admission,
/// run it, stream the outcome.
fn serve_client(mut conn: TcpStream, shared: Arc<Shared>) {
    // A client that connects and says nothing must not hold a thread
    // forever.
    conn.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let submit = match read_frame(&mut conn) {
        Ok(Some(Frame::Submit {
            strategy,
            trace,
            seed,
            spec_json,
        })) => (strategy, trace, seed, spec_json),
        Ok(Some(_)) | Ok(None) | Err(_) => return,
    };
    let (strategy, trace, seed, spec_json) = submit;

    // Validate before admission: a bad spec must not consume a slot.
    if !matches!(strategy.as_str(), "seq" | "ma" | "scr" | "dse") {
        reply(
            &mut conn,
            &Frame::Rejected {
                reason: format!("unknown strategy {strategy:?} (seq|ma|scr|dse)"),
            },
        );
        return;
    }
    let mut workload =
        match WorkloadSpec::from_json(&spec_json).and_then(WorkloadSpec::into_workload) {
            Ok(w) => w,
            Err(e) => {
                reply(
                    &mut conn,
                    &Frame::Rejected {
                        reason: e.to_string(),
                    },
                );
                return;
            }
        };
    if let Some(seed) = seed {
        workload.config.seed = seed;
    }

    // Admission.
    let (session, memory_bytes) = {
        let mut table = shared.table.lock().unwrap();
        match table.submit() {
            Decision::Reject { reason } => {
                drop(table);
                reply(&mut conn, &Frame::Rejected { reason });
                return;
            }
            Decision::Admit {
                session,
                memory_bytes,
            } => (session, memory_bytes),
            Decision::Queue { session, position } => {
                let memory = table.partition_bytes();
                // Tell the client it waits, then wait for promotion.
                drop(table);
                if !reply(
                    &mut conn,
                    &Frame::Queued {
                        position: position as u32,
                    },
                ) {
                    let mut table = shared.table.lock().unwrap();
                    table.finish(session);
                    return;
                }
                let mut table = shared.table.lock().unwrap();
                while !table.is_running(session) {
                    if shared.stop.load(Ordering::SeqCst) {
                        table.finish(session);
                        return;
                    }
                    let (t, _) = shared
                        .cond
                        .wait_timeout(table, Duration::from_millis(200))
                        .unwrap();
                    table = t;
                }
                (session, memory)
            }
        }
    };

    // From here on the slot is held: every exit path must release it —
    // and release it *before* the terminal frame goes out, so a client
    // that saw the outcome never observes its session still counted as
    // running.
    let terminal = run_admitted_session(
        &mut conn,
        &shared,
        session,
        memory_bytes,
        &strategy,
        trace,
        workload,
    );
    {
        let mut table = shared.table.lock().unwrap();
        table.finish(session);
    }
    shared.cond.notify_all();
    if let Some(frame) = terminal {
        reply(&mut conn, &frame);
    }
    conn.shutdown(Shutdown::Both).ok();
}

/// Execute an admitted session, streaming progress frames; returns the
/// terminal frame the caller sends after releasing the slot.
fn run_admitted_session(
    conn: &mut TcpStream,
    shared: &Shared,
    session: u64,
    memory_bytes: u64,
    strategy: &str,
    trace: bool,
    mut workload: Workload,
) -> Option<Frame> {
    if !reply(
        conn,
        &Frame::Accepted {
            session,
            memory_bytes,
        },
    ) {
        return None;
    }
    // The session's query plans against its partition, not the global
    // budget.
    workload.config.memory_bytes = memory_bytes;

    // Build the driver: remote wrappers when configured, else in-process
    // threads.
    let driver = if shared.opts.wrappers.is_empty() {
        Ok(RealTimeDriver::new())
    } else {
        connect_remote_sources(&workload, &shared.opts)
    };
    let driver = match driver {
        Ok(d) => d,
        Err(e) => {
            return Some(Frame::Error {
                code: 2,
                message: format!("wrapper connect failed: {e}"),
            });
        }
    };

    let sink = JsonLinesSink::new(TraceFrames {
        conn: conn.try_clone().ok(),
        enabled: trace,
        line: Vec::new(),
    });
    let result = run_with_strategy(strategy, &workload, sink, driver);
    Some(match result {
        Ok(m) => Frame::Done {
            metrics_json: metrics_json(&m),
        },
        Err(e) => Frame::Error {
            code: 1,
            message: e.to_string(),
        },
    })
}

/// Dial a `RemoteWrapper` for every catalog relation, spreading relations
/// round-robin over the configured wrapper addresses.
fn connect_remote_sources(
    workload: &Workload,
    opts: &ServeOpts,
) -> Result<RealTimeDriver, SourceError> {
    let wrappers = &opts.wrappers;
    let timeout = opts.read_timeout;
    let catalog: Vec<_> = workload
        .catalog
        .iter()
        .map(|(rel, spec)| (rel, spec.name.clone()))
        .collect();
    RealTimeDriver::try_with_sources(|notify| {
        let mut sources: Vec<BoxSource> = Vec::with_capacity(catalog.len());
        for (rel, name) in &catalog {
            let addr = &wrappers[rel.0 as usize % wrappers.len()];
            let open = RemoteOpen {
                rel: *rel,
                total: workload.actual_cardinality(*rel),
                window: workload.config.queue_capacity as u32,
                seed: workload.config.seed,
                stream: format!("wrapper:{name}"),
                delay: workload.delays[rel.0 as usize].clone(),
            };
            let w = RemoteWrapper::connect(addr.as_str(), open, notify.clone(), timeout)?;
            sources.push(Box::new(w));
        }
        Ok(sources)
    })
}

/// Run `workload` under the named strategy on `driver`, reporting events
/// to `observer`.
fn run_with_strategy<O: EngineObserver>(
    strategy: &str,
    workload: &Workload,
    observer: O,
    driver: RealTimeDriver,
) -> Result<RunMetrics, RunError> {
    fn go<P: Policy, O: EngineObserver>(
        w: &Workload,
        p: P,
        o: O,
        d: RealTimeDriver,
    ) -> Result<RunMetrics, RunError> {
        Engine::with_driver(w, p, o, d).try_run()
    }
    match strategy {
        "seq" => go(workload, SeqPolicy, observer, driver),
        "ma" => go(workload, MaPolicy::default(), observer, driver),
        "scr" => go(workload, ScramblingPolicy::new(), observer, driver),
        // Validated at submission; default cannot be reached with other
        // names.
        _ => go(workload, DsePolicy::new(), observer, driver),
    }
}

/// A `Write` sink that forwards each completed JSON line to the client as
/// a `Trace` frame (or discards it when tracing is off). Write errors are
/// swallowed: losing the trace must not abort the query.
#[derive(Debug)]
struct TraceFrames {
    conn: Option<TcpStream>,
    enabled: bool,
    line: Vec<u8>,
}

impl Write for TraceFrames {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.enabled || self.conn.is_none() {
            return Ok(buf.len());
        }
        for &b in buf {
            if b == b'\n' {
                let line = String::from_utf8_lossy(&self.line).into_owned();
                self.line.clear();
                if let Some(conn) = &mut self.conn {
                    if write_frame(conn, &Frame::Trace { line }).is_err() {
                        self.conn = None; // client gone; stop trying
                    }
                }
            } else {
                self.line.push(b);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Flat JSON rendering of a finished run's metrics (the `Done` payload).
pub fn metrics_json(m: &RunMetrics) -> String {
    let queries: Vec<String> = m
        .query_responses
        .iter()
        .map(|(q, t)| format!("[{q},{}]", t.as_secs_f64()))
        .collect();
    format!(
        "{{\"strategy\":\"{}\",\"seed\":{},\"response_secs\":{},\
         \"output_tuples\":{},\"cpu_busy_secs\":{},\"stall_secs\":{},\
         \"batches\":{},\"plans\":{},\"end_of_qf\":{},\"rate_changes\":{},\
         \"timeouts\":{},\"memory_overflows\":{},\"degradations\":{},\
         \"memory_high_water\":{},\"events\":{},\"query_responses\":[{}]}}",
        m.strategy,
        m.seed,
        m.response_secs(),
        m.output_tuples,
        m.cpu_busy.as_secs_f64(),
        m.stall_time.as_secs_f64(),
        m.batches,
        m.plans,
        m.end_of_qf,
        m.rate_changes,
        m.timeouts,
        m.memory_overflows,
        m.degradations,
        m.memory_high_water,
        m.events,
        queries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_is_parseable_and_carries_the_cardinality() {
        let mut m = RunMetrics {
            strategy: "dse",
            seed: 42,
            ..RunMetrics::default()
        };
        m.output_tuples = 90_000;
        let text = metrics_json(&m);
        let v = dqs_exec::json::parse(&text).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("output_tuples").and_then(|v| v.as_u64()), Some(90_000));
        assert_eq!(
            get("strategy").and_then(|v| v.as_str()),
            Some("dse"),
            "{text}"
        );
    }
}
