//! The serving mediator: an event-driven core + per-session query runs.
//!
//! A [`MediatorServer`] accepts client connections. Each connection
//! submits one query (a `Submit` frame carrying a JSON workload spec) and
//! gets back the session lifecycle as frames:
//!
//! ```text
//! Submit ─→ Rejected                        (bad spec / backlog full)
//!        └→ Queued* ─→ Accepted ─→ Trace* ─→ Done | Error
//! ```
//!
//! # Architecture (C10K)
//!
//! Connections are *not* threads. A small set of I/O workers (one
//! [`dqs_reactor::Poller`] each, `io_threads` of them) owns every client
//! socket: sockets are non-blocking, reads go through an incremental
//! [`FrameDecoder`] and writes through a resumable [`WriteBuffer`], so a
//! partial frame in either direction costs buffered bytes, never a
//! blocked thread. Connections are assigned to workers by
//! `conn_id % io_threads`; cross-thread hand-off (engine → socket) goes
//! through a sharded connection map (`session_shards` lock stripes) plus
//! a per-worker mailbox and [`dqs_reactor::Waker`].
//!
//! Query *execution* stays blocking by design — each admitted session
//! runs a full engine on its own [`RealTimeDriver`] — but on a fixed pool
//! of `max_concurrent` executor threads. Since admission already caps
//! running sessions at `max_concurrent`, the pool is never the
//! bottleneck, and the other ten thousand connections (queued sessions,
//! idle clients, slow readers) hold only a file descriptor and a few
//! hundred bytes of state.
//!
//! Admission is the sans-io `dqs_core::session::SessionTable` behind a
//! single mutex shared by I/O workers (submit, disconnect) and executor
//! threads (finish, promote): at most `max_concurrent` sessions execute
//! at once, each query re-planned under `memory_bytes / max_concurrent`
//! — the §4 memory bound applied per-session so concurrent queries
//! cannot starve each other — and a bounded FIFO backlog absorbs bursts.
//! A `backlog_depth` gauge in [`ServerMetrics`] tracks every queue /
//! dequeue transition.
//!
//! Backpressure: a client that stops reading grows its own write buffer
//! and nothing else. Past a high-water mark its `Trace` frames are
//! dropped (counted in [`ServerMetrics`]); lifecycle frames are always
//! queued, and a draining connection that stays stalled is cut by a
//! timer-wheel deadline.
//!
//! Wrapper specs may declare replica groups (`id=host:port,host:port`),
//! in which case each scan opens on the best live endpoint of its group
//! (rate-aware, via `dqs_replica::ReplicaSet`) through a `FailoverSource`
//! that survives mid-scan endpoint deaths, and a background prober keeps
//! the health tables fresh between sessions.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dqs_cache::{payload_bytes, CacheConfig, CacheKey, CacheStats, SharedCache};
use dqs_core::session::{AdmissionPolicy, Decision, SessionConfig, SessionStats, SessionTable};
use dqs_core::{DsePolicy, LatencyHistogram};
use dqs_exec::spec::WorkloadSpec;
use dqs_exec::{
    Engine, EngineEvent, EngineObserver, JsonLinesSink, MaPolicy, Policy, RealTimeDriver, RunError,
    RunMetrics, ScramblingPolicy, SeqPolicy, SpmPolicy, WorkerPool, Workload,
};
use dqs_reactor::{Events, Interest, Poller, TimerId, TimerWheel, Token, Waker};
use dqs_refresh::{RefreshPlanner, ScanProvenance};
use dqs_relop::RelId;
use dqs_replica::{parse_groups, HealthConfig, ReplicaSet};
use dqs_sim::{SeedSplitter, SimTime};
use dqs_source::net::{FlushStatus, Frame, FrameDecoder, WriteBuffer};
use dqs_source::{
    BoxSource, FailoverOpts, FailoverSource, RecordingSource, RemoteOpen, RemoteWrapper,
    ReplaySource, SourceError, ThreadedWrapper,
};

use crate::refresher::{self, RefreshState, RefresherCtx};

/// How often the background prober re-checks replica endpoint liveness.
const PROBE_INTERVAL: Duration = Duration::from_millis(500);
/// Connect timeout for a single liveness probe.
const PROBE_TIMEOUT: Duration = Duration::from_millis(200);
/// A connection that says nothing gets this long to send its `Submit`.
const SUBMIT_TIMEOUT: Duration = Duration::from_secs(60);
/// A terminal frame queued behind a stalled client waits at most this
/// long before the connection is cut.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);
/// Write-buffer high-water mark: past this, `Trace` frames (and only
/// `Trace` frames) are dropped rather than buffered without bound.
const WRITE_HWM: usize = 256 * 1024;
/// Reactor token for the listening socket (owned by I/O worker 0).
const LISTENER_TOKEN: Token = Token(u64::MAX - 1);

/// Mediator service configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Queries allowed to execute simultaneously.
    pub max_concurrent: usize,
    /// Submissions allowed to wait beyond the running set.
    pub backlog: usize,
    /// Global memory budget partitioned across running sessions, bytes.
    pub memory_bytes: u64,
    /// Wrapper group specs; empty means in-process threaded wrappers.
    /// Each spec is `;`-separated chunks of either `id=host:port,host:port`
    /// (one logical wrapper with N interchangeable replicas) or bare
    /// `host:port` addresses (each its own single-endpoint wrapper, the
    /// pre-replica spelling). Relation `i` is served by group `i % groups`.
    pub wrappers: Vec<String>,
    /// Read timeout on wrapper sockets (a silent wrapper faults the run).
    pub read_timeout: Duration,
    /// Result-cache budget in bytes; 0 disables the cache. The budget is
    /// carved out of `memory_bytes`, so sessions partition what remains —
    /// §4.2 M-schedulability stays honest about total mediator memory.
    pub cache_bytes: u64,
    /// Per-entry TTL for cached scans; `None` means entries only leave by
    /// LRU eviction or an explicit `Invalidate`.
    pub cache_ttl: Option<Duration>,
    /// Reactor I/O workers, each owning a poller and a share of the
    /// connections. Defaults to cores − 1 (at least 1); 0 is rejected at
    /// bind.
    pub io_threads: usize,
    /// Lock stripes in the connection map engine threads use to route
    /// outbound frames. Defaults to 8; 0 is rejected at bind.
    pub session_shards: usize,
    /// Morsel worker threads in the ONE pool every executing session
    /// shares (`--exec-workers`). 1 (the default) keeps execution serial
    /// and spawns no pool; 0 is rejected at bind. Sharing keeps admission
    /// meaningful: concurrent queries compete for the same workers rather
    /// than each spawning its own set.
    pub exec_workers: usize,
    /// Backlog promotion policy (`--admission fifo|sjf|fair`). SJF
    /// promotes by estimated cost (spec cardinality × delay class), fair
    /// adds per-client aging so long jobs cannot starve.
    pub admission: AdmissionPolicy,
    /// Refresh cycle period (`--refresh-interval-ms`); `None` disables
    /// the background refresher. Requires a cache and remote wrappers —
    /// rejected at bind otherwise.
    pub refresh_interval: Option<Duration>,
    /// Refresh traffic allowance in KiB/s (`--refresh-budget-kbps`),
    /// amortized per cycle; 0 = unlimited.
    pub refresh_budget_kbps: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            max_concurrent: 2,
            backlog: 8,
            memory_bytes: 64 << 20,
            wrappers: Vec::new(),
            read_timeout: Duration::from_secs(30),
            cache_bytes: 0,
            cache_ttl: None,
            io_threads: thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1))
                .unwrap_or(1)
                .max(1),
            session_shards: 8,
            exec_workers: 1,
            admission: AdmissionPolicy::Fifo,
            refresh_interval: None,
            refresh_budget_kbps: 0,
        }
    }
}

/// Live server gauges and counters — the serving-side metrics sink.
/// Cheap atomics, readable at any time via [`MediatorServer::metrics`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    backlog_depth: AtomicU64,
    backlog_enqueued: AtomicU64,
    backlog_dequeued: AtomicU64,
    trace_frames_dropped: AtomicU64,
    connections_accepted: AtomicU64,
    /// Queue wait of the most recently dispatched session, µs (gauge).
    queue_wait_last_us: AtomicU64,
    /// Cumulative queue-wait distribution over every dispatched session.
    queue_wait: Mutex<LatencyHistogram>,
    /// The shared morsel pool, when `exec_workers > 1` — lets operators
    /// read execution-layer gauges from the same sink as the admission
    /// gauges above. Set once at bind.
    exec_pool: std::sync::OnceLock<Arc<WorkerPool>>,
}

impl ServerMetrics {
    /// Sessions currently parked in the admission backlog. Updated on
    /// every `SessionTable` queue and dequeue transition.
    pub fn backlog_depth(&self) -> u64 {
        self.backlog_depth.load(Ordering::Relaxed)
    }

    /// Total sessions ever queued behind the running set.
    pub fn backlog_enqueued(&self) -> u64 {
        self.backlog_enqueued.load(Ordering::Relaxed)
    }

    /// Total sessions that left the backlog (promoted or abandoned).
    pub fn backlog_dequeued(&self) -> u64 {
        self.backlog_dequeued.load(Ordering::Relaxed)
    }

    /// `Trace` frames dropped at the write-buffer high-water mark.
    pub fn trace_frames_dropped(&self) -> u64 {
        self.trace_frames_dropped.load(Ordering::Relaxed)
    }

    /// Client connections accepted since bind.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    /// Morsel workers currently running a task (0 when no pool is
    /// configured — serial execution has no workers to be busy).
    pub fn exec_busy_workers(&self) -> u64 {
        self.exec_pool.get().map_or(0, |p| p.stats().busy_workers)
    }

    /// Morsels submitted to the shared pool but not yet started.
    pub fn exec_queued_morsels(&self) -> u64 {
        self.exec_pool.get().map_or(0, |p| p.stats().queued)
    }

    /// Total morsels a worker stole from another worker's deque.
    pub fn exec_steals(&self) -> u64 {
        self.exec_pool.get().map_or(0, |p| p.stats().stolen)
    }

    /// Queue wait of the most recently dispatched session, microseconds
    /// (zero for direct admits) — a gauge tracking what the admission
    /// policy is currently costing arrivals.
    pub fn queue_wait_last_us(&self) -> u64 {
        self.queue_wait_last_us.load(Ordering::Relaxed)
    }

    /// Snapshot of the cumulative queue-wait histogram over every
    /// session dispatched since bind (log-bucketed; see
    /// [`LatencyHistogram`]).
    pub fn queue_wait_histogram(&self) -> LatencyHistogram {
        self.queue_wait.lock().unwrap().clone()
    }

    fn record_queue_wait(&self, us: u64) {
        self.queue_wait_last_us.store(us, Ordering::Relaxed);
        self.queue_wait.lock().unwrap().record_us(us);
    }

    fn queue_push(&self) {
        self.backlog_depth.fetch_add(1, Ordering::Relaxed);
        self.backlog_enqueued.fetch_add(1, Ordering::Relaxed);
    }

    fn queue_pop(&self) {
        self.backlog_depth.fetch_sub(1, Ordering::Relaxed);
        self.backlog_dequeued.fetch_add(1, Ordering::Relaxed);
    }
}

/// An admitted (or queued) submission, ready for an executor thread.
struct Job {
    conn_id: u64,
    session: u64,
    memory_bytes: u64,
    strategy: String,
    trace: bool,
    no_cache: bool,
    workload: Workload,
}

/// Admission state: the sans-io table plus the jobs parked in its
/// backlog, under ONE mutex so an executor promoting a session and an
/// I/O worker reaping a disconnected queued client can never double-count
/// a slot.
struct Admission {
    table: SessionTable,
    queued: HashMap<u64, Job>,
}

/// Ready-to-run jobs for the executor pool.
struct ExecQueue {
    jobs: Mutex<VecDeque<Job>>,
    cond: Condvar,
}

impl ExecQueue {
    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push_back(job);
        self.cond.notify_one();
    }

    /// Next job, or `None` once `stop` is raised.
    fn pop(&self, stop: &AtomicBool) -> Option<Job> {
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            let (j, _) = self
                .cond
                .wait_timeout(jobs, Duration::from_millis(200))
                .unwrap();
            jobs = j;
        }
    }
}

/// Mailbox messages delivered to an I/O worker (always paired with a
/// waker ding).
enum Msg {
    /// A freshly accepted connection this worker now owns.
    Adopt(u64, TcpStream),
    /// Queue a progress frame for a connection.
    Frame(u64, Frame),
    /// Queue the terminal frame: flush it, then close the connection.
    Terminal(u64, Frame),
}

/// One I/O worker's front door: its mailbox plus the waker that makes its
/// poller notice the mail.
#[derive(Clone)]
struct WorkerHandle {
    mailbox: Arc<Mutex<VecDeque<Msg>>>,
    waker: Waker,
}

impl WorkerHandle {
    fn send(&self, msg: Msg) {
        self.mailbox.lock().unwrap().push_back(msg);
        self.waker.wake();
    }
}

/// The sharded connection map: which connections are alive, striped over
/// `session_shards` locks so engine threads streaming traces for
/// different sessions never contend on one mutex. Routing is
/// deterministic (`conn_id % io_threads`); the map's job is liveness.
struct ConnMap {
    shards: Vec<Mutex<std::collections::HashSet<u64>>>,
    workers: Vec<WorkerHandle>,
}

impl ConnMap {
    fn shard(&self, conn_id: u64) -> &Mutex<std::collections::HashSet<u64>> {
        &self.shards[conn_id as usize % self.shards.len()]
    }

    fn insert(&self, conn_id: u64) {
        self.shard(conn_id).lock().unwrap().insert(conn_id);
    }

    fn remove(&self, conn_id: u64) {
        self.shard(conn_id).lock().unwrap().remove(&conn_id);
    }

    fn contains(&self, conn_id: u64) -> bool {
        self.shard(conn_id).lock().unwrap().contains(&conn_id)
    }

    /// Route a message to the worker owning `conn_id`; `false` if the
    /// connection is gone (the message is dropped, not queued).
    fn send(&self, conn_id: u64, msg: Msg) -> bool {
        if !self.contains(conn_id) {
            return false;
        }
        self.workers[conn_id as usize % self.workers.len()].send(msg);
        true
    }
}

struct Shared {
    admission: Mutex<Admission>,
    exec: ExecQueue,
    opts: ServeOpts,
    /// The wrapper result cache all sessions share; `None` when disabled.
    cache: Option<Arc<SharedCache>>,
    /// One health-tracked replica set per parsed wrapper group; empty when
    /// the mediator runs in-process wrappers.
    replica_sets: Vec<Arc<ReplicaSet>>,
    /// Scan provenance + wrapper stats shared between session builds and
    /// the refresher thread; `None` when refresh is disabled.
    refresh: Option<Arc<RefreshState>>,
    conns: ConnMap,
    metrics: Arc<ServerMetrics>,
    /// The process's ONE morsel worker pool, shared by every executing
    /// session; `None` when `exec_workers == 1` (serial execution).
    pool: Option<Arc<WorkerPool>>,
    stop: AtomicBool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("opts", &self.opts).finish()
    }
}

/// The mediator service: reactor I/O workers + executor pool.
#[derive(Debug)]
pub struct MediatorServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    io_workers: Vec<JoinHandle<()>>,
    exec_workers: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
}

impl MediatorServer {
    /// Bind and start serving. Port 0 picks an ephemeral port; see
    /// [`MediatorServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, opts: ServeOpts) -> io::Result<MediatorServer> {
        // The cache budget comes out of the global memory budget; sessions
        // partition the remainder. A cache that leaves no session memory is
        // a configuration error, not something to discover at first Submit.
        if opts.cache_bytes >= opts.memory_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "cache budget ({} bytes) must leave session memory within the global budget ({} bytes)",
                    opts.cache_bytes, opts.memory_bytes
                ),
            ));
        }
        // Zero workers or zero shards cannot serve anything; reject at
        // bind, not at first connection.
        if opts.io_threads == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "io_threads must be at least 1",
            ));
        }
        if opts.session_shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "session_shards must be at least 1",
            ));
        }
        if opts.exec_workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "exec_workers must be at least 1",
            ));
        }
        // The refresher keeps *cached* scans current against *remote*
        // wrappers; without both it has nothing to poll or refresh.
        if opts.refresh_interval.is_some() && (opts.cache_bytes == 0 || opts.wrappers.is_empty()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "refresh requires a result cache (--cache-mb > 0) and remote wrappers",
            ));
        }
        let cache = (opts.cache_bytes > 0).then(|| {
            SharedCache::new(CacheConfig {
                budget_bytes: opts.cache_bytes,
                ttl_ms: opts.cache_ttl.map(|d| d.as_millis() as u64),
            })
        });
        // A malformed wrapper spec is a bind-time error, not something to
        // discover at first Submit.
        let replica_sets: Vec<Arc<ReplicaSet>> = if opts.wrappers.is_empty() {
            Vec::new()
        } else {
            parse_groups(&opts.wrappers)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?
                .into_iter()
                .map(|g| Arc::new(ReplicaSet::new(g, HealthConfig::default())))
                .collect()
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Build the pollers (and grab their wakers) before the worker
        // threads exist, so the shared state can hold every handle.
        let mut pollers = Vec::with_capacity(opts.io_threads);
        let mut handles = Vec::with_capacity(opts.io_threads);
        for _ in 0..opts.io_threads {
            let poller = Poller::new()?;
            handles.push(WorkerHandle {
                mailbox: Arc::new(Mutex::new(VecDeque::new())),
                waker: poller.waker(),
            });
            pollers.push(poller);
        }
        // One pool for the whole service: every session's morsels land on
        // the same `exec_workers` threads, so intra-query parallelism never
        // multiplies with `max_concurrent`.
        let pool = (opts.exec_workers > 1).then(|| WorkerPool::new(opts.exec_workers));
        let refresh = opts
            .refresh_interval
            .map(|_| Arc::new(RefreshState::default()));
        let metrics = Arc::new(ServerMetrics::default());
        if let Some(p) = &pool {
            let _ = metrics.exec_pool.set(Arc::clone(p));
        }
        let shared = Arc::new(Shared {
            admission: Mutex::new(Admission {
                table: SessionTable::new(SessionConfig {
                    max_concurrent: opts.max_concurrent,
                    backlog: opts.backlog,
                    memory_bytes: opts.memory_bytes - opts.cache_bytes,
                    policy: opts.admission,
                    ..SessionConfig::default()
                }),
                queued: HashMap::new(),
            }),
            exec: ExecQueue {
                jobs: Mutex::new(VecDeque::new()),
                cond: Condvar::new(),
            },
            conns: ConnMap {
                shards: (0..opts.session_shards)
                    .map(|_| Mutex::new(std::collections::HashSet::new()))
                    .collect(),
                workers: handles.clone(),
            },
            metrics,
            opts,
            cache,
            replica_sets,
            refresh,
            pool,
            stop: AtomicBool::new(false),
        });

        let mut listener = Some(listener);
        let io_workers: Vec<JoinHandle<()>> = pollers
            .into_iter()
            .enumerate()
            .map(|(idx, poller)| {
                let worker = IoWorker {
                    idx,
                    shared: Arc::clone(&shared),
                    poller,
                    listener: listener.take(),
                    mailbox: Arc::clone(&handles[idx].mailbox),
                    conns: HashMap::new(),
                    timers: TimerWheel::new(Duration::from_millis(100), 64),
                    next_conn_id: 0,
                };
                thread::Builder::new()
                    .name(format!("dqs-io-{idx}"))
                    .spawn(move || worker.run())
                    .expect("spawn io worker")
            })
            .collect();
        let exec_workers: Vec<JoinHandle<()>> = (0..shared.opts.max_concurrent.max(1))
            .map(|idx| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dqs-exec-{idx}"))
                    .spawn(move || {
                        while let Some(job) = shared.exec.pop(&shared.stop) {
                            run_job(&shared, job);
                        }
                    })
                    .expect("spawn exec worker")
            })
            .collect();
        let prober = (!shared.replica_sets.is_empty()).then(|| {
            let probe_shared = Arc::clone(&shared);
            thread::spawn(move || probe_replicas(&probe_shared))
        });
        let refresher = match (shared.opts.refresh_interval, &shared.cache, &shared.refresh) {
            (Some(interval), Some(cache), Some(state)) => {
                let ctx = RefresherCtx {
                    cache: Arc::clone(cache),
                    sets: shared.replica_sets.clone(),
                    state: Arc::clone(state),
                    planner: RefreshPlanner::from_rate(shared.opts.refresh_budget_kbps, interval),
                    interval,
                    read_timeout: shared.opts.read_timeout,
                };
                let refresh_shared = Arc::clone(&shared);
                Some(thread::spawn(move || {
                    refresher::run_refresher(&ctx, &refresh_shared.stop)
                }))
            }
            _ => None,
        };
        Ok(MediatorServer {
            addr,
            shared,
            io_workers,
            exec_workers,
            prober,
            refresher,
        })
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Admission counters (running/queued sessions, memory accounting).
    pub fn stats(&self) -> SessionStats {
        self.shared.admission.lock().unwrap().table.stats()
    }

    /// Result-cache counters, when a cache is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.as_ref().map(|c| c.stats())
    }

    /// The live serving-side metrics sink (backlog depth gauge, dropped
    /// trace frames, accepted connections).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Point-in-time health of every replica endpoint, grouped by logical
    /// wrapper id; empty when no wrapper groups are configured.
    pub fn replica_health(&self) -> Vec<(String, Vec<dqs_replica::EndpointSnapshot>)> {
        self.shared
            .replica_sets
            .iter()
            .map(|s| (s.id().to_string(), s.snapshot()))
            .collect()
    }

    /// Stop accepting, sever live client connections, and join every
    /// service thread — I/O workers, the executor pool, the replica
    /// prober, and the refresher — so tests and CI shut the mediator down without leaking
    /// threads or relying on process exit. Executors finish their current
    /// query first (an engine run cannot be interrupted mid-flight).
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for handle in &self.shared.conns.workers {
            handle.waker.wake();
        }
        self.shared.exec.cond.notify_all();
        for h in self.io_workers.drain(..) {
            h.join().ok();
        }
        for h in self.exec_workers.drain(..) {
            h.join().ok();
        }
        if let Some(t) = self.prober.take() {
            t.join().ok();
        }
        if let Some(t) = self.refresher.take() {
            t.join().ok();
        }
    }

    /// Park the calling thread while the server runs (the `dqs serve`
    /// foreground loop).
    pub fn run_forever(mut self) {
        for h in self.io_workers.drain(..) {
            h.join().ok();
        }
    }
}

// --- the I/O worker ---------------------------------------------------------

/// Where one connection is in its lifecycle.
enum ConnState {
    /// Waiting for the first frame (`Submit` or `Invalidate`).
    AwaitSubmit,
    /// Submitted and owned by a session (queued or running).
    InSession { session: u64 },
    /// Conversation over; nothing left but flushing and closing.
    Closing,
}

/// Per-connection state machine, owned by exactly one I/O worker.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    wb: WriteBuffer,
    state: ConnState,
    /// Currently registered interest (to avoid redundant `modify` calls).
    interest: Interest,
    /// Peer's write half is closed; stop asking for readability.
    eof: bool,
    /// Close once the write buffer drains.
    closing: bool,
    /// Pending submit/drain deadline in the worker's timer wheel.
    timer: Option<TimerId>,
}

struct IoWorker {
    idx: usize,
    shared: Arc<Shared>,
    poller: Poller,
    /// Worker 0 owns the listening socket.
    listener: Option<TcpListener>,
    mailbox: Arc<Mutex<VecDeque<Msg>>>,
    conns: HashMap<u64, Conn>,
    timers: TimerWheel,
    next_conn_id: u64,
}

impl IoWorker {
    fn run(mut self) {
        if let Some(listener) = &self.listener {
            if self
                .poller
                .register(listener_fd(listener), LISTENER_TOKEN, Interest::READABLE)
                .is_err()
            {
                return;
            }
        }
        let mut events = Events::new();
        let mut expired: Vec<Token> = Vec::new();
        loop {
            let timeout = self.timers.next_deadline(Instant::now());
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            // Mailbox first: adopted connections must exist before any
            // frames routed at them arrive (FIFO per worker guarantees it).
            let msgs: Vec<Msg> = {
                let mut mb = self.mailbox.lock().unwrap();
                mb.drain(..).collect()
            };
            for msg in msgs {
                match msg {
                    Msg::Adopt(id, stream) => self.adopt(id, stream),
                    Msg::Frame(id, frame) => self.queue_frame(id, frame),
                    Msg::Terminal(id, frame) => self.queue_terminal(id, frame),
                }
            }
            for ev in events.iter().copied() {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                let id = ev.token.0;
                if ev.readable {
                    self.readable(id);
                }
                if ev.writable && self.conns.contains_key(&id) {
                    self.flush(id);
                }
                if ev.hangup && !ev.readable && self.conns.contains_key(&id) {
                    self.close(id);
                }
            }
            expired.clear();
            self.timers.advance(Instant::now(), &mut expired);
            for t in &expired {
                // Both deadlines — submit and drain — mean "cut it".
                if self.conns.contains_key(&t.0) {
                    self.close(t.0);
                }
            }
        }
        // Shutdown: sever everything this worker owns.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close(id);
        }
    }

    /// Drain the accept queue (worker 0 only), assigning each connection
    /// to a worker round-robin by id.
    fn accept_ready(&mut self) {
        let n_workers = self.shared.conns.workers.len();
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    stream.set_nodelay(true).ok();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.shared
                        .metrics
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    // Liveness entry first, so engine frames route from the
                    // first instant the connection can possibly own a session.
                    self.shared.conns.insert(id);
                    let target = id as usize % n_workers;
                    if target == self.idx {
                        self.adopt(id, stream);
                    } else {
                        self.shared.conns.workers[target].send(Msg::Adopt(id, stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn adopt(&mut self, id: u64, stream: TcpStream) {
        let fd = stream_fd(&stream);
        if self
            .poller
            .register(fd, Token(id), Interest::READABLE)
            .is_err()
        {
            self.shared.conns.remove(id);
            return;
        }
        let timer = self
            .timers
            .schedule(Instant::now(), SUBMIT_TIMEOUT, Token(id));
        self.conns.insert(
            id,
            Conn {
                stream,
                decoder: FrameDecoder::new(),
                wb: WriteBuffer::new(),
                state: ConnState::AwaitSubmit,
                interest: Interest::READABLE,
                eof: false,
                closing: false,
                timer: Some(timer),
            },
        );
    }

    /// Socket readable: drain it through the incremental decoder and act
    /// on every complete frame.
    fn readable(&mut self, id: u64) {
        let mut buf = [0u8; 16 * 1024];
        let mut saw_eof = false;
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => conn.decoder.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
        loop {
            let frame = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                match conn.decoder.next_frame() {
                    Ok(Some(frame)) => frame,
                    Ok(None) => break,
                    Err(_) => {
                        // Oversize or malformed: the stream position is
                        // untrustworthy from here on.
                        self.close(id);
                        return;
                    }
                }
            };
            self.on_frame(id, frame);
        }
        if saw_eof {
            self.on_eof(id);
        }
    }

    fn on_frame(&mut self, id: u64, frame: Frame) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        match conn.state {
            ConnState::AwaitSubmit => {
                if let Some(t) = conn.timer.take() {
                    self.timers.cancel(t);
                }
                match frame {
                    Frame::Submit {
                        strategy,
                        trace,
                        no_cache,
                        seed,
                        spec_json,
                    } => self.on_submit(id, strategy, trace, no_cache, seed, spec_json),
                    // A refresh request is a complete conversation of its
                    // own: drop the named scans (or everything) and report
                    // what was freed.
                    Frame::Invalidate { rel, wrapper } => {
                        let (entries, bytes) = match &self.shared.cache {
                            Some(cache) => cache.invalidate(rel, wrapper.as_deref()),
                            None => (0, 0),
                        };
                        self.queue_terminal(id, Frame::Invalidated { entries, bytes });
                    }
                    _ => self.close(id),
                }
            }
            // After the submit, inbound bytes only matter as liveness;
            // stray frames are discarded, exactly as the blocking server
            // never read them.
            ConnState::InSession { .. } | ConnState::Closing => {}
        }
    }

    /// Validate, parse, and walk a submission through admission.
    fn on_submit(
        &mut self,
        id: u64,
        strategy: String,
        trace: bool,
        no_cache: bool,
        seed: Option<u64>,
        spec_json: String,
    ) {
        // Validate before admission: a bad spec must not consume a slot.
        if !matches!(strategy.as_str(), "seq" | "ma" | "scr" | "dse" | "spm") {
            self.queue_terminal(
                id,
                Frame::Rejected {
                    reason: format!("unknown strategy {strategy:?} (seq|ma|scr|dse|spm)"),
                },
            );
            return;
        }
        let mut workload =
            match WorkloadSpec::from_json(&spec_json).and_then(WorkloadSpec::into_workload) {
                Ok(w) => w,
                Err(e) => {
                    self.queue_terminal(
                        id,
                        Frame::Rejected {
                            reason: e.to_string(),
                        },
                    );
                    return;
                }
            };
        if let Some(seed) = seed {
            workload.config.seed = seed;
        }
        // The SJF/fair cost estimate: expected wrapper delivery time over
        // the whole spec, computable before the query runs. Cheap, so it
        // happens outside the admission lock even under FIFO.
        let cost_us = estimated_cost_us(&workload);
        let mut admission = self.shared.admission.lock().unwrap();
        match admission.table.submit_with(cost_us, id) {
            Decision::Reject { reason } => {
                drop(admission);
                self.queue_terminal(id, Frame::Rejected { reason });
            }
            Decision::Admit {
                session,
                memory_bytes,
            } => {
                drop(admission);
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.state = ConnState::InSession { session };
                }
                self.shared.exec.push(Job {
                    conn_id: id,
                    session,
                    memory_bytes,
                    strategy,
                    trace,
                    no_cache,
                    workload,
                });
            }
            Decision::Queue { session, position } => {
                let memory_bytes = admission.table.partition_bytes();
                admission.queued.insert(
                    session,
                    Job {
                        conn_id: id,
                        session,
                        memory_bytes,
                        strategy,
                        trace,
                        no_cache,
                        workload,
                    },
                );
                drop(admission);
                self.shared.metrics.queue_push();
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.state = ConnState::InSession { session };
                }
                self.queue_frame(
                    id,
                    Frame::Queued {
                        position: position as u32,
                    },
                );
            }
        }
    }

    /// The peer closed its write half. A draining connection may still be
    /// reading our frames — keep flushing under the drain deadline; any
    /// other state means the client is gone.
    fn on_eof(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.eof = true;
        if conn.closing && !conn.wb.is_empty() {
            self.update_interest(id);
        } else {
            self.close(id);
        }
    }

    /// Stage a progress frame, enforcing the trace high-water mark.
    fn queue_frame(&mut self, id: u64, frame: Frame) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.closing {
            return;
        }
        if matches!(frame, Frame::Trace { .. }) && conn.wb.pending() > WRITE_HWM {
            self.shared
                .metrics
                .trace_frames_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        conn.wb.push(&frame);
        self.flush(id);
    }

    /// Stage the terminal frame; the connection closes once it drains
    /// (or the drain deadline fires).
    fn queue_terminal(&mut self, id: u64, frame: Frame) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.closing {
            return;
        }
        conn.wb.push(&frame);
        conn.closing = true;
        conn.state = ConnState::Closing;
        if let Some(t) = conn.timer.take() {
            self.timers.cancel(t);
        }
        conn.timer = Some(
            self.timers
                .schedule(Instant::now(), DRAIN_TIMEOUT, Token(id)),
        );
        self.flush(id);
    }

    /// Push buffered bytes at the socket; close on completion (if
    /// draining) or on error.
    fn flush(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        match conn.wb.flush(&mut conn.stream) {
            Ok(FlushStatus::Flushed) => {
                if conn.closing {
                    self.close(id);
                } else {
                    self.update_interest(id);
                }
            }
            Ok(FlushStatus::Blocked) => self.update_interest(id),
            Err(_) => self.close(id),
        }
    }

    /// Re-register the connection for exactly the readiness it needs now.
    fn update_interest(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let want = match (!conn.eof, !conn.wb.is_empty()) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            // Nothing to wait for; the drain deadline or close handles it.
            (false, false) => Interest::READABLE,
        };
        if want != conn.interest {
            conn.interest = want;
            let fd = stream_fd(&conn.stream);
            self.poller.modify(fd, Token(id), want).ok();
        }
    }

    /// Tear a connection down: deregister, unmap, reap any queued
    /// session, sever the socket.
    fn close(&mut self, id: u64) {
        let Some(mut conn) = self.conns.remove(&id) else {
            return;
        };
        if let Some(t) = conn.timer.take() {
            self.timers.cancel(t);
        }
        self.poller.deregister(stream_fd(&conn.stream)).ok();
        self.shared.conns.remove(id);
        if let ConnState::InSession { session } = conn.state {
            // A queued session whose client left must not wait for (or
            // hold) a slot. The single admission lock means an executor
            // promoting this very session either got there first (the job
            // is gone from `queued`, the engine runs and the frames drop
            // harmlessly) or we reap it here and it never runs.
            let mut admission = self.shared.admission.lock().unwrap();
            if admission.queued.remove(&session).is_some() {
                admission.table.finish(session);
                drop(admission);
                self.shared.metrics.queue_pop();
            }
        }
        conn.stream.shutdown(Shutdown::Both).ok();
    }
}

fn stream_fd(stream: &TcpStream) -> std::os::fd::RawFd {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

fn listener_fd(listener: &TcpListener) -> std::os::fd::RawFd {
    use std::os::fd::AsRawFd;
    listener.as_raw_fd()
}

// --- the executor pool ------------------------------------------------------

/// The admission cost estimate for a parsed workload: expected wrapper
/// delivery time in microseconds, summed over the spec's relations
/// (cardinality × the delay model's mean inter-tuple gap). Under
/// `--admission sjf|fair` this is the promotion key; computed from the
/// spec alone, before the query ever runs.
fn estimated_cost_us(w: &Workload) -> u64 {
    w.catalog
        .iter()
        .map(|(rel, _)| {
            w.delays[rel.0 as usize]
                .expected_total(w.actual_cardinality(rel))
                .as_micros_f64() as u64
        })
        .sum()
}

/// Release `session`'s slot and dispatch whatever the table promotes.
/// Runs under the admission lock so promotion and queued-client
/// disconnect cannot race.
fn finish_and_promote(shared: &Shared, session: u64) {
    let mut admission = shared.admission.lock().unwrap();
    if let Some(promoted) = admission.table.finish(session) {
        if let Some(job) = admission.queued.remove(&promoted) {
            drop(admission);
            shared.metrics.queue_pop();
            shared.exec.push(job);
        }
    }
}

/// Execute one admitted session on this executor thread, streaming
/// progress frames through the connection map.
fn run_job(shared: &Shared, mut job: Job) {
    // How long admission held this session before a slot freed (zero for
    // direct admits) — read before anything can finish the session, fed
    // to the server gauges and stamped onto the Done payload below.
    let queue_wait_secs = {
        let admission = shared.admission.lock().unwrap();
        admission
            .table
            .queue_wait(job.session)
            .unwrap_or_default()
            .as_secs_f64()
    };
    shared
        .metrics
        .record_queue_wait((queue_wait_secs * 1e6) as u64);
    // The client may have left while the job sat in the exec queue (or
    // the backlog); don't burn an engine run on a dead connection.
    if !shared.conns.send(
        job.conn_id,
        Msg::Frame(
            job.conn_id,
            Frame::Accepted {
                session: job.session,
                memory_bytes: job.memory_bytes,
            },
        ),
    ) {
        finish_and_promote(shared, job.session);
        return;
    }
    // The session's query plans against its partition, not the global
    // budget.
    job.workload.config.memory_bytes = job.memory_bytes;
    // Sessions run morsel-parallel on the shared pool when one exists.
    if let Some(pool) = &shared.pool {
        job.workload.config.workers = pool.workers();
    }

    let cache = if job.no_cache {
        None
    } else {
        shared.cache.as_ref()
    };
    let (driver, outcomes, pins) = match build_driver(
        &job.workload,
        &shared.opts,
        &shared.replica_sets,
        cache,
        shared.refresh.as_deref(),
    ) {
        Ok((driver, outcomes, pins)) => {
            let driver = match &shared.pool {
                Some(p) => driver.with_pool(Arc::clone(p)),
                None => driver,
            };
            (driver, outcomes, pins)
        }
        Err(e) => {
            // Slot released *before* the terminal frame goes out, so a
            // client that saw the outcome never observes its session
            // still counted as running.
            finish_and_promote(shared, job.session);
            shared.conns.send(
                job.conn_id,
                Msg::Terminal(
                    job.conn_id,
                    Frame::Error {
                        code: 2,
                        message: format!("wrapper connect failed: {e}"),
                    },
                ),
            );
            return;
        }
    };
    // Remember which endpoint each scan opened on, so operators can ask
    // the admission table where a session's load actually landed.
    if !pins.is_empty() {
        let mut admission = shared.admission.lock().unwrap();
        for (rel, endpoint) in &pins {
            admission.table.record_pin(job.session, rel.0, endpoint);
        }
    }

    let mut sink = JsonLinesSink::new(TraceFrames {
        shared,
        conn_id: job.conn_id,
        enabled: job.trace,
        line: Vec::new(),
    });
    // Cache outcomes are decided before the engine runs (at source build
    // time), so they lead the trace at t=0. The engine's own metrics
    // observer never sees these events; the counters are patched into the
    // final metrics below.
    for o in &outcomes {
        let ev = match o.served {
            Some((tuples, bytes)) => EngineEvent::CacheHit {
                rel: o.rel,
                tuples,
                bytes,
            },
            None => EngineEvent::CacheMiss { rel: o.rel },
        };
        sink.on_event(SimTime::ZERO, &ev);
    }
    let result = run_with_strategy(&job.strategy, &job.workload, sink, driver);
    let terminal = match result {
        Ok(mut m) => {
            for o in &outcomes {
                match o.served {
                    Some((_, bytes)) => {
                        m.cache_hits += 1;
                        m.cache_bytes_served += bytes;
                    }
                    None => m.cache_misses += 1,
                }
            }
            let mut payload = with_queue_wait(metrics_json(&m), queue_wait_secs);
            if let Some(cache) = &shared.cache {
                payload = with_cache_gauges(payload, &cache.stats());
            }
            if !shared.replica_sets.is_empty() {
                let health: Vec<(String, Vec<dqs_replica::EndpointSnapshot>)> = shared
                    .replica_sets
                    .iter()
                    .map(|s| (s.id().to_string(), s.snapshot()))
                    .collect();
                payload = with_replica_health(payload, &health);
            }
            Frame::Done {
                metrics_json: payload,
            }
        }
        Err(e) => Frame::Error {
            code: 1,
            message: e.to_string(),
        },
    };
    finish_and_promote(shared, job.session);
    shared
        .conns
        .send(job.conn_id, Msg::Terminal(job.conn_id, terminal));
}

/// Background liveness prober. Between sessions, endpoint health only
/// changes when a scan happens to touch it; a cheap connect-probe per
/// endpoint keeps the tables fresh so the first scan after a crash (or a
/// recovery) already selects well.
fn probe_replicas(shared: &Shared) {
    loop {
        for set in &shared.replica_sets {
            for idx in 0..set.len() {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let up = set
                    .addr(idx)
                    .to_socket_addrs()
                    .ok()
                    .and_then(|mut a| a.next())
                    .map(|a| TcpStream::connect_timeout(&a, PROBE_TIMEOUT).is_ok())
                    .unwrap_or(false);
                if up {
                    set.mark_live(idx);
                } else {
                    set.record_failure(idx);
                }
            }
        }
        // Sleep in slices so shutdown never waits out a full interval.
        let mut slept = Duration::ZERO;
        while slept < PROBE_INTERVAL {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let slice = Duration::from_millis(50).min(PROBE_INTERVAL - slept);
            thread::sleep(slice);
            slept += slice;
        }
    }
}

/// How one relation's scan was sourced: served from cache (`tuples`,
/// payload `bytes`) or fetched live.
struct CacheOutcome {
    rel: RelId,
    served: Option<(u64, u64)>,
}

/// Build the session's driver: one source per catalog relation. With a
/// cache, resident scans become [`ReplaySource`]s — no wrapper connection
/// is even dialed for them — and live scans are wrapped in a
/// [`RecordingSource`] so their completion populates the cache. Without
/// one, sources are exactly the pre-cache topology: remote sources when
/// wrapper groups are configured, in-process [`ThreadedWrapper`]s
/// otherwise (relation `i` maps to group `i % groups`).
///
/// A single-endpoint group dials a plain [`RemoteWrapper`] — with no peer
/// to fail over to, a death should surface exactly as it always has. A
/// multi-replica group asks its [`ReplicaSet`] for the best live endpoint
/// and scans through a [`FailoverSource`], which survives mid-scan
/// endpoint deaths by resuming on a peer. Cache keys use the *group id*,
/// not the endpoint, so a scan recorded off one replica replays for its
/// peers. Returns the driver, the per-relation cache outcomes, and the
/// replica pins (which endpoint each live scan opened on).
///
/// With the refresher live (`refresh` is `Some`), remote scans consult
/// its stat table: a live open asks for the wrapper's *current* total
/// (so a session sees appended tuples the spec predates) and recordings
/// are stamped with the wrapper's current version. This applies to
/// `no_cache` sessions too — a cold truth run and a refreshed warm one
/// must answer bit-identically. The cache key keeps using the *spec*
/// total: it names the logical scan, whose entry then drifts forward in
/// place as the refresher appends deltas.
#[allow(clippy::type_complexity)]
fn build_driver(
    workload: &Workload,
    opts: &ServeOpts,
    sets: &[Arc<ReplicaSet>],
    cache: Option<&Arc<SharedCache>>,
    refresh: Option<&RefreshState>,
) -> Result<(RealTimeDriver, Vec<CacheOutcome>, Vec<(RelId, String)>), SourceError> {
    let catalog: Vec<_> = workload
        .catalog
        .iter()
        .map(|(rel, spec)| (rel, spec.name.clone()))
        .collect();
    let seeds = SeedSplitter::new(workload.config.seed);
    let mut outcomes = Vec::new();
    let mut pins: Vec<(RelId, String)> = Vec::new();
    let driver = RealTimeDriver::try_with_sources(|notify| {
        let mut sources: Vec<BoxSource> = Vec::with_capacity(catalog.len());
        for (rel, name) in &catalog {
            let total = workload.actual_cardinality(*rel);
            let stream = format!("wrapper:{name}");
            let group = (!sets.is_empty()).then(|| &sets[rel.0 as usize % sets.len()]);
            let wrapper_id = group.map_or("local", |g| g.id());
            let stat = match (refresh, group) {
                (Some(state), Some(g)) => state.stat_for(g.id(), *rel),
                _ => None,
            };
            let effective_total = stat.map_or(total, |s| s.total.max(total));
            let version = stat.map_or(0, |s| s.version);
            let key = cache.map(|_| {
                CacheKey::for_scan(wrapper_id, *rel, total, workload.config.seed, &stream)
            });
            if let (Some(state), Some(key)) = (refresh, &key) {
                if group.is_some() {
                    state.record(
                        key.clone(),
                        ScanProvenance {
                            group: rel.0 as usize % sets.len(),
                            rel: *rel,
                            window: workload.config.queue_capacity as u32,
                            seed: workload.config.seed,
                            stream: stream.clone(),
                            delay: workload.delays[rel.0 as usize].clone(),
                        },
                    );
                }
            }
            if let (Some(cache), Some(key)) = (cache, &key) {
                if let Some(keys) = cache.lookup(key) {
                    let tuples = keys.len() as u64;
                    let bytes = payload_bytes(keys.len());
                    outcomes.push(CacheOutcome {
                        rel: *rel,
                        served: Some((tuples, bytes)),
                    });
                    sources.push(Box::new(ReplaySource::new(*rel, keys)) as BoxSource);
                    continue;
                }
                outcomes.push(CacheOutcome {
                    rel: *rel,
                    served: None,
                });
            }
            let live: BoxSource = match group {
                None => Box::new(ThreadedWrapper::new(
                    *rel,
                    total,
                    workload.delays[rel.0 as usize].clone(),
                    seeds.stream(&stream),
                    workload.config.queue_capacity,
                    notify.clone(),
                )),
                Some(set) => {
                    let open = RemoteOpen {
                        rel: *rel,
                        total: effective_total,
                        window: workload.config.queue_capacity as u32,
                        seed: workload.config.seed,
                        stream: stream.clone(),
                        delay: workload.delays[rel.0 as usize].clone(),
                        resume_from: 0,
                    };
                    if set.len() == 1 {
                        let addr = set.addr(0);
                        pins.push((*rel, addr.clone()));
                        Box::new(RemoteWrapper::connect(
                            &addr,
                            open,
                            notify.clone(),
                            opts.read_timeout,
                        )?)
                    } else {
                        let source = FailoverSource::connect(
                            Arc::clone(set),
                            open,
                            notify.clone(),
                            FailoverOpts {
                                read_timeout: opts.read_timeout,
                                ..FailoverOpts::default()
                            },
                        )?;
                        pins.push((*rel, source.pinned().to_string()));
                        Box::new(source)
                    }
                }
            };
            let source = match (cache, key) {
                (Some(cache), Some(key)) => Box::new(RecordingSource::versioned(
                    live,
                    Arc::clone(cache),
                    key,
                    version,
                )) as BoxSource,
                _ => live,
            };
            sources.push(source);
        }
        Ok(sources)
    })?;
    Ok((driver, outcomes, pins))
}

/// Run `workload` under the named strategy on `driver`, reporting events
/// to `observer`.
fn run_with_strategy<O: EngineObserver>(
    strategy: &str,
    workload: &Workload,
    observer: O,
    driver: RealTimeDriver,
) -> Result<RunMetrics, RunError> {
    fn go<P: Policy, O: EngineObserver>(
        w: &Workload,
        p: P,
        o: O,
        d: RealTimeDriver,
    ) -> Result<RunMetrics, RunError> {
        Engine::with_driver(w, p, o, d).try_run()
    }
    match strategy {
        "seq" => go(workload, SeqPolicy, observer, driver),
        "ma" => go(workload, MaPolicy::default(), observer, driver),
        "scr" => go(workload, ScramblingPolicy::new(), observer, driver),
        "spm" => go(workload, SpmPolicy::new(), observer, driver),
        // Validated at submission; default cannot be reached with other
        // names.
        _ => go(workload, DsePolicy::new(), observer, driver),
    }
}

/// A `Write` sink that forwards each completed JSON line to the client's
/// I/O worker as a `Trace` frame (or discards it when tracing is off).
/// Routing failures are swallowed: losing the trace must not abort the
/// query.
struct TraceFrames<'a> {
    shared: &'a Shared,
    conn_id: u64,
    enabled: bool,
    line: Vec<u8>,
}

impl Write for TraceFrames<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.enabled {
            return Ok(buf.len());
        }
        for &b in buf {
            if b == b'\n' {
                let line = String::from_utf8_lossy(&self.line).into_owned();
                self.line.clear();
                if !self.shared.conns.send(
                    self.conn_id,
                    Msg::Frame(self.conn_id, Frame::Trace { line }),
                ) {
                    self.enabled = false; // client gone; stop trying
                }
            } else {
                self.line.push(b);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Stamp the serving-side queue wait onto an engine metrics object.
/// `RunMetrics` is pinned by the golden-fingerprint suite, so the field
/// is spliced into the JSON at the server layer rather than grown on the
/// struct: the `Done` payload leads with `queue_wait_secs`, then carries
/// the engine metrics unchanged.
pub fn with_queue_wait(metrics: String, wait_secs: f64) -> String {
    debug_assert!(metrics.starts_with('{'));
    format!("{{\"queue_wait_secs\":{wait_secs:.6},{}", &metrics[1..])
}

/// Splice the live cache gauges and freshness counters into a metrics
/// payload, same pattern as [`with_queue_wait`]: the engine's
/// `RunMetrics` is pinned by the golden-fingerprint suite, so serving-
/// side counters ride in front of it rather than growing the struct.
pub fn with_cache_gauges(metrics: String, s: &CacheStats) -> String {
    debug_assert!(metrics.starts_with('{'));
    format!(
        "{{\"cache_resident_bytes\":{},\"cache_evictions\":{},\"cache_expired\":{},\
         \"refreshes\":{},\"refresh_delta_bytes\":{},\"refresh_full_bytes\":{},\
         \"stale_served\":{},{}",
        s.resident_bytes,
        s.evictions,
        s.expirations,
        s.refreshes,
        s.refresh_delta_bytes,
        s.refresh_full_bytes,
        s.stale_served,
        &metrics[1..]
    )
}

/// Splice per-endpoint replica health — the EWMA delivery rates and
/// Live/Degraded states `dqs-replica`'s `HealthTable` maintains — into a
/// metrics payload, same pattern as [`with_queue_wait`]. Until now these
/// gauges were invisible to operators: selection and failover consulted
/// them internally but nothing exported them. Rates are tuples/second;
/// `rate` is `null` for endpoints that never delivered a batch.
pub fn with_replica_health(
    metrics: String,
    health: &[(String, Vec<dqs_replica::EndpointSnapshot>)],
) -> String {
    use dqs_replica::EndpointState;
    debug_assert!(metrics.starts_with('{'));
    let groups: Vec<String> = health
        .iter()
        .map(|(id, endpoints)| {
            let eps: Vec<String> = endpoints
                .iter()
                .map(|e| {
                    let state = match e.state {
                        EndpointState::Live => "\"live\"".to_string(),
                        EndpointState::Degraded { until_nanos } => {
                            format!("{{\"degraded_until_nanos\":{until_nanos}}}")
                        }
                    };
                    let rate = e.rate.map_or("null".to_string(), |r| format!("{r:.3}"));
                    format!(
                        "{{\"addr\":\"{}\",\"state\":{state},\"rate_tps\":{rate},\
                         \"opens\":{},\"failures\":{}}}",
                        json_escape_str(&e.addr),
                        e.opens,
                        e.failures_total
                    )
                })
                .collect();
            format!(
                "{{\"group\":\"{}\",\"endpoints\":[{}]}}",
                json_escape_str(id),
                eps.join(",")
            )
        })
        .collect();
    format!(
        "{{\"replica_health\":[{}],{}",
        groups.join(","),
        &metrics[1..]
    )
}

/// Minimal JSON string escaping for spliced payload fields.
fn json_escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Flat JSON rendering of a finished run's metrics (the `Done` payload).
pub fn metrics_json(m: &RunMetrics) -> String {
    let queries: Vec<String> = m
        .query_responses
        .iter()
        .map(|(q, t)| format!("[{q},{}]", t.as_secs_f64()))
        .collect();
    format!(
        "{{\"strategy\":\"{}\",\"seed\":{},\"response_secs\":{},\
         \"output_tuples\":{},\"cpu_busy_secs\":{},\"stall_secs\":{},\
         \"batches\":{},\"plans\":{},\"end_of_qf\":{},\"rate_changes\":{},\
         \"timeouts\":{},\"memory_overflows\":{},\"degradations\":{},\
         \"memory_high_water\":{},\"events\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"cache_bytes_served\":{},\"failovers\":{},\
         \"replica_retries\":{},\"morsels\":{},\"steals\":{},\
         \"rate_samples\":{},\"permutations\":{},\
         \"query_responses\":[{}]}}",
        m.strategy,
        m.seed,
        m.response_secs(),
        m.output_tuples,
        m.cpu_busy.as_secs_f64(),
        m.stall_time.as_secs_f64(),
        m.batches,
        m.plans,
        m.end_of_qf,
        m.rate_changes,
        m.timeouts,
        m.memory_overflows,
        m.degradations,
        m.memory_high_water,
        m.events,
        m.cache_hits,
        m.cache_misses,
        m.cache_bytes_served,
        m.failovers,
        m.replica_retries,
        m.morsels,
        m.steals,
        m.rate_samples,
        m.permutations,
        queries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn metrics_json_is_parseable_and_carries_the_cardinality() {
        let mut m = RunMetrics {
            strategy: "dse",
            seed: 42,
            ..RunMetrics::default()
        };
        m.output_tuples = 90_000;
        let text = metrics_json(&m);
        let v = dqs_exec::json::parse(&text).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("output_tuples").and_then(|v| v.as_u64()), Some(90_000));
        assert_eq!(
            get("strategy").and_then(|v| v.as_str()),
            Some("dse"),
            "{text}"
        );
    }

    #[test]
    fn queue_wait_splice_leads_the_done_payload_and_stays_parseable() {
        let m = RunMetrics {
            strategy: "dse",
            seed: 1,
            ..RunMetrics::default()
        };
        let text = with_queue_wait(metrics_json(&m), 0.125);
        assert!(text.starts_with("{\"queue_wait_secs\":0.125000,"), "{text}");
        let v = dqs_exec::json::parse(&text).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("queue_wait_secs").and_then(|v| v.as_f64()), Some(0.125));
        assert_eq!(
            get("strategy").and_then(|v| v.as_str()),
            Some("dse"),
            "engine metrics ride along unchanged"
        );
    }

    #[test]
    fn estimated_cost_orders_specs_by_expected_wrapper_time() {
        let slow = WorkloadSpec::from_json(bench::TINY_SPEC)
            .and_then(WorkloadSpec::into_workload)
            .expect("tiny spec builds");
        let fast_spec = bench::TINY_SPEC.replace("3000", "100");
        let fast = WorkloadSpec::from_json(&fast_spec)
            .and_then(WorkloadSpec::into_workload)
            .expect("fast spec builds");
        let (slow_us, fast_us) = (estimated_cost_us(&slow), estimated_cost_us(&fast));
        assert!(
            slow_us > 10 * fast_us,
            "3000us/tuple ({slow_us}) must dominate 100us/tuple ({fast_us})"
        );
        // 2 relations × 64 tuples × 3000 µs.
        assert_eq!(slow_us, 2 * 64 * 3000);
    }

    #[test]
    fn cache_gauge_splice_leads_the_payload_and_stays_parseable() {
        let m = RunMetrics {
            strategy: "dse",
            seed: 1,
            ..RunMetrics::default()
        };
        let stats = CacheStats {
            resident_bytes: 4096,
            evictions: 2,
            expirations: 1,
            refreshes: 3,
            refresh_delta_bytes: 64,
            refresh_full_bytes: 512,
            stale_served: 5,
            ..CacheStats::default()
        };
        let text = with_cache_gauges(with_queue_wait(metrics_json(&m), 0.0), &stats);
        assert!(
            text.starts_with("{\"cache_resident_bytes\":4096,"),
            "{text}"
        );
        let v = dqs_exec::json::parse(&text).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        for (key, want) in [
            ("cache_evictions", 2),
            ("cache_expired", 1),
            ("refreshes", 3),
            ("refresh_delta_bytes", 64),
            ("refresh_full_bytes", 512),
            ("stale_served", 5),
        ] {
            assert_eq!(get(key).and_then(|v| v.as_u64()), Some(want), "{key}");
        }
        assert_eq!(
            get("strategy").and_then(|v| v.as_str()),
            Some("dse"),
            "engine metrics ride along unchanged"
        );
    }

    #[test]
    fn replica_health_splice_exports_rates_and_states() {
        use dqs_replica::{EndpointSnapshot, EndpointState};
        let m = RunMetrics {
            strategy: "spm",
            seed: 1,
            ..RunMetrics::default()
        };
        let health = vec![(
            "g0".to_string(),
            vec![
                EndpointSnapshot {
                    addr: "127.0.0.1:7001".into(),
                    state: EndpointState::Live,
                    rate: Some(1234.5),
                    opens: 3,
                    failures_total: 0,
                },
                EndpointSnapshot {
                    addr: "127.0.0.1:7002".into(),
                    state: EndpointState::Degraded { until_nanos: 99 },
                    rate: None,
                    opens: 1,
                    failures_total: 2,
                },
            ],
        )];
        let text = with_replica_health(metrics_json(&m), &health);
        assert!(text.starts_with("{\"replica_health\":["), "{text}");
        let v = dqs_exec::json::parse(&text).expect("valid JSON: {text}");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert!(get("replica_health").is_some());
        assert!(text.contains("\"rate_tps\":1234.500"), "{text}");
        assert!(text.contains("\"state\":\"live\""), "{text}");
        assert!(
            text.contains("\"state\":{\"degraded_until_nanos\":99}"),
            "{text}"
        );
        assert!(text.contains("\"rate_tps\":null"), "{text}");
        assert_eq!(
            get("strategy").and_then(|v| v.as_str()),
            Some("spm"),
            "engine metrics ride along unchanged"
        );
    }

    #[test]
    fn refresh_without_cache_or_wrappers_is_a_bind_error() {
        for opts in [
            ServeOpts {
                refresh_interval: Some(Duration::from_millis(100)),
                cache_bytes: 1 << 20,
                wrappers: vec![],
                ..ServeOpts::default()
            },
            ServeOpts {
                refresh_interval: Some(Duration::from_millis(100)),
                cache_bytes: 0,
                wrappers: vec!["127.0.0.1:9".into()],
                ..ServeOpts::default()
            },
        ] {
            let err = MediatorServer::bind("127.0.0.1:0", opts).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        }
    }

    #[test]
    fn zero_io_threads_and_zero_shards_are_bind_errors() {
        for opts in [
            ServeOpts {
                io_threads: 0,
                ..ServeOpts::default()
            },
            ServeOpts {
                session_shards: 0,
                ..ServeOpts::default()
            },
        ] {
            let err = MediatorServer::bind("127.0.0.1:0", opts).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        }
    }
}
